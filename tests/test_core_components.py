"""Tests for RESPARC structural components: buffers, switches, control, mPE, NeuroCell."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ArchitectureConfig,
    CurrentControlUnit,
    GlobalControlUnit,
    GlobalIOBus,
    InputMemory,
    LocalControlUnit,
    MacroProcessingEngine,
    NeuroCell,
    ProgrammableSwitch,
    SpikeBuffer,
    SpikePacket,
    SwitchPort,
    TargetBuffer,
    TileAssignment,
)
from repro.crossbar import CrossbarConfig


class TestArchitectureConfig:
    def test_defaults_match_fig8(self):
        config = ArchitectureConfig()
        assert config.mcas_per_mpe == 4
        assert config.mpes_per_neurocell == 16
        assert config.switches_per_neurocell == 9
        assert config.frequency_hz == pytest.approx(200e6)
        assert config.word_bits == 64
        assert config.area_mm2 == pytest.approx(0.29)
        assert config.power_w == pytest.approx(53.2e-3)
        assert config.mcas_per_neurocell == 64

    def test_variants(self):
        config = ArchitectureConfig().with_crossbar_size(128)
        assert config.crossbar_rows == 128
        assert not ArchitectureConfig().with_event_driven(False).event_driven
        assert ArchitectureConfig().with_weight_bits(8).device.levels == 256

    def test_synapses_per_neurocell(self):
        assert ArchitectureConfig().synapses_per_neurocell == 64 * 64 * 64

    def test_validation(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(crossbar_rows=0)
        with pytest.raises(ValueError):
            ArchitectureConfig(neurocell_boundary_fraction=1.5)


class TestBuffers:
    def test_packet_from_array_pads_and_splits(self):
        packets = SpikePacket.from_array(np.array([1, 0, 0, 1, 1]), packet_bits=4)
        assert len(packets) == 2
        assert packets[0].bits == (1, 0, 0, 1)
        assert packets[1].bits == (1, 0, 0, 0)
        assert packets[0].spike_count == 2
        assert not packets[0].is_zero

    def test_zero_packet_detection(self):
        assert SpikePacket(bits=(0, 0, 0)).is_zero

    def test_buffer_fifo_order_and_counters(self):
        buffer = SpikeBuffer("b", capacity_packets=4)
        first = SpikePacket(bits=(1, 0))
        second = SpikePacket(bits=(0, 1))
        buffer.push(first)
        buffer.push(second)
        assert buffer.pop() is first
        assert buffer.pop() is second
        assert buffer.accesses == 4
        assert buffer.high_watermark == 2

    def test_buffer_overflow_and_underflow(self):
        buffer = SpikeBuffer("b", capacity_packets=1)
        buffer.push(SpikePacket(bits=(1,)))
        with pytest.raises(OverflowError):
            buffer.push(SpikePacket(bits=(1,)))
        buffer.drain()
        with pytest.raises(IndexError):
            buffer.pop()

    def test_buffer_reset_counters(self):
        buffer = SpikeBuffer("b")
        buffer.push(SpikePacket(bits=(1,)))
        buffer.reset_counters()
        assert buffer.accesses == 0
        assert len(buffer) == 1

    def test_target_buffer(self):
        tbuff = TargetBuffer("t")
        tbuff.configure(["nc0.mpe1", "nc0.mpe2"])
        assert tbuff.lookup() == ("nc0.mpe1", "nc0.mpe2")
        assert tbuff.lookups == 1


class TestSwitch:
    def _switch(self, zero_check=True):
        switch = ProgrammableSwitch("sw0", zero_check_enabled=zero_check)
        switch.attach_port(SwitchPort("mpe0", "mpe"))
        switch.attach_port(SwitchPort("mpe1", "mpe"))
        switch.configure_route("mpe0", "mpe0")
        switch.configure_route("mpe1", "mpe1")
        return switch

    def test_routing_longest_prefix(self):
        switch = self._switch()
        port, delivered = switch.forward(SpikePacket(bits=(1, 0), target="mpe1"))
        assert delivered and port == "mpe1"
        assert switch.forwarded_packets == 1

    def test_zero_check_suppression(self):
        switch = self._switch()
        port, delivered = switch.forward(SpikePacket(bits=(0, 0), target="mpe0"))
        assert not delivered and port is None
        assert switch.suppressed_packets == 1

    def test_zero_check_disabled_forwards_everything(self):
        switch = self._switch(zero_check=False)
        _, delivered = switch.forward(SpikePacket(bits=(0, 0), target="mpe0"))
        assert delivered
        assert switch.suppressed_packets == 0

    def test_unroutable_target_raises(self):
        switch = ProgrammableSwitch("sw1")
        switch.attach_port(SwitchPort("mpe0", "mpe"))
        with pytest.raises(KeyError):
            switch.forward(SpikePacket(bits=(1,), target="mpe9"))

    def test_arbitration_conflicts_counted(self):
        switch = self._switch()
        packets = [SpikePacket(bits=(1, 0), target="mpe0") for _ in range(3)]
        delivered = switch.forward_many(packets)
        assert len(delivered) == 3
        assert switch.arbitration_conflicts == 2

    def test_duplicate_port_rejected(self):
        switch = self._switch()
        with pytest.raises(ValueError):
            switch.attach_port(SwitchPort("mpe0", "mpe"))

    def test_invalid_port_kind(self):
        with pytest.raises(ValueError):
            SwitchPort("x", "bus")


class TestControlUnits:
    def test_local_control_scheduling(self):
        lcu = LocalControlUnit("mpe0", mca_count=4)
        lcu.schedule_evaluation(1, multiplex_degree=3)
        assert lcu.pending_integrations == 3
        lcu.complete_integration(1)
        assert lcu.pending_integrations == 2
        with pytest.raises(IndexError):
            lcu.schedule_evaluation(7)
        with pytest.raises(RuntimeError):
            lcu.complete_integration(0)

    def test_ccu_counters(self):
        ccu = CurrentControlUnit("mpe0")
        ccu.request_transfer_out()
        ccu.accept_transfer_in()
        ccu.wait()
        assert ccu.total_transfers == 2
        assert ccu.wait_events == 1

    def test_global_control_event_flags(self):
        gcu = GlobalControlUnit((0, 1, 2))
        gcu.dispatch(0)
        assert not gcu.all_complete()
        for nc in (0, 1, 2):
            gcu.mark_complete(nc)
        assert gcu.all_complete()
        assert gcu.all_complete((0, 1))
        with pytest.raises(KeyError):
            gcu.mark_complete(9)


class TestInterconnect:
    def test_input_memory_roundtrip(self):
        memory = InputMemory(word_bits=8)
        bits = np.array([1, 0, 1, 1, 0, 0, 0, 0, 1])
        words = memory.store_vector("x", bits)
        assert words == 2
        loaded, read_words = memory.load_vector("x")
        assert read_words == 2
        np.testing.assert_array_equal(loaded, bits)
        assert memory.accesses == 4
        with pytest.raises(KeyError):
            memory.load_vector("missing")

    def test_bus_broadcast_suppresses_zero_words(self):
        bus = GlobalIOBus(word_bits=8, zero_check_enabled=True)
        bits = np.zeros(16)
        bits[0] = 1
        driven = bus.broadcast(bits, target_neurocells=3)
        assert driven == 1
        assert bus.suppressed_words == 1
        assert bus.words_transferred == 1

    def test_bus_without_zero_check(self):
        bus = GlobalIOBus(word_bits=8, zero_check_enabled=False)
        driven = bus.broadcast(np.zeros(16), target_neurocells=1)
        assert driven == 2

    def test_bus_validation(self):
        bus = GlobalIOBus()
        with pytest.raises(ValueError):
            bus.broadcast(np.ones(8), target_neurocells=0)
        with pytest.raises(ValueError):
            bus.transfer_words(-1)


class TestMpeAndNeuroCell:
    def _mpe(self):
        return MacroProcessingEngine(
            "nc0.mpe0", CrossbarConfig(rows=16, columns=16), mcas_per_mpe=2, packet_bits=8
        )

    def test_program_and_evaluate_tile(self):
        mpe = self._mpe()
        weights = np.eye(8)
        assignment = TileAssignment(layer_index=0, row_start=0, row_stop=8, column_start=0, column_stop=8)
        index = mpe.program_tile(assignment, weights, targets=["layer0"])
        assert index == 0
        out = mpe.evaluate_tile(index, np.ones(8))
        np.testing.assert_allclose(out, np.ones(8), atol=0.05)
        assert mpe.crossbar_evaluations == 1
        assert mpe.neuron_integrations == 8

    def test_program_full_mpe_raises(self):
        mpe = self._mpe()
        assignment = TileAssignment(0, 0, 4, 0, 4)
        mpe.program_tile(assignment, np.ones((4, 4)))
        mpe.program_tile(assignment, np.ones((4, 4)))
        with pytest.raises(RuntimeError):
            mpe.program_tile(assignment, np.ones((4, 4)))

    def test_wrong_block_shape_rejected(self):
        mpe = self._mpe()
        with pytest.raises(ValueError):
            mpe.program_tile(TileAssignment(0, 0, 4, 0, 4), np.ones((3, 4)))

    def test_emit_output_counts_buffer_traffic(self):
        mpe = self._mpe()
        mpe.program_tile(TileAssignment(0, 0, 8, 0, 8), np.eye(8), targets=["layer1"])
        packets = mpe.emit_output(0, np.ones(8))
        assert len(packets) == 1
        assert mpe.tbuffer_lookups == 1
        assert mpe.buffer_accesses >= 2

    def test_neurocell_structure(self):
        cell = NeuroCell(0, CrossbarConfig(rows=8, columns=8), mpes_per_neurocell=4, mcas_per_mpe=2, packet_bits=8)
        assert len(cell.mpes) == 4
        assert len(cell.switches) == 1
        assert cell.free_mca_count == 8

    @pytest.mark.parametrize("mpes", [1, 2, 3, 5, 6, 10, 16])
    def test_neurocell_supports_any_mpe_count(self, mpes):
        # Regression: non-square counts used to collapse two mPEs onto one
        # grid cell (round instead of ceil of sqrt), attaching the same
        # switch port twice and crashing construction for e.g. 2 mPEs.
        cell = NeuroCell(
            0, CrossbarConfig(rows=8, columns=8), mpes_per_neurocell=mpes, mcas_per_mpe=2
        )
        assert len(cell.mpes) == mpes
        for switch in cell.switches:
            names = [port.name for port in switch.ports]
            assert len(names) == len(set(names))
        # Every mPE is reachable through some switch.
        for mpe in cell.mpes:
            assert cell.switch_for_mpe(mpe.mpe_id) is not None
        spikes = np.ones(8)
        delivered = cell.route_spike_vector(spikes, [m.mpe_id for m in cell.mpes])
        assert all(count == 1 for count in delivered.values())

    def test_non_square_mpe_count_runs_end_to_end(self):
        # A chip built with 2 mPEs per NeuroCell must program and execute.
        from repro.core import ArchitectureConfig, simulate
        from repro.snn import Dense, Network, convert_to_snn

        rng = np.random.default_rng(3)
        network = Network(
            (16,),
            [
                Dense(16, 12, use_bias=False, rng=rng, name="fc1"),
                Dense(12, 5, activation=None, use_bias=False, rng=rng, name="out"),
            ],
            name="nonsquare-mlp",
        )
        snn = convert_to_snn(network, rng.random((8, 16)))
        config = ArchitectureConfig(
            crossbar_rows=8, crossbar_columns=8, mcas_per_mpe=1, mpes_per_neurocell=2
        )
        inputs = rng.random((3, 16))
        results = {
            backend: simulate(snn, inputs, backend=backend, config=config, timesteps=5)
            for backend in ("structural", "vectorized")
        }
        np.testing.assert_array_equal(
            results["structural"].predictions, results["vectorized"].predictions
        )
        assert config.switches_per_neurocell == 1

    def test_neurocell_routing_counts_hops_and_suppression(self):
        cell = NeuroCell(0, CrossbarConfig(rows=8, columns=8), mpes_per_neurocell=4, mcas_per_mpe=2, packet_bits=4)
        spikes = np.array([1, 0, 0, 0, 0, 0, 0, 0])
        delivered = cell.route_spike_vector(spikes, [cell.mpes[0].mpe_id])
        assert delivered[cell.mpes[0].mpe_id] == 1
        assert cell.switch_hops == 1
        assert cell.suppressed_packets == 1  # second packet is all zero
        assert cell.zero_checks == 2
