"""Design-space exploration: technology-aware MCA size selection.

RESPARC is "technology aware": for a given memristive technology (which
limits how large a crossbar can reliably be), the mapper picks the MCA size
that minimises energy for the target network.  This example sweeps MCA sizes
for one MLP and one CNN benchmark, prints the resource usage and energy at
each size, and shows how the optimum differs between the two topology
families (the paper's Fig. 12 argument) and how a reliability limit changes
the choice.

Run with:  python examples/design_space_mca_size.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ArchitectureConfig, ResparcModel
from repro.crossbar import CrossbarNonidealities, NonidealityParameters
from repro.datasets import make_dataset
from repro.mapping import map_network, select_crossbar_size
from repro.snn import SpikingSimulator, convert_to_snn
from repro.utils.units import format_energy
from repro.workloads import build_mnist_cnn, build_mnist_mlp

MCA_SIZES = (32, 64, 128)


def explore(name: str, network, inputs: np.ndarray) -> None:
    print(f"\n=== {name} ===")
    snn = convert_to_snn(network, inputs[:8])
    trace = SpikingSimulator(timesteps=16, rng=np.random.default_rng(0)).run(snn, inputs[:4]).trace

    print(f"  {'MCA':>5} {'tiles':>8} {'mPEs':>7} {'NCs':>5} {'util':>7} {'energy':>12}")
    energies = {}
    for size in MCA_SIZES:
        mapped = map_network(network, crossbar_size=size)
        model = ResparcModel(config=ArchitectureConfig().with_crossbar_size(size))
        evaluation = model.evaluate(mapped, trace)
        energies[size] = evaluation.energy_per_classification_j
        print(
            f"  {size:>5} {mapped.total_tiles:>8} {mapped.total_mpes:>7} "
            f"{mapped.total_neurocells:>5} {mapped.utilisation.mean_utilisation:>6.1%} "
            f"{format_energy(energies[size]):>12}"
        )
    best = min(energies, key=energies.get)
    print(f"  -> energy-optimal MCA size: {best}")

    # Structural heuristic + technology reliability limit.
    unconstrained, _ = select_crossbar_size(network, candidate_sizes=MCA_SIZES)
    constrained, _ = select_crossbar_size(network, candidate_sizes=MCA_SIZES, max_reliable_size=64)
    print(f"  -> structural heuristic picks {unconstrained}; with a 64-cell reliability limit: {constrained}")

    # Why the limit exists: first-order analog error vs crossbar size.
    nonideal = CrossbarNonidealities(
        NonidealityParameters(wire_resistance_ohm=2.0, sneak_leakage_fraction=0.002)
    )
    for size in MCA_SIZES + (256,):
        error = nonideal.relative_output_error(size, size, 2.0e-5)
        print(f"     relative analog error at {size:>3}x{size:<3}: {error:.2%}")


def main() -> None:
    mnist = make_dataset("mnist", train_samples=16, test_samples=16, seed=0)
    explore("MNIST MLP", build_mnist_mlp(), mnist.test_images.reshape(-1, 784))
    explore("MNIST CNN", build_mnist_cnn(), mnist.test_images)


if __name__ == "__main__":
    main()
