"""Functional (algorithm-level) spiking simulator.

This is the golden model of the repository: it executes a converted
:class:`repro.snn.conversion.SpikingNetwork` timestep by timestep with IF
neuron dynamics, producing

* classification results (spike-count voting on the output layer), and
* an :class:`ActivityTrace` — the per-layer spike-activity statistics that
  both hardware models (RESPARC and the CMOS baseline) consume, so the two
  architectures are always evaluated on identical workload activity.

The activity trace also records, per layer, the fraction of all-zero spike
packets at several packet widths; that statistic drives the event-driven
energy optimisation study (Fig. 13 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.snn.conversion import SpikingNetwork
from repro.snn.encoding import DeterministicRateEncoder, PoissonEncoder
from repro.snn.layers import AvgPool2D, Conv2D, Dense, Flatten
from repro.snn.neuron import IFNeuronParameters, IFNeuronPool
from repro.utils.validation import check_positive

__all__ = ["LayerActivity", "ActivityTrace", "SimulationResult", "SpikingSimulator"]

#: Packet widths for which zero-packet statistics are collected.  They match
#: the crossbar sizes studied in the paper (32, 64, 128).
PACKET_WIDTHS = (32, 64, 128)


@dataclass
class LayerActivity:
    """Spiking activity statistics of one computational layer.

    All ``*_rate`` quantities are averages per neuron per timestep; the
    ``total_*`` quantities are averages per classified sample.
    """

    layer_index: int
    name: str
    kind: str
    n_inputs: int
    n_outputs: int
    timesteps: int
    samples: int
    input_spike_rate: float
    output_spike_rate: float
    total_input_spikes: float
    total_output_spikes: float
    zero_packet_fraction: dict[int, float] = field(default_factory=dict)

    def zero_packet_fraction_for(self, packet_bits: int) -> float:
        """Zero-packet fraction for ``packet_bits``, interpolating if needed.

        Exact widths in :data:`PACKET_WIDTHS` are returned directly; other
        widths fall back to the analytical estimate ``(1 - rate)**bits`` which
        matches the measured statistics for independent spikes.
        """
        if packet_bits in self.zero_packet_fraction:
            return self.zero_packet_fraction[packet_bits]
        return float((1.0 - self.input_spike_rate) ** packet_bits)


@dataclass
class ActivityTrace:
    """Per-layer activity statistics for one simulated batch."""

    network_name: str
    timesteps: int
    samples: int
    layers: list[LayerActivity]

    def layer(self, layer_index: int) -> LayerActivity:
        """Activity record of the layer at ``layer_index``."""
        for activity in self.layers:
            if activity.layer_index == layer_index:
                return activity
        raise KeyError(f"no activity recorded for layer index {layer_index}")

    @property
    def mean_input_rate(self) -> float:
        """Spike rate averaged over every layer input in the network."""
        total_inputs = sum(a.n_inputs for a in self.layers)
        if total_inputs == 0:
            return 0.0
        return sum(a.input_spike_rate * a.n_inputs for a in self.layers) / total_inputs

    @property
    def total_spikes_per_sample(self) -> float:
        """Total spikes communicated between layers per classified sample."""
        return sum(a.total_input_spikes for a in self.layers)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating a batch of inputs."""

    predictions: np.ndarray
    spike_counts: np.ndarray
    accuracy: float | None
    trace: ActivityTrace


class SpikingSimulator:
    """Runs a converted spiking network with IF dynamics.

    Parameters
    ----------
    timesteps:
        Number of rate-coding timesteps per classification.
    encoder:
        ``"poisson"`` (stochastic, the paper's setting) or ``"deterministic"``
        (error-diffusion rate coding, useful for exact tests).
    max_rate:
        Input spike probability for a full-intensity pixel.
    rng:
        Generator for the Poisson encoder.
    """

    def __init__(
        self,
        timesteps: int = 32,
        encoder: str = "poisson",
        max_rate: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        check_positive("timesteps", timesteps)
        if encoder not in ("poisson", "deterministic"):
            raise ValueError(f"encoder must be 'poisson' or 'deterministic', got {encoder!r}")
        self.timesteps = int(timesteps)
        self.encoder_kind = encoder
        self.max_rate = max_rate
        self.rng = rng or np.random.default_rng(0)

    # -- helpers -----------------------------------------------------------------

    def _encode(self, inputs: np.ndarray) -> np.ndarray:
        if self.encoder_kind == "poisson":
            encoder = PoissonEncoder(rng=self.rng, max_rate=self.max_rate)
        else:
            encoder = DeterministicRateEncoder(max_rate=self.max_rate)
        return encoder.encode(inputs, self.timesteps)

    @staticmethod
    def _zero_packet_counts(spikes: np.ndarray, widths=PACKET_WIDTHS) -> dict[int, tuple[int, int]]:
        """Count (zero_packets, total_packets) per width for a (batch, n) spike array."""
        flat = spikes.reshape(spikes.shape[0], -1)
        batch, n = flat.shape
        counts: dict[int, tuple[int, int]] = {}
        for width in widths:
            n_packets = int(np.ceil(n / width))
            padded = np.zeros((batch, n_packets * width))
            padded[:, :n] = flat
            packet_sums = padded.reshape(batch, n_packets, width).sum(axis=2)
            counts[width] = (int((packet_sums == 0).sum()), batch * n_packets)
        return counts

    # -- main entry point ---------------------------------------------------------

    def run(
        self,
        snn: SpikingNetwork,
        inputs: np.ndarray,
        labels: np.ndarray | None = None,
    ) -> SimulationResult:
        """Simulate a batch of inputs through the spiking network.

        Parameters
        ----------
        snn:
            The converted spiking network.
        inputs:
            Batch of analog inputs in ``[0, 1]`` with shape
            ``(batch,) + network.input_shape``.
        labels:
            Optional integer labels; when given, accuracy is computed.

        Returns
        -------
        SimulationResult
        """
        network = snn.network
        x = np.asarray(inputs, dtype=float)
        expected = (x.shape[0],) + network.input_shape
        if x.shape != expected:
            raise ValueError(f"inputs have shape {x.shape}, expected {expected}")
        batch = x.shape[0]
        spike_train = self._encode(x)

        shapes = network.layer_shapes()
        pools: dict[int, IFNeuronPool] = {}
        for index, (layer, (_, out_shape)) in enumerate(zip(network.layers, shapes)):
            if isinstance(layer, (Dense, Conv2D, AvgPool2D)):
                pools[index] = IFNeuronPool(
                    (batch,) + out_shape,
                    IFNeuronParameters(threshold=snn.threshold_for(index)),
                )

        # Per-layer accumulators.
        input_spike_totals: dict[int, float] = {i: 0.0 for i in pools}
        output_spike_totals: dict[int, float] = {i: 0.0 for i in pools}
        zero_counts: dict[int, dict[int, list[int]]] = {
            i: {w: [0, 0] for w in PACKET_WIDTHS} for i in pools
        }

        output_index = len(network.layers) - 1
        output_spike_count = np.zeros((batch,) + shapes[-1][1])

        for t in range(self.timesteps):
            current_spikes = spike_train[t]
            for index, layer in enumerate(network.layers):
                if isinstance(layer, Flatten):
                    current_spikes = layer.forward(current_spikes)
                    continue
                pool = pools[index]
                input_spike_totals[index] += float(current_spikes.sum())
                for width, (zeros, total) in self._zero_packet_counts(current_spikes).items():
                    zero_counts[index][width][0] += zeros
                    zero_counts[index][width][1] += total
                if isinstance(layer, (Dense, Conv2D)):
                    drive = layer.linear(current_spikes)
                else:  # AvgPool2D
                    drive = layer.forward(current_spikes)
                current_spikes = pool.step(drive)
                output_spike_totals[index] += float(current_spikes.sum())
            output_spike_count += current_spikes if current_spikes.shape == output_spike_count.shape else 0.0

        # Prediction: spike-count vote with residual membrane as tie breaker.
        final_pool = pools[output_index]
        score = final_pool.spike_count + 1e-3 * final_pool.membrane
        predictions = np.argmax(score.reshape(batch, -1), axis=1)
        accuracy = None
        if labels is not None:
            accuracy = float(np.mean(predictions == np.asarray(labels, dtype=int)))

        activities: list[LayerActivity] = []
        for index, layer in enumerate(network.layers):
            if index not in pools:
                continue
            in_shape, out_shape = shapes[index]
            n_in = int(np.prod(in_shape))
            n_out = int(np.prod(out_shape))
            denom = batch * self.timesteps
            zero_fracs = {
                w: (zero_counts[index][w][0] / zero_counts[index][w][1])
                if zero_counts[index][w][1]
                else 1.0
                for w in PACKET_WIDTHS
            }
            kind = "dense" if isinstance(layer, Dense) else "conv" if isinstance(layer, Conv2D) else "pool"
            activities.append(
                LayerActivity(
                    layer_index=index,
                    name=layer.name,
                    kind=kind,
                    n_inputs=n_in,
                    n_outputs=n_out,
                    timesteps=self.timesteps,
                    samples=batch,
                    input_spike_rate=input_spike_totals[index] / (denom * n_in),
                    output_spike_rate=output_spike_totals[index] / (denom * n_out),
                    total_input_spikes=input_spike_totals[index] / batch,
                    total_output_spikes=output_spike_totals[index] / batch,
                    zero_packet_fraction=zero_fracs,
                )
            )

        trace = ActivityTrace(
            network_name=network.name,
            timesteps=self.timesteps,
            samples=batch,
            layers=activities,
        )
        return SimulationResult(
            predictions=predictions,
            spike_counts=final_pool.spike_count.reshape(batch, -1),
            accuracy=accuracy,
            trace=trace,
        )
