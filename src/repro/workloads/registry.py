"""Benchmark registry: the paper's Fig. 10 table as data.

Maps benchmark names to their dataset, topology family, builder function and
the neuron/synapse/layer totals published in the paper, so experiments and
tests can iterate over "all MLP benchmarks", compare reconstructed totals to
the published ones, and build reduced-scale variants for quick runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.snn.network import Network
from repro.workloads.networks import (
    build_cifar10_cnn,
    build_cifar10_mlp,
    build_mnist_cnn,
    build_mnist_mlp,
    build_svhn_cnn,
    build_svhn_mlp,
)

__all__ = ["BenchmarkSpec", "BENCHMARKS", "get_benchmark", "list_benchmarks", "build_benchmark"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of the paper's benchmark table (Fig. 10)."""

    name: str
    application: str
    dataset: str
    connectivity: str  # "MLP" or "CNN"
    paper_layers: int
    paper_neurons: int
    paper_synapses: int
    builder: Callable[..., Network]

    def build(self, scale: float = 1.0, seed: int = 0) -> Network:
        """Construct the benchmark network (optionally width-scaled)."""
        return self.builder(scale=scale, seed=seed)

    @property
    def is_mlp(self) -> bool:
        """True for the fully connected benchmarks."""
        return self.connectivity == "MLP"


#: All six benchmarks of Fig. 10, keyed by canonical name.
BENCHMARKS: dict[str, BenchmarkSpec] = {
    "mnist-mlp": BenchmarkSpec(
        name="mnist-mlp",
        application="Digit Recognition",
        dataset="mnist",
        connectivity="MLP",
        paper_layers=4,
        paper_neurons=2378,
        paper_synapses=1_902_400,
        builder=build_mnist_mlp,
    ),
    "mnist-cnn": BenchmarkSpec(
        name="mnist-cnn",
        application="Digit Recognition",
        dataset="mnist",
        connectivity="CNN",
        paper_layers=6,
        paper_neurons=66_778,
        paper_synapses=1_484_288,
        builder=build_mnist_cnn,
    ),
    "svhn-mlp": BenchmarkSpec(
        name="svhn-mlp",
        application="House Number Recognition",
        dataset="svhn",
        connectivity="MLP",
        paper_layers=4,
        paper_neurons=2778,
        paper_synapses=2_778_000,
        builder=build_svhn_mlp,
    ),
    "svhn-cnn": BenchmarkSpec(
        name="svhn-cnn",
        application="House Number Recognition",
        dataset="svhn",
        connectivity="CNN",
        paper_layers=6,
        paper_neurons=124_570,
        paper_synapses=2_941_952,
        builder=build_svhn_cnn,
    ),
    "cifar10-mlp": BenchmarkSpec(
        name="cifar10-mlp",
        application="Object Classification",
        dataset="cifar10",
        connectivity="MLP",
        paper_layers=5,
        paper_neurons=3778,
        paper_synapses=3_778_000,
        builder=build_cifar10_mlp,
    ),
    "cifar10-cnn": BenchmarkSpec(
        name="cifar10-cnn",
        application="Object Classification",
        dataset="cifar10",
        connectivity="CNN",
        paper_layers=6,
        paper_neurons=231_066,
        paper_synapses=5_524_480,
        builder=build_cifar10_cnn,
    ),
}


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up one benchmark by name."""
    if name not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}")
    return BENCHMARKS[name]


def list_benchmarks(connectivity: str | None = None, dataset: str | None = None) -> list[BenchmarkSpec]:
    """List benchmarks, optionally filtered by connectivity ("MLP"/"CNN") or dataset."""
    specs = list(BENCHMARKS.values())
    if connectivity is not None:
        specs = [s for s in specs if s.connectivity == connectivity.upper()]
    if dataset is not None:
        specs = [s for s in specs if s.dataset == dataset.lower()]
    return specs


def build_benchmark(name: str, scale: float = 1.0, seed: int = 0) -> Network:
    """Build a benchmark network by name."""
    return get_benchmark(name).build(scale=scale, seed=seed)
