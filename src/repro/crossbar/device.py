"""Behavioural memristor device model.

RESPARC's crossbars are built from two-terminal memristive devices (PCM or
Ag-Si in the paper) whose conductance encodes a synaptic weight.  The paper's
device assumptions (Section 4.2) are:

* resistance range 20 kOhm - 200 kOhm,
* 16 discrete conductance levels (4-bit weight discretisation),
* crossbar operating voltage of Vdd/2 when interfaced with CMOS neurons.

:class:`MemristorModel` captures exactly those properties plus the
programming non-idealities (write variation, stuck devices) used by the
non-ideality studies.  The model is behavioural: it maps between normalised
weights, discrete levels and conductances, and exposes the per-read energy of
a single device which the crossbar energy model aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_positive, check_probability

__all__ = ["DeviceParameters", "MemristorModel"]


@dataclass(frozen=True)
class DeviceParameters:
    """Physical parameters of a memristive device.

    Attributes
    ----------
    r_on_ohm:
        Lowest programmable resistance (highest conductance state).
    r_off_ohm:
        Highest programmable resistance (lowest conductance state).
    levels:
        Number of discrete programmable conductance levels.  ``levels = 2**bits``.
    read_voltage_v:
        Voltage applied across a device during a crossbar read.  The paper
        operates the MCA at Vdd/2 = 0.5 V for a 1 V CMOS supply.
    read_pulse_s:
        Duration of one read pulse (one crossbar evaluation).
    write_variation_sigma:
        Relative (lognormal sigma) conductance variation after programming.
    stuck_at_off_probability / stuck_at_on_probability:
        Probability of a device being stuck at its extreme states.
    """

    r_on_ohm: float = 20e3
    r_off_ohm: float = 200e3
    levels: int = 16
    read_voltage_v: float = 0.5
    read_pulse_s: float = 5e-9
    write_variation_sigma: float = 0.0
    stuck_at_off_probability: float = 0.0
    stuck_at_on_probability: float = 0.0

    def __post_init__(self) -> None:
        check_positive("r_on_ohm", self.r_on_ohm)
        check_positive("r_off_ohm", self.r_off_ohm)
        if self.r_off_ohm <= self.r_on_ohm:
            raise ValueError(
                f"r_off_ohm ({self.r_off_ohm}) must exceed r_on_ohm ({self.r_on_ohm})"
            )
        if self.levels < 2:
            raise ValueError(f"levels must be >= 2, got {self.levels}")
        check_positive("read_voltage_v", self.read_voltage_v)
        check_positive("read_pulse_s", self.read_pulse_s)
        check_positive("write_variation_sigma", self.write_variation_sigma, allow_zero=True)
        check_probability("stuck_at_off_probability", self.stuck_at_off_probability)
        check_probability("stuck_at_on_probability", self.stuck_at_on_probability)

    @property
    def bits(self) -> int:
        """Weight precision in bits implied by the number of levels."""
        return int(np.ceil(np.log2(self.levels)))

    @property
    def g_on_s(self) -> float:
        """Maximum device conductance in siemens."""
        return 1.0 / self.r_on_ohm

    @property
    def g_off_s(self) -> float:
        """Minimum device conductance in siemens."""
        return 1.0 / self.r_off_ohm

    @property
    def g_range_s(self) -> float:
        """Programmable conductance span in siemens."""
        return self.g_on_s - self.g_off_s

    def with_bits(self, bits: int) -> "DeviceParameters":
        """Return a copy of the parameters with a different weight precision."""
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        return DeviceParameters(
            r_on_ohm=self.r_on_ohm,
            r_off_ohm=self.r_off_ohm,
            levels=2**bits,
            read_voltage_v=self.read_voltage_v,
            read_pulse_s=self.read_pulse_s,
            write_variation_sigma=self.write_variation_sigma,
            stuck_at_off_probability=self.stuck_at_off_probability,
            stuck_at_on_probability=self.stuck_at_on_probability,
        )


@dataclass
class MemristorModel:
    """Maps normalised weights to device conductances and back.

    The model works on *normalised* weight magnitudes in ``[0, 1]``: a weight
    of 0 maps to the lowest conductance state (``g_off``) and 1 maps to the
    highest (``g_on``).  Sign handling (differential column pairs) is done one
    level up by :mod:`repro.crossbar.mapping`.
    """

    params: DeviceParameters = field(default_factory=DeviceParameters)

    # -- level / conductance conversion ------------------------------------

    def level_conductances(self) -> np.ndarray:
        """Conductance of every programmable level, lowest to highest (S)."""
        p = self.params
        return np.linspace(p.g_off_s, p.g_on_s, p.levels)

    def weight_to_level(self, weight: np.ndarray | float) -> np.ndarray:
        """Quantise normalised weight magnitude(s) in [0, 1] to level indices."""
        w = np.clip(np.asarray(weight, dtype=float), 0.0, 1.0)
        return np.rint(w * (self.params.levels - 1)).astype(int)

    def level_to_conductance(self, level: np.ndarray | int) -> np.ndarray:
        """Conductance (S) of integer level indices."""
        lvl = np.clip(np.asarray(level, dtype=int), 0, self.params.levels - 1)
        p = self.params
        return p.g_off_s + (p.g_on_s - p.g_off_s) * lvl / (p.levels - 1)

    def weight_to_conductance(self, weight: np.ndarray | float) -> np.ndarray:
        """Quantise and convert normalised weights directly to conductance (S)."""
        return self.level_to_conductance(self.weight_to_level(weight))

    def conductance_to_weight(self, conductance: np.ndarray | float) -> np.ndarray:
        """Invert :meth:`weight_to_conductance` (continuous, un-quantised)."""
        g = np.asarray(conductance, dtype=float)
        p = self.params
        return np.clip((g - p.g_off_s) / (p.g_on_s - p.g_off_s), 0.0, 1.0)

    # -- programming non-idealities ----------------------------------------

    def program(
        self, weight: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Program normalised weights into devices, returning conductances (S).

        Applies quantisation always, and write variation / stuck-at faults
        when the device parameters request them (``rng`` must then be given).
        """
        g = self.weight_to_conductance(weight).astype(float)
        p = self.params
        needs_rng = (
            p.write_variation_sigma > 0
            or p.stuck_at_off_probability > 0
            or p.stuck_at_on_probability > 0
        )
        if not needs_rng:
            return g
        if rng is None:
            raise ValueError("rng is required when programming non-idealities are enabled")
        if p.write_variation_sigma > 0:
            g = g * rng.lognormal(mean=0.0, sigma=p.write_variation_sigma, size=g.shape)
        if p.stuck_at_off_probability > 0:
            stuck = rng.random(g.shape) < p.stuck_at_off_probability
            g = np.where(stuck, p.g_off_s, g)
        if p.stuck_at_on_probability > 0:
            stuck = rng.random(g.shape) < p.stuck_at_on_probability
            g = np.where(stuck, p.g_on_s, g)
        return np.clip(g, 0.0, None)

    # -- energy -------------------------------------------------------------

    def read_energy_per_device_j(self, conductance_s: float | np.ndarray) -> np.ndarray:
        """Energy dissipated in one device during one read pulse (J).

        ``E = V^2 * G * t`` for the read voltage and pulse width of the
        device parameters.
        """
        p = self.params
        return np.asarray(conductance_s, dtype=float) * p.read_voltage_v**2 * p.read_pulse_s

    def mean_read_energy_per_device_j(self) -> float:
        """Average per-device read energy assuming uniformly distributed levels."""
        return float(np.mean(self.read_energy_per_device_j(self.level_conductances())))
