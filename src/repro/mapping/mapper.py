"""High-level mapping API: SNN topology → RESPARC resources.

:func:`map_network` is the entry point used throughout the repository: it
extracts the structural connectivity of a network, partitions every layer
over crossbars of the requested size, places the tiles onto mPEs and
NeuroCells and returns a :class:`MappedNetwork` bundling all of it.

:func:`select_crossbar_size` implements the structural half of the paper's
"technology-aware" mapping claim: given the candidate MCA sizes a memristive
technology permits, it picks the size that minimises a peripheral-versus-
crossbar cost estimate (the experiments refine this choice with the full
energy model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapping.partitioner import LayerPartition, partition_network_layers
from repro.mapping.placer import Placement, place_partitions
from repro.mapping.utilization import UtilisationSummary, summarise_utilisation
from repro.snn.conversion import SpikingNetwork
from repro.snn.network import Network
from repro.snn.topology import LayerConnectivity, extract_connectivity

__all__ = ["MappedNetwork", "map_network", "select_crossbar_size"]


@dataclass
class MappedNetwork:
    """A network mapped onto RESPARC's reconfigurable hierarchy."""

    network_name: str
    crossbar_rows: int
    crossbar_columns: int
    connectivity: list[LayerConnectivity]
    partitions: list[LayerPartition]
    placement: Placement
    utilisation: UtilisationSummary = field(init=False)

    def __post_init__(self) -> None:
        self.utilisation = summarise_utilisation(self.partitions)

    # -- aggregates ---------------------------------------------------------------

    @property
    def total_tiles(self) -> int:
        """Total MCAs used."""
        return self.utilisation.total_tiles

    @property
    def total_mpes(self) -> int:
        """Total mPEs used."""
        return self.placement.total_mpes

    @property
    def total_neurocells(self) -> int:
        """Total NeuroCells used."""
        return self.placement.total_neurocells

    @property
    def total_neurons(self) -> int:
        """Total mapped neurons."""
        return sum(c.n_outputs for c in self.connectivity)

    @property
    def total_synapses(self) -> int:
        """Total mapped synapses."""
        return sum(c.synapses for c in self.connectivity)

    def partition_for(self, layer_index: int) -> LayerPartition:
        """Partition of the layer at ``layer_index``."""
        for partition in self.partitions:
            if partition.layer.index == layer_index:
                return partition
        raise KeyError(f"no partition for layer index {layer_index}")

    def summary(self) -> str:
        """Human readable mapping summary."""
        lines = [
            f"MappedNetwork {self.network_name!r} on "
            f"{self.crossbar_rows}x{self.crossbar_columns} MCAs",
            f"  tiles={self.total_tiles} mPEs={self.total_mpes} "
            f"NeuroCells={self.total_neurocells}",
            f"  synapses={self.total_synapses} utilisation={self.utilisation.mean_utilisation:.3f}",
        ]
        for partition in self.partitions:
            lines.append(
                f"    layer {partition.layer.index} {partition.layer.name:<28} "
                f"tiles={partition.tile_count:<6} tmux={partition.time_multiplex_degree:<3} "
                f"util={partition.utilisation:.3f}"
            )
        return "\n".join(lines)


def _resolve_network(network: Network | SpikingNetwork) -> Network:
    """Accept either an ANN or a converted SNN."""
    if isinstance(network, SpikingNetwork):
        return network.network
    if isinstance(network, Network):
        return network
    raise TypeError(f"expected a Network or SpikingNetwork, got {type(network).__name__}")


def map_network(
    network: Network | SpikingNetwork,
    crossbar_size: int = 64,
    crossbar_columns: int | None = None,
    mcas_per_mpe: int = 4,
    mpes_per_neurocell: int = 16,
) -> MappedNetwork:
    """Map a network onto RESPARC crossbars, mPEs and NeuroCells.

    Parameters
    ----------
    network:
        The (spiking) network to map; only its structure is used.
    crossbar_size:
        MCA rows (and columns, unless ``crossbar_columns`` is given).  The
        paper studies 32, 64 and 128.
    crossbar_columns:
        Optional distinct column count for rectangular MCAs.
    mcas_per_mpe, mpes_per_neurocell:
        Hierarchy parameters (4 and 16 in the paper's Fig. 8).
    """
    resolved = _resolve_network(network)
    connectivity = extract_connectivity(resolved)
    rows = int(crossbar_size)
    columns = int(crossbar_columns) if crossbar_columns is not None else rows
    partitions = partition_network_layers(connectivity, rows, columns)
    placement = place_partitions(
        partitions, mcas_per_mpe=mcas_per_mpe, mpes_per_neurocell=mpes_per_neurocell
    )
    return MappedNetwork(
        network_name=resolved.name,
        crossbar_rows=rows,
        crossbar_columns=columns,
        connectivity=connectivity,
        partitions=partitions,
        placement=placement,
    )


def select_crossbar_size(
    network: Network | SpikingNetwork,
    candidate_sizes: tuple[int, ...] = (32, 64, 128),
    max_reliable_size: int | None = None,
    peripheral_cost_per_tile: float = 1.0,
    crossbar_cost_per_crosspoint: float = 0.004,
) -> tuple[int, dict[int, float]]:
    """Pick the most efficient MCA size a technology allows (structural heuristic).

    The cost of a candidate size combines a per-tile peripheral term (more,
    smaller tiles mean more buffers/control/communication — the reason large
    MCAs help MLPs) and a per-allocated-crosspoint term (unused cross-points
    in sparsely utilised tiles still cost area/energy — the reason very large
    MCAs hurt CNNs).  Sizes above ``max_reliable_size`` (the technology
    reliability limit motivated in Section 1 of the paper) are excluded.

    Returns the selected size and the full cost table.
    """
    if not candidate_sizes:
        raise ValueError("candidate_sizes must not be empty")
    costs: dict[int, float] = {}
    for size in candidate_sizes:
        if max_reliable_size is not None and size > max_reliable_size:
            continue
        mapped = map_network(network, crossbar_size=size)
        costs[size] = (
            peripheral_cost_per_tile * mapped.total_tiles
            + crossbar_cost_per_crosspoint * mapped.utilisation.total_crosspoints
        )
    if not costs:
        raise ValueError(
            "no candidate size satisfies the reliability limit "
            f"(max_reliable_size={max_reliable_size})"
        )
    best = min(costs, key=costs.get)
    return best, costs
