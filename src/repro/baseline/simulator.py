"""Per-classification energy/latency estimation for the CMOS baseline.

:class:`CmosBaselineModel` combines the compute-core activity model, the
memory system and the 45 nm component library into the two quantities the
paper compares against RESPARC: energy per classification (broken down into
core / memory access / memory leakage, Fig. 12 b/d) and latency per
classification (Fig. 11 c/d).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.accelerator import BaselineActivityModel
from repro.baseline.config import BaselineConfig
from repro.baseline.memory import BaselineMemorySystem
from repro.energy.components import DEFAULT_LIBRARY, ComponentLibrary, scale_for_bits
from repro.energy.latency import LatencyReport
from repro.energy.model import CMOS_GROUPS, EnergyReport
from repro.snn.conversion import SpikingNetwork
from repro.snn.functional import ActivityTrace
from repro.snn.network import Network
from repro.snn.topology import LayerConnectivity, extract_connectivity

__all__ = ["BaselineEvaluation", "CmosBaselineModel"]


@dataclass(frozen=True)
class BaselineEvaluation:
    """Energy and latency of one classification on the CMOS baseline."""

    energy: EnergyReport
    latency: LatencyReport

    @property
    def energy_per_classification_j(self) -> float:
        """Total energy of one classification (J)."""
        return self.energy.total_j

    @property
    def latency_per_classification_s(self) -> float:
        """Total latency of one classification (s)."""
        return self.latency.total_s


@dataclass
class CmosBaselineModel:
    """Analytical model of the event-driven digital SNN accelerator."""

    config: BaselineConfig = field(default_factory=BaselineConfig)
    library: ComponentLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)

    def __post_init__(self) -> None:
        # Widen/narrow the digital per-event energies with the datapath width.
        self._scaled_library = scale_for_bits(self.library, self.config.weight_bits)
        self._activity_model = BaselineActivityModel(self.config)

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _connectivity_of(network: Network | SpikingNetwork | list[LayerConnectivity]):
        if isinstance(network, list):
            return network
        if isinstance(network, SpikingNetwork):
            return extract_connectivity(network.network)
        return extract_connectivity(network)

    # -- evaluation ---------------------------------------------------------------

    def evaluate(
        self,
        network: Network | SpikingNetwork | list[LayerConnectivity],
        trace: ActivityTrace,
        label: str | None = None,
    ) -> BaselineEvaluation:
        """Estimate one classification's energy and latency.

        Parameters
        ----------
        network:
            The network (or its connectivity descriptors) being executed.
        trace:
            Spike-activity statistics from the functional simulator; the
            baseline is charged for exactly the same workload activity as
            RESPARC.
        label:
            Report label (defaults to the trace's network name).
        """
        connectivity = self._connectivity_of(network)
        memory = BaselineMemorySystem(connectivity, self.config)
        lib = self._scaled_library
        label = label or f"cmos/{trace.network_name}"

        energy = EnergyReport(label=label, group_map=CMOS_GROUPS)
        latency = LatencyReport(label=label)

        timesteps = trace.timesteps
        core_counts = self._activity_model.classification_counts(connectivity, trace)

        total_compute_cycles = 0.0
        total_memory_cycles = 0.0
        for layer, counts in zip(connectivity, core_counts):
            activity = trace.layer(layer.index)

            # --- core energy ---------------------------------------------------
            energy.add("mac", counts.macs * lib.mac_energy_j)
            energy.add("nu_update", counts.neuron_updates * lib.nu_update_energy_j)
            energy.add("fifo", counts.fifo_accesses * lib.fifo_access_energy_j)

            # --- memory traffic --------------------------------------------------
            weight_words = memory.weight_words_for_layer(layer, activity.input_spike_rate)
            activation_words = memory.activation_words_for_layer(layer)
            energy.add(
                "weight_memory_access",
                weight_words * timesteps * memory.weight_access_energy_j(),
            )
            energy.add(
                "activation_memory_access",
                activation_words * timesteps * memory.activation_access_energy_j(),
            )

            # --- cycles ------------------------------------------------------------
            total_compute_cycles += counts.compute_cycles
            # One memory port: weight words and activation words are serialised.
            total_memory_cycles += (weight_words + activation_words) * timesteps

        # The core overlaps compute with memory fetch through its FIFOs; the
        # classification time is set by whichever is the bottleneck, plus a
        # small per-layer-per-timestep control overhead.
        control_cycles = len(connectivity) * timesteps * 4.0
        busy_cycles = max(total_compute_cycles, total_memory_cycles) + control_cycles
        classification_time_s = busy_cycles * self.config.cycle_s

        latency.add("compute", total_compute_cycles * self.config.cycle_s)
        memory_visible_cycles = max(total_memory_cycles - total_compute_cycles, 0.0)
        latency.add("memory_stall", memory_visible_cycles * self.config.cycle_s)
        latency.add("control", control_cycles * self.config.cycle_s)

        # --- time-dependent energy -------------------------------------------------
        energy.add("core_static", lib.baseline_core_static_power_w * classification_time_s)
        energy.add("memory_leakage", memory.leakage_power_w() * classification_time_s)

        return BaselineEvaluation(energy=energy, latency=latency)
