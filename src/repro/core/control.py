"""Control units of the RESPARC hierarchy.

Three controllers orchestrate the dataflow (Figs. 3 and 4 of the paper):

* the **Local Control Unit** of each mPE sequences its MCAs — it decides when
  an MCA has received the inputs it needs, triggers the evaluation, and
  steers the time-multiplexed integration of MCA currents onto the neurons;
* the **Current Control Unit (CCU)** manages the analog current transfers
  between neighbouring mPEs over the gated wires (used when a neuron's fan-in
  spans mPEs);
* the **Global Control Unit** tracks per-NeuroCell completion through event
  flags and sequences the layer-by-layer dataflow over the shared bus.

These classes carry the control state and count control events; the energy
they imply is charged through the shared component library.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LocalControlUnit", "CurrentControlUnit", "GlobalControlUnit"]


class LocalControlUnit:
    """Sequences the MCAs of one mPE."""

    def __init__(self, mpe_id: str, mca_count: int):
        if mca_count <= 0:
            raise ValueError(f"mca_count must be positive, got {mca_count}")
        self.mpe_id = mpe_id
        self.mca_count = mca_count
        self.evaluations_issued = 0
        self.integrations_scheduled = 0
        self._pending: dict[int, int] = {}

    def schedule_evaluation(self, mca_index: int, multiplex_degree: int = 1) -> None:
        """Record that an MCA evaluation (with a given time-mux degree) was issued."""
        if not 0 <= mca_index < self.mca_count:
            raise IndexError(f"mca_index {mca_index} out of range for {self.mpe_id}")
        if multiplex_degree <= 0:
            raise ValueError(f"multiplex_degree must be positive, got {multiplex_degree}")
        self.evaluations_issued += 1
        self.integrations_scheduled += multiplex_degree
        self._pending[mca_index] = self._pending.get(mca_index, 0) + multiplex_degree

    def complete_integration(self, mca_index: int) -> None:
        """Mark one scheduled integration of an MCA as done."""
        remaining = self._pending.get(mca_index, 0)
        if remaining <= 0:
            raise RuntimeError(f"{self.mpe_id}: no pending integration for MCA {mca_index}")
        self._pending[mca_index] = remaining - 1

    @property
    def pending_integrations(self) -> int:
        """Integrations scheduled but not yet completed."""
        return sum(self._pending.values())


class CurrentControlUnit:
    """Manages analog current transfers between neighbouring mPEs."""

    def __init__(self, mpe_id: str):
        self.mpe_id = mpe_id
        self.transfers_out = 0
        self.transfers_in = 0
        self.wait_events = 0

    def request_transfer_out(self) -> None:
        """Count one partial-sum current sent to a neighbouring mPE."""
        self.transfers_out += 1

    def accept_transfer_in(self) -> None:
        """Count one partial-sum current received from a neighbouring mPE."""
        self.transfers_in += 1

    def wait(self) -> None:
        """Count one wait handshake (the receiver was not ready)."""
        self.wait_events += 1

    @property
    def total_transfers(self) -> int:
        """All analog transfers through this CCU."""
        return self.transfers_in + self.transfers_out


@dataclass
class GlobalControlUnit:
    """Tracks NeuroCell completion with per-NC event flags."""

    neurocell_ids: tuple[int, ...]
    event_flags: dict[int, bool] = field(init=False)
    dispatches: int = 0
    flag_updates: int = 0

    def __post_init__(self) -> None:
        if not self.neurocell_ids:
            raise ValueError("GlobalControlUnit needs at least one NeuroCell")
        self.event_flags = {nc: False for nc in self.neurocell_ids}

    def dispatch(self, neurocell_id: int) -> None:
        """Start a computation on a NeuroCell (clears its event flag)."""
        self._check(neurocell_id)
        self.event_flags[neurocell_id] = False
        self.dispatches += 1

    def mark_complete(self, neurocell_id: int) -> None:
        """Set the event flag of a NeuroCell that finished its computation."""
        self._check(neurocell_id)
        self.event_flags[neurocell_id] = True
        self.flag_updates += 1

    def all_complete(self, neurocell_ids: tuple[int, ...] | None = None) -> bool:
        """True when every (given) NeuroCell has set its event flag."""
        ids = neurocell_ids if neurocell_ids is not None else tuple(self.event_flags)
        return all(self.event_flags[nc] for nc in ids)

    def _check(self, neurocell_id: int) -> None:
        if neurocell_id not in self.event_flags:
            raise KeyError(f"unknown NeuroCell id {neurocell_id}")
