"""Multi-endpoint inference gateway with capacity-weighted sharding.

:class:`InferenceGateway` fans one request batch out across several
endpoints — local :class:`~repro.serve.ChipSession`\\ s and
:class:`~repro.serve.ChipPool`\\ s, remote
:class:`~repro.serve.distributed.client.RemoteSession`\\ s, anything with the
``infer`` contract — and merges the shard responses into one exact result.

Sharding is *capacity-weighted*: an endpoint with capacity 3 (say, a remote
pool with ``jobs=3``) receives three times the samples of a capacity-1
session, via cumulative rounding so the contiguous shard sizes always sum to
the batch exactly.  Because every shard carries its absolute
``sample_offset`` and every endpoint derives spike trains from the same
shard-stable :class:`~repro.snn.encoding.EncoderState` seeding, the merged
response is result-identical to running the whole batch on any single
endpoint — provided the endpoints serve the *same workload* (same SNN,
config, seed, encoder and timesteps), which is the operator's contract.

The merge is exact: predictions and spike counts concatenate per-sample,
event counters sum, and the energy report is the component-wise sum of the
shard reports (every component is linear in its counters and in the shard's
batch-duration, so the sum equals the full-batch report to floating-point
accumulation order).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.serve.schema import InferenceRequest, InferenceResponse

__all__ = ["GatewayEndpoint", "InferenceGateway"]


@dataclass
class GatewayEndpoint:
    """One inference target behind the gateway, with its sharding weight.

    ``capacity`` defaults to the target's own ``capacity`` attribute (a
    :class:`RemoteSession` reports its server's worker count), then to its
    ``jobs`` attribute (a local pool), then to 1.
    """

    target: object
    capacity: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if not hasattr(self.target, "infer"):
            raise TypeError(
                f"gateway endpoint target must provide infer(); got "
                f"{type(self.target).__name__}"
            )
        if not self.capacity:
            self.capacity = float(
                getattr(self.target, "capacity", 0)
                or getattr(self.target, "jobs", 0)
                or 1
            )
        if self.capacity <= 0:
            raise ValueError(f"endpoint capacity must be > 0, got {self.capacity}")
        if not self.name:
            self.name = f"{type(self.target).__name__.lower()}"


@dataclass
class _ShardPlan:
    endpoint: GatewayEndpoint
    start: int
    stop: int
    response: InferenceResponse | None = field(default=None, repr=False)


class InferenceGateway:
    """Fan batches out across endpoints and merge the responses exactly."""

    def __init__(
        self,
        endpoints: Sequence[GatewayEndpoint | object],
        *,
        name: str = "gateway",
    ):
        if not endpoints:
            raise ValueError("gateway needs at least one endpoint")
        self.name = name
        self.endpoints = [
            e if isinstance(e, GatewayEndpoint) else GatewayEndpoint(target=e)
            for e in endpoints
        ]
        self._threads = ThreadPoolExecutor(
            max_workers=len(self.endpoints), thread_name_prefix="gateway"
        )
        # Shards are pinned to endpoints whose own infer() calls serialise
        # internally, so the gateway allows one batch in flight at a time.
        self._infer_lock = threading.Lock()
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------

    def close(self, *, close_endpoints: bool = False) -> None:
        """Shut down the dispatch threads; optionally close every endpoint."""
        if not self._closed:
            self._closed = True
            self._threads.shutdown(wait=True)
        if close_endpoints:
            for endpoint in self.endpoints:
                closer = getattr(endpoint.target, "close", None)
                if callable(closer):
                    closer()

    def __enter__(self) -> "InferenceGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- sharding -----------------------------------------------------------------

    @property
    def total_capacity(self) -> float:
        """Sum of the endpoint capacities."""
        return float(sum(e.capacity for e in self.endpoints))

    def shard_plan(self, batch: int) -> list[_ShardPlan]:
        """Capacity-weighted contiguous shards covering ``[0, batch)`` exactly.

        Cumulative rounding keeps the boundaries monotone and the final
        boundary equal to ``batch``; endpoints whose rounded share is empty
        (small batches) are skipped rather than sent degenerate requests.
        """
        total = self.total_capacity
        plan: list[_ShardPlan] = []
        start = 0
        cumulative = 0.0
        for endpoint in self.endpoints:
            cumulative += endpoint.capacity
            stop = round(batch * cumulative / total)
            if stop > start:
                plan.append(_ShardPlan(endpoint=endpoint, start=start, stop=stop))
                start = stop
        return plan

    # -- inference ----------------------------------------------------------------

    def infer(self, request: InferenceRequest) -> InferenceResponse:
        """Shard one request across the endpoints and merge the responses."""
        with self._infer_lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            plan = self.shard_plan(request.batch_size)
            # A single-shard plan still goes through the merge below so every
            # gateway response has the same shape (metadata["shards"] etc.).
            futures = [
                self._threads.submit(
                    shard.endpoint.target.infer,
                    request.shard(shard.start, shard.stop),
                )
                for shard in plan
            ]
            for shard, future in zip(plan, futures):
                shard.response = future.result()

        responses = [shard.response for shard in plan]
        predictions = np.concatenate([r.predictions for r in responses])
        spike_counts = np.vstack([r.spike_counts for r in responses])
        counters = responses[0].counters
        energy = responses[0].energy
        for shard_response in responses[1:]:
            counters = counters.merge(shard_response.counters)
            energy = energy.merged_with(shard_response.energy)
        accuracy = None
        if request.labels is not None:
            accuracy = float(
                np.mean(predictions == np.asarray(request.labels, dtype=int))
            )
        backends = {r.backend for r in responses}
        return InferenceResponse(
            predictions=predictions,
            spike_counts=spike_counts,
            accuracy=accuracy,
            counters=counters,
            energy=energy,
            timesteps=responses[0].timesteps,
            backend=backends.pop() if len(backends) == 1 else "mixed",
            batch_size=request.batch_size,
            jobs=int(sum(r.jobs for r in responses)),
            metadata={
                "gateway": self.name,
                "shards": [
                    {
                        "endpoint": shard.endpoint.name,
                        "start": shard.start,
                        "stop": shard.stop,
                        "jobs": shard.response.jobs,
                    }
                    for shard in plan
                ],
            },
        )
