"""Prometheus text-format (0.0.4) rendering of a registry snapshot.

Rendering consumes :meth:`MetricsRegistry.snapshot` output rather than the
live registry, so the ``metrics`` wire op and the HTTP endpoint — which
both start from the same snapshot — are guaranteed to serve identical
values, and a snapshot shipped across the wire renders the same text on
the far side.
"""

from __future__ import annotations

import math

from repro.serve.metrics.registry import MetricsRegistry

__all__ = ["CONTENT_TYPE", "render_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def render_prometheus(source: MetricsRegistry | dict) -> str:
    """Render a registry (or its :meth:`snapshot`) as Prometheus text."""
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    families = snapshot.get("families", {})
    lines: list[str] = []
    for name in sorted(families):
        family = families[name]
        kind = family["type"]
        help_text = family.get("help") or name
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        edges = family.get("edges")
        for series in family["series"]:
            labels = series.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                for edge, bucket_count in zip(edges, series["buckets"]):
                    cumulative += bucket_count
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels_text(labels, {'le': _format_value(edge)})}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket{_labels_text(labels, {'le': '+Inf'})}"
                    f" {series['count']}"
                )
                lines.append(
                    f"{name}_sum{_labels_text(labels)} "
                    f"{_format_value(series['sum'])}"
                )
                lines.append(f"{name}_count{_labels_text(labels)} {series['count']}")
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} "
                    f"{_format_value(series['value'])}"
                )
    return "\n".join(lines) + "\n"
