"""Structural chip simulation driver.

Runs a :class:`~repro.core.resparc.ResparcChip` over a batch of inputs for a
full rate-coding window, collects the chip's component-level event counters
and converts them into the same :class:`~repro.energy.model.EnergyReport`
the analytical model produces, so the two models can be compared directly
on MLP workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ArchitectureConfig
from repro.core.resparc import ResparcChip
from repro.core.stats import EventCounters, counters_to_energy
from repro.crossbar.energy import CrossbarEnergyModel
from repro.energy.components import DEFAULT_LIBRARY, ComponentLibrary
from repro.energy.model import EnergyReport
from repro.snn.conversion import SpikingNetwork
from repro.snn.encoding import DeterministicRateEncoder, PoissonEncoder
from repro.utils.validation import check_positive

__all__ = ["ChipRunResult", "ChipSimulator"]


@dataclass(frozen=True)
class ChipRunResult:
    """Outcome of running a batch of samples on the structural chip."""

    predictions: np.ndarray
    spike_counts: np.ndarray
    accuracy: float | None
    counters: EventCounters
    energy: EnergyReport
    timesteps: int


@dataclass
class ChipSimulator:
    """Drives a structurally instantiated chip over encoded spike trains."""

    config: ArchitectureConfig = field(default_factory=ArchitectureConfig)
    library: ComponentLibrary = field(default_factory=lambda: DEFAULT_LIBRARY)
    timesteps: int = 32
    encoder: str = "deterministic"
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        check_positive("timesteps", self.timesteps)
        if self.encoder not in ("poisson", "deterministic"):
            raise ValueError(f"encoder must be 'poisson' or 'deterministic', got {self.encoder!r}")

    def build_chip(self, snn: SpikingNetwork) -> ResparcChip:
        """Instantiate and program a chip for a dense spiking network."""
        return ResparcChip.from_spiking_network(snn, config=self.config, rng=self.rng)

    def _encode(self, inputs: np.ndarray) -> np.ndarray:
        if self.encoder == "poisson":
            return PoissonEncoder(rng=self.rng).encode(inputs, self.timesteps)
        return DeterministicRateEncoder().encode(inputs, self.timesteps)

    def _gather_counters(self, chip: ResparcChip) -> EventCounters:
        counters = EventCounters()
        for cell in chip.neurocells:
            counters.switch_hops += cell.switch_hops
            counters.suppressed_packets += cell.suppressed_packets
            counters.zero_checks += cell.zero_checks
            for mpe in cell.mpes:
                counters.crossbar_evaluations += mpe.crossbar_evaluations
                counters.crossbar_device_energy_j += mpe.crossbar_energy_j
                counters.ibuff_accesses += sum(b.accesses for b in mpe.ibuffs)
                counters.obuff_accesses += sum(b.accesses for b in mpe.obuffs)
                counters.tbuff_accesses += mpe.tbuffer_lookups
                counters.local_control_events += mpe.control.evaluations_issued
                counters.ccu_transfers += mpe.ccu.total_transfers
                counters.neuron_integrations += mpe.neuron_integrations
        counters.io_bus_words += chip.bus.words_transferred
        counters.zero_checks += chip.bus.zero_checks
        counters.input_sram_reads += chip.input_memory.reads
        counters.input_sram_writes += chip.input_memory.writes
        if chip.global_control is not None:
            counters.global_control_events += chip.global_control.flag_updates
        return counters

    def run(
        self,
        snn: SpikingNetwork,
        inputs: np.ndarray,
        labels: np.ndarray | None = None,
        chip: ResparcChip | None = None,
    ) -> ChipRunResult:
        """Run a batch of flattened inputs through the structural chip."""
        chip = chip or self.build_chip(snn)
        x = np.asarray(inputs, dtype=float)
        if x.ndim == 1:
            x = x[np.newaxis]
        x = x.reshape(x.shape[0], -1)
        spike_train = self._encode(x)

        batch = x.shape[0]
        n_out = chip._layer_dims[chip.layer_order[-1]][1]
        spike_counts = np.zeros((batch, n_out))
        predictions = np.zeros(batch, dtype=int)
        wall_clock_s = 0.0

        for sample in range(batch):
            chip.reset_state()
            for t in range(self.timesteps):
                out = chip.step(spike_train[t, sample])
                spike_counts[sample] += out
            final_pool = chip.neuron_pools[chip.layer_order[-1]]
            score = spike_counts[sample] + 1e-3 * final_pool.membrane.reshape(-1)
            predictions[sample] = int(np.argmax(score))
            # A per-timestep latency of one crossbar read + integration per
            # time-multiplex stage, matching the analytical latency model.
            wall_clock_s += self.timesteps * (
                self.config.device.read_pulse_s + self.library.neuron_integration_latency_s
            )

        counters = self._gather_counters(chip)
        counters.neuron_spikes += float(spike_counts.sum())
        energy = counters_to_energy(
            counters,
            library=self.library,
            crossbar_energy=CrossbarEnergyModel(device=self.config.device),
            label=f"resparc-structural/{snn.name}",
            active_mpes=chip.total_mpes_used,
            active_switches=sum(len(cell.switches) for cell in chip.neurocells),
            duration_s=wall_clock_s,
            sram_access_energy_j=chip.input_memory.access_energy_j(),
            sram_leakage_power_w=chip.input_memory.leakage_power_w(),
        )
        accuracy = None
        if labels is not None:
            accuracy = float(np.mean(predictions == np.asarray(labels, dtype=int)))
        return ChipRunResult(
            predictions=predictions,
            spike_counts=spike_counts,
            accuracy=accuracy,
            counters=counters,
            energy=energy,
            timesteps=self.timesteps,
        )
