"""Engineering-unit helpers.

Energy, power and time quantities inside the simulator are always stored in
base SI units (joules, watts, seconds).  These helpers exist so reports and
logs can present quantities with sensible engineering prefixes (``nJ``,
``mW``, ``us``) and so user-facing configuration can be written in natural
units (``"200 MHz"``, ``"20 kOhm"``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Prefix",
    "to_engineering",
    "from_engineering",
    "format_energy",
    "format_power",
    "format_time",
    "format_frequency",
]


@dataclass(frozen=True)
class Prefix:
    """An SI prefix with its symbol and multiplier."""

    symbol: str
    multiplier: float


#: SI prefixes ordered from largest to smallest multiplier.
_PREFIXES = (
    Prefix("T", 1e12),
    Prefix("G", 1e9),
    Prefix("M", 1e6),
    Prefix("k", 1e3),
    Prefix("", 1.0),
    Prefix("m", 1e-3),
    Prefix("u", 1e-6),
    Prefix("n", 1e-9),
    Prefix("p", 1e-12),
    Prefix("f", 1e-15),
    Prefix("a", 1e-18),
)

_PREFIX_BY_SYMBOL = {p.symbol: p for p in _PREFIXES}
# Accept the unicode micro sign as an alias for "u".
_PREFIX_BY_SYMBOL["µ"] = _PREFIX_BY_SYMBOL["u"]


def to_engineering(value: float, unit: str = "", precision: int = 3) -> str:
    """Format ``value`` with an engineering prefix.

    Parameters
    ----------
    value:
        Quantity in base SI units.
    unit:
        Unit symbol appended after the prefix (``"J"``, ``"W"``, ``"s"``).
    precision:
        Number of significant decimal digits to keep.

    Returns
    -------
    str
        Human readable string such as ``"12.3 nJ"``.
    """
    if value == 0:
        return f"0 {unit}".strip()
    magnitude = abs(value)
    for prefix in _PREFIXES:
        if magnitude >= prefix.multiplier:
            scaled = value / prefix.multiplier
            return f"{scaled:.{precision}g} {prefix.symbol}{unit}".strip()
    smallest = _PREFIXES[-1]
    scaled = value / smallest.multiplier
    return f"{scaled:.{precision}g} {smallest.symbol}{unit}".strip()


def from_engineering(text: str) -> float:
    """Parse an engineering-notation string into base SI units.

    Accepts forms like ``"200 MHz"``, ``"20kOhm"``, ``"1.2 nJ"`` or plain
    numbers.  The unit name itself is ignored; only the prefix scales the
    value.

    Raises
    ------
    ValueError
        If the string cannot be parsed.
    """
    stripped = text.strip()
    if not stripped:
        raise ValueError("cannot parse an empty string as a quantity")

    # Split the leading numeric part from the trailing unit part.
    idx = 0
    seen_digit = False
    while idx < len(stripped):
        char = stripped[idx]
        if char.isdigit():
            seen_digit = True
            idx += 1
        elif char in "+-.eE" and (idx == 0 or char in ".eE" or stripped[idx - 1] in "eE"):
            idx += 1
        else:
            break
    if not seen_digit:
        raise ValueError(f"no numeric value found in {text!r}")

    number = float(stripped[:idx])
    unit_part = stripped[idx:].strip()
    if not unit_part:
        return number

    first = unit_part[0]
    if first in _PREFIX_BY_SYMBOL and len(unit_part) > 1:
        # A bare "m" could be metres rather than the milli prefix; we treat a
        # single-character unit as a unit, not a prefix.
        return number * _PREFIX_BY_SYMBOL[first].multiplier
    return number


def format_energy(joules: float, precision: int = 3) -> str:
    """Format an energy value (J) with an engineering prefix."""
    return to_engineering(joules, "J", precision)


def format_power(watts: float, precision: int = 3) -> str:
    """Format a power value (W) with an engineering prefix."""
    return to_engineering(watts, "W", precision)


def format_time(seconds: float, precision: int = 3) -> str:
    """Format a time value (s) with an engineering prefix."""
    return to_engineering(seconds, "s", precision)


def format_frequency(hertz: float, precision: int = 3) -> str:
    """Format a frequency value (Hz) with an engineering prefix."""
    return to_engineering(hertz, "Hz", precision)
