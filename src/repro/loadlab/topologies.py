"""Every serving topology behind one ``submit(request)`` surface.

The lab drives the same :class:`~repro.serve.distributed.executors.SessionSpec`
derived workload through each layer of the serving stack:

========== ====================================================================
``session``  one :class:`~repro.serve.ChipSession` (the exactness baseline)
``pool``     a :class:`~repro.serve.ChipPool` sharding across thread workers
``server``   an in-process :class:`~repro.serve.distributed.ChipServer` with a
             :class:`~repro.serve.distributed.PipelinedSession` client — the
             full wire protocol, dynamic batcher and admission control
``gateway``  two in-process servers behind an
             :class:`~repro.serve.distributed.InferenceGateway`
``fleet``    an :class:`~repro.serve.fleet.ElasticFleet` of replica
             *processes* (controller off: fixed membership, deterministic)
========== ====================================================================

Shard-stable encoding makes every topology result-identical for the same
request, so any throughput/latency/energy difference the sweep measures is
pure serving overhead, never numerics.  Each builder returns a
:class:`Topology` whose ``submit`` is thread-safe and whose ``close``
tears the whole arrangement down.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.config import ArchitectureConfig
from repro.serve.distributed import (
    ChipServer,
    GatewayEndpoint,
    InferenceGateway,
    PipelinedSession,
)
from repro.serve.distributed.executors import SessionSpec
from repro.serve.pool import ChipPool
from repro.serve.schema import InferenceRequest, InferenceResponse
from repro.serve.session import ChipSession
from repro.snn import Dense, Network, convert_to_snn

__all__ = [
    "TOPOLOGIES",
    "LabWorkload",
    "Topology",
    "build_topology",
    "default_workload",
]


@dataclass(frozen=True)
class LabWorkload:
    """The network + input corpus every topology serves."""

    session_spec: SessionSpec
    inputs: np.ndarray
    labels: np.ndarray

    def make_request(
        self, index: int, rng: np.random.Generator, batch_size: int
    ) -> InferenceRequest:
        """A seeded random contiguous slice of the corpus, labels attached."""
        total = self.inputs.shape[0]
        size = min(batch_size, total)
        start = int(rng.integers(0, total - size + 1))
        return InferenceRequest(
            inputs=self.inputs[start : start + size],
            labels=self.labels[start : start + size],
        )


def default_workload(
    *,
    features: int = 32,
    hidden: int = 16,
    classes: int = 10,
    samples: int = 64,
    timesteps: int = 4,
    seed: int = 7,
) -> LabWorkload:
    """A small MLP workload sized so a sweep cell finishes in seconds."""
    rng = np.random.default_rng(seed)
    network = Network(
        (features,),
        [
            Dense(features, hidden, use_bias=False, rng=rng, name="fc1"),
            Dense(hidden, classes, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name=f"loadlab-{features}x{hidden}x{classes}",
    )
    snn = convert_to_snn(network, rng.random((12, features)))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    # One primary session pins the encoder state every topology shares, so
    # placements stay result-identical across the sweep.
    primary = ChipSession(
        snn, config=config, timesteps=timesteps, encoder="deterministic", seed=seed
    )
    assert primary.encoder_state is not None
    spec = SessionSpec(
        snn=snn,
        config=primary.config,
        library=None,
        timesteps=timesteps,
        backend="vectorized",
        seed=seed,
        encoder_state=primary.encoder_state,
    )
    inputs = rng.random((samples, features))
    labels = rng.integers(0, classes, size=samples)
    return LabWorkload(session_spec=spec, inputs=inputs, labels=labels)


class Topology:
    """One built serving arrangement: a thread-safe ``submit`` + teardown."""

    def __init__(self, name: str, submit, close, *, serialized: bool = False):
        self.name = name
        self._submit = submit
        self._close = close
        self._lock = threading.Lock() if serialized else None
        self._closed = False

    def submit(self, request: InferenceRequest) -> InferenceResponse:
        if self._lock is not None:
            with self._lock:
                return self._submit(request)
        return self._submit(request)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._close()

    def __enter__(self) -> "Topology":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _build_session(workload: LabWorkload, options: dict) -> Topology:
    session = workload.session_spec.build_session()
    # A bare session has no dispatch queue; serialize concurrent callers.
    return Topology("session", session.infer, lambda: None, serialized=True)


def _build_pool(workload: LabWorkload, options: dict) -> Topology:
    pool = ChipPool(
        workload.session_spec.snn,
        jobs=int(options.get("jobs", 2)),
        config=workload.session_spec.config,
        timesteps=workload.session_spec.timesteps,
        seed=workload.session_spec.seed,
        encoder_state=workload.session_spec.encoder_state,
        executor="thread",
    )
    return Topology("pool", pool.infer, pool.close)


def _start_server(workload: LabWorkload, options: dict, name: str) -> ChipServer:
    return ChipServer(
        workload.session_spec.build_session(),
        port=0,
        workload=name,
        max_batch=int(options.get("max_batch", 8)),
        max_queue=int(options.get("max_queue", 0)),
        metrics_port=0 if options.get("metrics") else None,
    ).start()


def _build_server(workload: LabWorkload, options: dict) -> Topology:
    server = _start_server(workload, options, "loadlab-server")
    client = PipelinedSession.connect(server.address, connections=2)

    def close() -> None:
        try:
            client.close()
        finally:
            server.close()

    return Topology("server", client.infer, close)


def _build_gateway(workload: LabWorkload, options: dict) -> Topology:
    replicas = int(options.get("replicas", 2))
    servers = [
        _start_server(workload, options, f"loadlab-gw-{i}") for i in range(replicas)
    ]
    clients = [PipelinedSession.connect(s.address, connections=2) for s in servers]
    gateway = InferenceGateway(
        [
            GatewayEndpoint(target=client, name=f"gw-{i}")
            for i, client in enumerate(clients)
        ],
        name="loadlab-gateway",
    )

    def close() -> None:
        gateway.close()
        for client in clients:
            client.close()
        for server in servers:
            server.close()

    return Topology("gateway", gateway.infer, close)


def _build_fleet(workload: LabWorkload, options: dict) -> Topology:
    # Imported lazily: the fleet spawns real replica processes, which the
    # cheaper topologies never need.
    from repro.serve.fleet import ElasticFleet, FleetPolicy, ReplicaSpec

    replicas = int(options.get("replicas", 2))
    fleet = ElasticFleet(
        ReplicaSpec(
            session_spec=workload.session_spec,
            workload="loadlab-fleet",
            max_batch=int(options.get("max_batch", 8)),
            max_queue=int(options.get("max_queue", 0)),
        ),
        policy=FleetPolicy(min_replicas=replicas, max_replicas=replicas),
        name="loadlab-fleet",
        start_controller=False,
    )
    return Topology("fleet", fleet.infer, fleet.close)


TOPOLOGIES = {
    "session": _build_session,
    "pool": _build_pool,
    "server": _build_server,
    "gateway": _build_gateway,
    "fleet": _build_fleet,
}


def build_topology(
    name: str, workload: LabWorkload, **options: object
) -> Topology:
    """Build one named topology over ``workload`` (see :data:`TOPOLOGIES`)."""
    if name not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {name!r}; choose from {sorted(TOPOLOGIES)}"
        )
    return TOPOLOGIES[name](workload, dict(options))
