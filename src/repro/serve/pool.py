"""Sharded inference across a pool of chip sessions.

:class:`ChipPool` owns ``jobs`` worker :class:`~repro.serve.ChipSession`\\ s
and splits each request batch into contiguous shards, one per worker, run
concurrently on a thread pool (the vectorized backend spends its time in
NumPy kernels, which release the GIL).  The merged response is
*result-identical* to running the whole batch on one session:

* encoding is shard-stable — every worker shares the pool's
  :class:`~repro.snn.encoding.EncoderState` and receives its shard's
  absolute ``sample_offset``, so sample ``i`` gets the same spike train no
  matter how the batch is partitioned;
* predictions and spike counts are per-sample and concatenate exactly;
* event counters are integer totals that sum exactly across shards, and the
  merged counters are converted to energy through the primary session's own
  pipeline, so components agree with a single-session run to floating-point
  accumulation order (<< 1e-9 relative).

Worker isolation: with the vectorized backend all workers share one
programmed chip and its compiled program (the engine never mutates either);
the structural backend mutates live component state, so each worker gets its
own identically-seeded chip.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.config import ArchitectureConfig
from repro.energy.components import ComponentLibrary
from repro.serve.schema import InferenceRequest, InferenceResponse
from repro.serve.session import ChipSession
from repro.snn.conversion import SpikingNetwork
from repro.snn.encoding import EncoderState

__all__ = ["ChipPool"]


class ChipPool:
    """N worker sessions sharding large batches behind one ``infer`` call."""

    def __init__(
        self,
        snn: SpikingNetwork,
        jobs: int = 2,
        *,
        config: ArchitectureConfig | None = None,
        library: ComponentLibrary | None = None,
        timesteps: int = 32,
        encoder: str = "deterministic",
        backend: str = "vectorized",
        seed: int = 0,
        encoder_state: EncoderState | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        primary = ChipSession(
            snn,
            config=config,
            library=library,
            timesteps=timesteps,
            encoder=encoder,
            backend=backend,
            seed=seed,
            encoder_state=encoder_state,
        )
        self.sessions = [primary]
        for _ in range(jobs - 1):
            # Vectorized workers share the primary's chip (and therefore its
            # cached compiled program); structural workers rebuild their own
            # chip from the same derived seed, which programs identically.
            shared_chip = primary.chip if backend == "vectorized" else None
            self.sessions.append(
                ChipSession(
                    snn,
                    chip=shared_chip,
                    config=primary.config,
                    library=library,
                    timesteps=timesteps,
                    backend=backend,
                    seed=seed,
                    encoder_state=primary.encoder_state,
                )
            )
        self._executor = ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="chip-pool"
        )
        # Shard tasks are pinned to fixed worker sessions, and structural
        # workers mutate their chip in place — so only one batch may be in
        # flight per pool.  Callers' infer() calls serialise on this lock.
        self._infer_lock = threading.Lock()
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker threads (idempotent)."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)

    def __enter__(self) -> "ChipPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def session(self) -> ChipSession:
        """The primary session (shared chip / encoder state / energy context)."""
        return self.sessions[0]

    # -- inference ----------------------------------------------------------------

    def _shard_bounds(self, batch: int) -> list[tuple[int, int]]:
        """Contiguous, near-equal shard boundaries; empty shards are dropped."""
        sizes = [len(part) for part in np.array_split(np.arange(batch), self.jobs)]
        bounds = []
        start = 0
        for size in sizes:
            if size:
                bounds.append((start, start + size))
            start += size
        return bounds

    def infer(self, request: InferenceRequest) -> InferenceResponse:
        """Shard one request across the workers and merge their responses.

        Thread-safe: concurrent callers are serialised, one batch in flight
        at a time (the worker threads parallelise *within* a batch).
        """
        with self._infer_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            batch = request.batch_size
            timesteps = (
                request.timesteps
                if request.timesteps is not None
                else self.session.timesteps
            )
            bounds = self._shard_bounds(batch)
            if len(bounds) <= 1:
                return self.session.infer(request)

            futures = [
                self._executor.submit(session.infer, request.shard(start, stop))
                for session, (start, stop) in zip(self.sessions, bounds)
            ]
            responses = [future.result() for future in futures]

        predictions = np.concatenate([r.predictions for r in responses])
        spike_counts = np.vstack([r.spike_counts for r in responses])
        counters = responses[0].counters
        for shard in responses[1:]:
            counters = counters.merge(shard.counters)
        # Recompute energy from the merged counters through the primary
        # session's pipeline: identical to a single full-batch run (the
        # static/leakage terms are linear in the batch size).
        energy = self.session.energy_for(counters, batch=batch, timesteps=timesteps)
        accuracy = None
        if request.labels is not None:
            accuracy = float(
                np.mean(predictions == np.asarray(request.labels, dtype=int))
            )
        return InferenceResponse(
            predictions=predictions,
            spike_counts=spike_counts,
            accuracy=accuracy,
            counters=counters,
            energy=energy,
            timesteps=timesteps,
            backend=self.session.backend,
            batch_size=batch,
            jobs=len(bounds),
        )
