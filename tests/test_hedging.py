"""Tail-latency machinery: hedged dispatch, retry budgets, backoff.

The invariants under test:

* a hedge duplicates a straggling shard onto a sibling, the first answer
  wins, and the merged response stays bit-identical to a single session —
  with the hedge recorded in counters, response metadata and the
  per-endpoint hedged-against load signal;
* a hedge never fires past the request deadline (the timer is simply not
  armed when the threshold cannot precede it);
* cancelling the losing attempt is best-effort — a broken cancel channel
  must never fail a request the winner already answered;
* shed/drain retries draw from one per-request :class:`RetryBudget`; when
  it runs dry the caller gets the structured
  :class:`RetryBudgetExhausted` naming the attempts, and the gateway
  counts it;
* the jittered-exponential backoff helper shared by the remote client and
  the gateway stays bounded and jittered.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future

import numpy as np
import pytest

from repro.core import ArchitectureConfig
from repro.serve import (
    ChipSession,
    InferenceRequest,
    RetryBudget,
    RetryBudgetExhausted,
    retry_backoff,
)
from repro.serve.distributed import (
    GatewayEndpoint,
    InferenceGateway,
    RemoteServerError,
)
from repro.serve.schema import ERROR_OVERLOADED
from repro.snn import Dense, Network, convert_to_snn


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(19)
    network = Network(
        (32,),
        [
            Dense(32, 16, use_bias=False, rng=rng, name="fc1"),
            Dense(16, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="hedge-mlp",
    )
    snn = convert_to_snn(network, rng.random((12, 32)))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    inputs = rng.random((6, 32))
    return snn, config, inputs


def _session(workload) -> ChipSession:
    snn, config, _ = workload
    return ChipSession(snn, config=config, timesteps=4, encoder="poisson", seed=11)


class _GatedTarget:
    """Holds every dispatch until released — a deterministic straggler."""

    def __init__(self, session: ChipSession):
        self.session = session
        self.release = threading.Event()

    def infer(self, request: InferenceRequest):
        if not self.release.wait(timeout=60):
            raise RuntimeError("gate never released")
        return self.session.infer(request)


def _drain_inflight(gateway: InferenceGateway, timeout_s: float = 30.0) -> None:
    """Every endpoint's inflight charge must return to zero (no leaks)."""
    deadline = time.monotonic() + timeout_s
    while True:
        loads = gateway.endpoint_loads()
        if all(load["inflight"] == 0 for load in loads.values()):
            return
        assert time.monotonic() < deadline, f"inflight never drained: {loads}"
        time.sleep(0.01)


class TestHedgedDispatch:
    def test_hedge_wins_exactly_and_is_recorded(self, workload):
        snn, config, inputs = workload
        expected = _session(workload).infer(InferenceRequest(inputs=inputs))
        gate = _GatedTarget(_session(workload))
        gateway = InferenceGateway(
            [
                GatewayEndpoint(target=gate, name="straggler"),
                GatewayEndpoint(target=_session(workload), name="sibling"),
            ],
            adaptive=False,
            hedge_after_s=0.02,
        )
        try:
            response = gateway.submit(InferenceRequest(inputs=inputs)).result(
                timeout=60
            )
            np.testing.assert_array_equal(response.predictions, expected.predictions)
            np.testing.assert_array_equal(
                response.spike_counts, expected.spike_counts
            )
            tail = gateway.tail_stats()
            assert tail["hedges_issued"] == 1
            assert tail["hedge_wins"] == 1
            assert tail["budget_exhausted"] == 0
            hedged = [
                shard
                for shard in response.metadata["shards"]
                if shard.get("hedged_from") == "straggler"
            ]
            assert hedged and all(s["endpoint"] == "sibling" for s in hedged)
            assert all(s["hedged_to"] == "sibling" for s in hedged)
            # The straggler was hedged against: the controller's signal.
            assert gateway.endpoint_loads()["straggler"]["hedges"] == 1
        finally:
            gate.release.set()
            # The losing attempt (blocking infer; uncancellable) must still
            # complete, count as wasted compute and release its charge.
            _drain_inflight(gateway)
            gateway.close()
        assert gateway.tail_stats()["hedge_wasted_compute"] == 1

    def test_hedge_never_fires_past_deadline(self, workload):
        snn, config, inputs = workload
        expected = _session(workload).infer(InferenceRequest(inputs=inputs))
        slow = _GatedTarget(_session(workload))
        gateway = InferenceGateway(
            [
                GatewayEndpoint(target=slow, name="straggler"),
                GatewayEndpoint(target=_session(workload), name="sibling"),
            ],
            adaptive=False,
            hedge_after_s=0.05,
        )
        try:
            # Threshold (50ms) cannot precede the deadline (20ms): the
            # straggler timer must not be armed at all.  Local sessions do
            # not enforce deadlines, so the request still completes once
            # the gate opens — without a single hedge.
            future = gateway.submit(
                InferenceRequest(inputs=inputs), deadline_s=0.02
            )
            time.sleep(0.15)  # well past both threshold and deadline
            slow.release.set()
            response = future.result(timeout=60)
            np.testing.assert_array_equal(response.predictions, expected.predictions)
            tail = gateway.tail_stats()
            assert tail["hedges_issued"] == 0
            assert tail["hedge_wins"] == 0
            assert gateway.endpoint_loads()["straggler"]["hedges"] == 0
        finally:
            slow.release.set()
            _drain_inflight(gateway)
            gateway.close()

    def test_losing_cancel_failure_never_fails_the_request(self, workload):
        snn, config, inputs = workload
        expected = _session(workload).infer(InferenceRequest(inputs=inputs))

        class _BrokenCancelFuture(Future):
            def cancel(self) -> bool:
                raise RuntimeError("cancel channel broken")

        class _StuckSubmitTarget:
            """Cancellable-looking endpoint that never answers."""

            def __init__(self):
                self.futures: list[Future] = []

            def infer(self, request: InferenceRequest):
                raise AssertionError("submit path expected")

            def submit(self, request: InferenceRequest) -> Future:
                future = _BrokenCancelFuture()
                self.futures.append(future)
                return future

        stuck = _StuckSubmitTarget()
        gateway = InferenceGateway(
            [
                GatewayEndpoint(target=stuck, name="straggler"),
                GatewayEndpoint(target=_session(workload), name="sibling"),
            ],
            adaptive=False,
            hedge_after_s=0.02,
        )
        try:
            response = gateway.submit(InferenceRequest(inputs=inputs)).result(
                timeout=60
            )
            # The stuck endpoint's shard only has an answer because the
            # hedge won on the sibling; its cancel raised and was ignored.
            np.testing.assert_array_equal(response.predictions, expected.predictions)
            tail = gateway.tail_stats()
            assert tail["hedges_issued"] == 1
            assert tail["hedge_wins"] == 1
            assert stuck.futures, "the straggler was never dispatched to"
        finally:
            # Unblock the worker parked on the stuck future, then close.
            for future in stuck.futures:
                future.set_exception(CancelledError())
            _drain_inflight(gateway)
            gateway.close()


class _AlwaysShedTarget:
    """Sheds every dispatch with the structured ``overloaded`` error."""

    def __init__(self):
        self.calls = 0

    def infer(self, request: InferenceRequest):
        self.calls += 1
        raise RemoteServerError("server overloaded", code=ERROR_OVERLOADED)


class TestRetryBudgets:
    def test_shed_retry_moves_shard_and_is_recorded(self, workload):
        snn, config, inputs = workload
        expected = _session(workload).infer(InferenceRequest(inputs=inputs))

        class _ShedOnceTarget:
            def __init__(self, session: ChipSession):
                self.session = session
                self.calls = 0

            def infer(self, request: InferenceRequest):
                self.calls += 1
                if self.calls == 1:
                    raise RemoteServerError("overloaded", code=ERROR_OVERLOADED)
                return self.session.infer(request)

        flaky = _ShedOnceTarget(_session(workload))
        gateway = InferenceGateway(
            [
                # Capacity skew: the whole batch plans onto the flaky
                # endpoint; the healthy one exists to absorb the retry.
                GatewayEndpoint(target=flaky, capacity=100, name="flaky"),
                GatewayEndpoint(target=_session(workload), capacity=1, name="ok"),
            ],
            adaptive=False,
            retry_backoff_base_s=0.001,
            retry_backoff_cap_s=0.002,
        )
        with gateway:
            response = gateway.infer(InferenceRequest(inputs=inputs))
        np.testing.assert_array_equal(response.predictions, expected.predictions)
        assert flaky.calls == 1
        shards = response.metadata["shards"]
        assert [s["endpoint"] for s in shards] == ["ok"]
        assert shards[0]["retried_from"] == "flaky"
        assert shards[0]["retries"] == 1
        assert gateway.tail_stats()["retries"] == 1
        assert gateway.tail_stats()["budget_exhausted"] == 0

    def test_budget_exhaustion_surfaces_structured_error(self, workload):
        snn, config, inputs = workload
        shed_a, shed_b = _AlwaysShedTarget(), _AlwaysShedTarget()
        gateway = InferenceGateway(
            [
                GatewayEndpoint(target=shed_a, capacity=100, name="a"),
                GatewayEndpoint(target=shed_b, capacity=1, name="b"),
            ],
            adaptive=False,
        )
        budget = RetryBudget(2, backoff_base_s=0.001, backoff_cap_s=0.002)
        request = InferenceRequest(inputs=inputs).with_retry_budget(budget)
        with gateway:
            future = gateway.submit(request)
            with pytest.raises(RetryBudgetExhausted, match=r"2 attempt"):
                future.result(timeout=60)
        # 2 attempts total: the plan's dispatch plus one budgeted retry.
        assert shed_a.calls + shed_b.calls == 2
        assert budget.remaining == 0
        tail = gateway.tail_stats()
        assert tail["retries"] == 1
        assert tail["budget_exhausted"] == 1
        _drain_inflight(gateway, timeout_s=5.0)

    def test_exhaustion_error_names_attempts_and_cause(self):
        budget = RetryBudget(3)
        assert budget.try_consume() == 0
        assert budget.try_consume() == 1
        assert budget.try_consume() is None
        error = budget.exhausted(ValueError("boom"))
        assert isinstance(error, RetryBudgetExhausted)
        assert error.attempts == 3
        assert error.retries == 2
        assert "3 attempt(s)" in str(error)
        assert "ValueError: boom" in str(error)
        assert isinstance(error.__cause__, ValueError)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(0)
        with pytest.raises(ValueError):
            RetryBudget(1, backoff_base_s=-0.1)


class TestSharedBackoff:
    def test_backoff_grows_and_jitters(self):
        for attempt, base in ((0, 0.05), (1, 0.1), (2, 0.2)):
            for _ in range(20):
                delay = retry_backoff(attempt)
                assert base * 0.5 <= delay <= base * 1.5

    def test_backoff_cap(self):
        for _ in range(20):
            assert retry_backoff(10, base_s=0.05, cap_s=0.2) <= 0.2 * 1.5
