"""Tests for the benchmark workloads and the figure-reproduction experiments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentSettings,
    WorkloadContext,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14_energy,
)
from repro.workloads import BENCHMARKS, build_benchmark, get_benchmark, list_benchmarks


class TestWorkloadRegistry:
    def test_registry_has_six_benchmarks(self):
        assert len(BENCHMARKS) == 6
        assert len(list_benchmarks("MLP")) == 3
        assert len(list_benchmarks("CNN")) == 3
        assert len(list_benchmarks(dataset="mnist")) == 2

    def test_get_benchmark_unknown(self):
        with pytest.raises(KeyError):
            get_benchmark("alexnet")

    def test_neuron_counts_match_paper_exactly(self):
        for spec in BENCHMARKS.values():
            network = spec.build()
            assert network.neuron_count == spec.paper_neurons, spec.name

    def test_synapse_counts_close_to_paper(self):
        # Synapse totals are reconstructions; they must land within 12% of the
        # published Fig. 10 values (exact for MLPs, approximate for CNNs).
        for spec in BENCHMARKS.values():
            network = spec.build()
            deviation = abs(network.synapse_count - spec.paper_synapses) / spec.paper_synapses
            limit = 0.005 if spec.is_mlp else 0.12
            assert deviation <= limit, (spec.name, network.synapse_count)

    def test_layer_counts_match_paper(self):
        # The paper counts computational layers (conv/pool/fc), not reshapes.
        from repro.snn import extract_connectivity

        for spec in BENCHMARKS.values():
            network = spec.build()
            computational = len(extract_connectivity(network))
            expected = spec.paper_layers if spec.is_mlp else spec.paper_layers
            # MLP layer counts in Fig. 10 include the input layer.
            if spec.is_mlp:
                assert computational == expected - 1, spec.name
            else:
                assert computational == expected, spec.name

    def test_scaled_variants_shrink(self):
        full = build_benchmark("mnist-cnn")
        small = build_benchmark("mnist-cnn", scale=0.25)
        assert small.neuron_count < full.neuron_count
        assert small.parameter_count < full.parameter_count

    def test_builders_are_deterministic(self):
        a = build_benchmark("mnist-mlp", seed=3)
        b = build_benchmark("mnist-mlp", seed=3)
        np.testing.assert_allclose(a.layers[0].weights, b.layers[0].weights)

    def test_input_shapes(self):
        assert get_benchmark("mnist-mlp").build().input_shape == (784,)
        assert get_benchmark("mnist-cnn").build().input_shape == (28, 28, 1)
        assert get_benchmark("cifar10-cnn").build().input_shape == (32, 32, 3)


@pytest.fixture(scope="module")
def quick_context():
    """A shared fast workload context (reduced networks) for experiment tests."""
    settings = ExperimentSettings(
        timesteps=6,
        eval_samples=2,
        train_samples=16,
        test_samples=8,
        train_epochs=0,
        network_scale=0.25,
        seed=3,
    )
    return WorkloadContext(settings)


class TestWorkloadContext:
    def test_prepare_caches(self, quick_context):
        first = quick_context.prepare("mnist-mlp")
        second = quick_context.prepare("mnist-mlp")
        assert first is second
        assert first.trace.timesteps == 6

    def test_prepare_cnn(self, quick_context):
        workload = quick_context.prepare("mnist-cnn")
        assert workload.spec.connectivity == "CNN"
        assert len(workload.trace.layers) == 6

    def test_evaluations_positive(self, quick_context):
        workload = quick_context.prepare("mnist-mlp")
        resparc = quick_context.evaluate_resparc(workload)
        cmos = quick_context.evaluate_cmos(workload)
        assert resparc.energy_per_classification_j > 0
        assert cmos.energy_per_classification_j > resparc.energy_per_classification_j


class TestFigureExperiments:
    def test_fig11_shape_holds_on_reduced_networks(self, quick_context):
        result = run_fig11(context=quick_context, benchmarks=["mnist-mlp", "mnist-cnn"])
        assert len(result.rows) == 2
        mlp = result.rows_for("MLP")[0]
        cnn = result.rows_for("CNN")[0]
        # RESPARC wins on both metrics for both families, and the MLP benefit
        # exceeds the CNN benefit — the paper's core qualitative claim.
        assert mlp.energy_benefit > 1 and cnn.energy_benefit > 1
        assert mlp.speedup > 1 and cnn.speedup > 1
        assert mlp.energy_benefit > cnn.energy_benefit
        assert "Fig. 11" in result.as_table()

    def test_fig12_breakdowns(self, quick_context):
        result = run_fig12(context=quick_context, benchmarks=["mnist-mlp"], sizes=(32, 64))
        entries = result.resparc_for("mnist-mlp")
        assert set(entries) == {32, 64}
        assert entries[32].total_j > entries[64].total_j
        cmos = result.cmos_for("mnist-mlp")
        assert cmos.memory_fraction > 0.5  # MLPs are memory dominated on CMOS
        assert "Fig. 12" in result.as_table()

    def test_fig13_event_driven_savings(self, quick_context):
        result = run_fig13(context=quick_context, benchmarks=("mnist-mlp",), sizes=(64, 32))
        entries = result.entries_for("mnist-mlp")
        for entry in entries.values():
            assert entry.energy_with_j <= entry.energy_without_j
            assert 0.0 <= entry.savings_fraction < 1.0
        # Savings are larger for the smaller MCA (shorter packets).
        assert entries[32].savings_fraction >= entries[64].savings_fraction
        assert "Fig. 13" in result.as_table()

    def test_fig14_energy_trends(self, quick_context):
        points = run_fig14_energy(context=quick_context, benchmark="mnist-mlp", bits=(1, 4, 8))
        by_bits = {p.bits: p for p in points}
        # CMOS energy grows with precision; RESPARC stays essentially flat.
        assert by_bits[8].cmos_normalised > by_bits[1].cmos_normalised
        assert abs(by_bits[8].resparc_normalised - by_bits[1].resparc_normalised) < 0.15
        assert by_bits[4].resparc_normalised == pytest.approx(1.0)
