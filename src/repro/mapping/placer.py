"""Placement of crossbar tiles onto mPEs and NeuroCells.

After partitioning, every layer owns a number of crossbar tiles.  The placer
assigns those tiles to macro Processing Engines (four MCAs per mPE in the
paper's configuration) and packs mPEs into NeuroCells (a 4x4 array of mPEs per
NC), producing the placement facts the architectural models need:

* how many mPEs / NeuroCells the design occupies,
* which layers share a NeuroCell with their successor (intra-NC spike
  transfers ride the switch network) and which do not (inter-NC transfers are
  serialised over the shared IO bus through the input SRAM, Fig. 7 of the
  paper),
* how many programmable switches are active.

The placement is greedy and layer-ordered, mirroring the paper's logical
dataflow: consecutive layers are placed in the same NeuroCell whenever they
fit, because that converts expensive bus transfers into one-hop switch
transfers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.mapping.partitioner import LayerPartition

__all__ = ["LayerPlacement", "Placement", "place_partitions"]


@dataclass(frozen=True)
class LayerPlacement:
    """Placement facts for one layer."""

    layer_index: int
    layer_name: str
    tile_count: int
    mpe_count: int
    neurocell_ids: tuple[int, ...]
    #: True when the *next* layer starts in the same NeuroCell this layer ends
    #: in, so its output spikes travel over the switch network only.
    output_stays_in_neurocell: bool

    @property
    def neurocell_count(self) -> int:
        """NeuroCells spanned by this layer."""
        return len(self.neurocell_ids)


@dataclass
class Placement:
    """Complete placement of a partitioned network onto RESPARC."""

    mcas_per_mpe: int
    mpes_per_neurocell: int
    layers: list[LayerPlacement] = field(default_factory=list)

    @property
    def total_mpes(self) -> int:
        """mPEs used by the whole design."""
        return sum(layer.mpe_count for layer in self.layers)

    @property
    def total_neurocells(self) -> int:
        """NeuroCells used by the whole design."""
        used: set[int] = set()
        for layer in self.layers:
            used.update(layer.neurocell_ids)
        return len(used)

    @property
    def total_switches(self) -> int:
        """Programmable switches active across the used NeuroCells.

        A 4x4 mPE NeuroCell has a 3x3 switch array (Fig. 8 of the paper); the
        general formula is ``(sqrt(mpes) - 1)^2`` per NeuroCell.
        """
        side = int(round(math.sqrt(self.mpes_per_neurocell)))
        switches_per_nc = max(side - 1, 1) ** 2
        return self.total_neurocells * switches_per_nc

    def layer(self, layer_index: int) -> LayerPlacement:
        """Placement record of the layer at ``layer_index``."""
        for placement in self.layers:
            if placement.layer_index == layer_index:
                return placement
        raise KeyError(f"no placement for layer index {layer_index}")

    @property
    def inter_neurocell_boundaries(self) -> int:
        """Number of layer boundaries whose traffic must cross NeuroCells."""
        return sum(1 for layer in self.layers[:-1] if not layer.output_stays_in_neurocell)


def place_partitions(
    partitions: list[LayerPartition],
    mcas_per_mpe: int = 4,
    mpes_per_neurocell: int = 16,
) -> Placement:
    """Greedily place partitioned layers onto mPEs and NeuroCells.

    Layers are processed in network order.  Each layer receives whole mPEs
    (tiles of different layers never share an mPE, keeping control simple);
    mPEs are packed into the current NeuroCell until it is full, then a new
    NeuroCell is opened.
    """
    if mcas_per_mpe <= 0 or mpes_per_neurocell <= 0:
        raise ValueError("mcas_per_mpe and mpes_per_neurocell must be positive")
    placement = Placement(mcas_per_mpe=mcas_per_mpe, mpes_per_neurocell=mpes_per_neurocell)

    current_nc = 0
    free_mpes_in_current_nc = mpes_per_neurocell
    layer_records: list[dict] = []

    for partition in partitions:
        mpe_count = max(1, math.ceil(partition.tile_count / mcas_per_mpe))
        neurocell_ids: list[int] = []
        remaining = mpe_count
        while remaining > 0:
            if free_mpes_in_current_nc == 0:
                current_nc += 1
                free_mpes_in_current_nc = mpes_per_neurocell
            take = min(remaining, free_mpes_in_current_nc)
            neurocell_ids.append(current_nc)
            free_mpes_in_current_nc -= take
            remaining -= take
        layer_records.append(
            {
                "layer_index": partition.layer.index,
                "layer_name": partition.layer.name,
                "tile_count": partition.tile_count,
                "mpe_count": mpe_count,
                "neurocell_ids": tuple(sorted(set(neurocell_ids))),
                "last_nc": neurocell_ids[-1],
            }
        )

    for position, record in enumerate(layer_records):
        if position + 1 < len(layer_records):
            next_partition = partitions[position + 1]
            next_first_nc = layer_records[position + 1]["neurocell_ids"][0]
            if next_partition.layer.kind in ("conv", "pool"):
                # Spatially local consumers: the mapper co-locates each
                # consumer tile with the producer tiles of its input window,
                # so the traffic stays on the switch network even when the
                # pair of layers spans several NeuroCells.
                stays = True
            else:
                stays = record["last_nc"] == next_first_nc
        else:
            stays = True  # the final layer's outputs leave through the bus regardless
        placement.layers.append(
            LayerPlacement(
                layer_index=record["layer_index"],
                layer_name=record["layer_name"],
                tile_count=record["tile_count"],
                mpe_count=record["mpe_count"],
                neurocell_ids=record["neurocell_ids"],
                output_stays_in_neurocell=stays,
            )
        )
    return placement
