"""Memory hierarchy of the CMOS baseline.

The digital baseline keeps every synaptic weight in SRAM and streams weights
and activations through FIFOs into the Neuron Units.  For MLPs the weight
memory is large (every synapse is a unique weight) and its access energy and
leakage dominate the per-classification energy — exactly the breakdown the
paper shows in Fig. 12(b).  For CNNs weight sharing keeps the memory small
and the compute core dominates instead (Fig. 12(d)).

:class:`BaselineMemorySystem` sizes the weight and activation memories for a
given network structure using the CACTI-like SRAM model and exposes the
access-energy / leakage numbers the baseline simulator charges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.config import BaselineConfig
from repro.energy.cacti import SRAMConfig, SRAMModel
from repro.snn.topology import LayerConnectivity

__all__ = ["BaselineMemorySystem"]


@dataclass
class BaselineMemorySystem:
    """Weight and activation SRAMs sized for one network.

    Parameters
    ----------
    connectivity:
        Structural layer descriptors of the network being executed.
    config:
        Baseline configuration (weight precision, memory word width).
    min_weight_capacity_bytes:
        Lower bound on the weight SRAM capacity (a real macro has a minimum
        practical size).
    """

    connectivity: list[LayerConnectivity]
    config: BaselineConfig
    min_weight_capacity_bytes: int = 8 * 1024

    def __post_init__(self) -> None:
        if not self.connectivity:
            raise ValueError("connectivity must contain at least one layer")
        weight_bits = self.config.weight_bits
        total_weight_bits = sum(c.unique_weights for c in self.connectivity) * weight_bits
        weight_bytes = max(self.min_weight_capacity_bytes, (total_weight_bits + 7) // 8)

        max_layer_neurons = max(max(c.n_inputs, c.n_outputs) for c in self.connectivity)
        # One bit per neuron per timestep for spike activations, double
        # buffered between consecutive layers.
        activation_bytes = max(4 * 1024, (2 * max_layer_neurons + 7) // 8)

        banks = 4 if weight_bytes >= 256 * 1024 else 1
        # Round the capacity up to a whole number of equal banks.
        weight_bytes = int(-(-int(weight_bytes) // banks) * banks)
        self.weight_sram = SRAMModel(
            SRAMConfig(
                capacity_bytes=weight_bytes,
                word_bits=self.config.memory_word_bits,
                banks=banks,
            )
        )
        self.activation_sram = SRAMModel(
            SRAMConfig(capacity_bytes=int(activation_bytes), word_bits=self.config.memory_word_bits)
        )

    # -- capacities -------------------------------------------------------------

    @property
    def weight_capacity_bytes(self) -> int:
        """Capacity of the weight SRAM."""
        return self.weight_sram.config.capacity_bytes

    @property
    def activation_capacity_bytes(self) -> int:
        """Capacity of the activation (spike) SRAM."""
        return self.activation_sram.config.capacity_bytes

    # -- per-event energies -------------------------------------------------------

    def weight_access_energy_j(self) -> float:
        """Energy of one weight-memory word access."""
        return self.weight_sram.access_energy_j()

    def activation_access_energy_j(self) -> float:
        """Energy of one activation-memory word access."""
        return self.activation_sram.access_energy_j()

    def leakage_power_w(self) -> float:
        """Total memory leakage power (weight + activation SRAM)."""
        return self.weight_sram.leakage_power_w() + self.activation_sram.leakage_power_w()

    def weight_words_for_layer(self, layer: LayerConnectivity, input_rate: float) -> float:
        """Weight-memory words fetched for one timestep of one layer.

        The dataflow streams weights per output neuron, so one memory word
        packs the weights of ``weights_per_word`` *different* input neurons.
        The event-driven optimisation can therefore only skip a word when all
        of the input neurons it covers were silent this timestep — the word
        survives with probability ``1 - (1 - rate)**weights_per_word``.
        Convolutions fetch their (small) kernel once per timestep because
        some window will need it regardless of which individual pixels
        spiked.  Pooling layers store no weights.
        """
        weights_per_word = self.config.weights_per_word
        if layer.kind == "pool" or layer.unique_weights == 0:
            return 0.0
        total_words = layer.unique_weights / weights_per_word
        if layer.kind == "dense" and self.config.event_driven:
            keep = 1.0 - (1.0 - input_rate) ** weights_per_word
            return total_words * keep
        return total_words

    def activation_words_for_layer(self, layer: LayerConnectivity) -> float:
        """Activation-memory words moved for one timestep of one layer.

        Input spikes are read once and output spikes written once per
        timestep, packed one bit per neuron.
        """
        bits = layer.n_inputs + layer.n_outputs
        return bits / self.config.memory_word_bits
