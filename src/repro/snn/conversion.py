"""ANN to SNN conversion with weight/threshold balancing.

The paper's SNNs are obtained with the conversion flow of Diehl et al.
(IJCNN'15, reference [4]): train a ReLU ANN offline, then run it as a
rate-coded spiking network of IF neurons whose thresholds (equivalently,
whose weight scales) are balanced so that no layer saturates or starves.

:func:`convert_to_snn` implements data-based threshold balancing:

1. run the trained ANN on a calibration batch,
2. record, per weighted layer, the ``percentile``-th percentile of the
   positive pre-activation values,
3. use that value as the IF threshold of the layer (equivalently, normalise
   the layer so its threshold is 1).

Biases are dropped during conversion (the standard simplification, and what
a bias-free crossbar mapping requires); training the benchmark networks with
``use_bias=False`` avoids any accuracy impact from that simplification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.snn.layers import AvgPool2D, Conv2D, Dense, Flatten
from repro.snn.network import Network
from repro.utils.validation import check_positive, check_probability

__all__ = ["ConversionSpec", "SpikingNetwork", "convert_to_snn"]


@dataclass(frozen=True)
class ConversionSpec:
    """Options controlling the ANN→SNN conversion.

    Attributes
    ----------
    percentile:
        Percentile of positive pre-activations used as the layer threshold
        (99.0 in Diehl et al.; lower values trade accuracy for spike rate).
    minimum_threshold:
        Floor applied to the balanced thresholds so a dead layer cannot end
        up with a zero threshold.
    """

    percentile: float = 99.0
    minimum_threshold: float = 1e-3

    def __post_init__(self) -> None:
        check_probability("percentile/100", self.percentile / 100.0)
        check_positive("minimum_threshold", self.minimum_threshold)


@dataclass
class SpikingNetwork:
    """A converted rate-coded spiking network.

    The spiking network shares the ANN's weight tensors (dropping biases) and
    adds one IF threshold per computational layer.  It is consumed by the
    functional simulator (:mod:`repro.snn.functional`) and by the mapping
    compiler (structure only).
    """

    network: Network
    thresholds: dict[int, float] = field(default_factory=dict)
    spec: ConversionSpec = field(default_factory=ConversionSpec)

    @property
    def name(self) -> str:
        """Name of the underlying network."""
        return self.network.name

    def threshold_for(self, layer_index: int) -> float:
        """IF threshold of the layer at ``layer_index`` (1.0 for un-weighted layers)."""
        return self.thresholds.get(layer_index, 1.0)

    def layer_count(self) -> int:
        """Number of layers in the underlying network."""
        return len(self.network.layers)


def _positive_percentile(values: np.ndarray, percentile: float) -> float:
    """Percentile of the positive entries of ``values`` (0 if none are positive)."""
    positives = values[values > 0]
    if positives.size == 0:
        return 0.0
    return float(np.percentile(positives, percentile))


def convert_to_snn(
    network: Network,
    calibration_inputs: np.ndarray,
    spec: ConversionSpec | None = None,
) -> SpikingNetwork:
    """Convert a trained ReLU ANN into a threshold-balanced spiking network.

    Parameters
    ----------
    network:
        The trained ANN.  It is deep-copied; the original is not modified.
    calibration_inputs:
        A batch of representative inputs used to measure activation
        percentiles (a few dozen samples suffice).
    spec:
        Conversion options.

    Returns
    -------
    SpikingNetwork
        The converted network with per-layer IF thresholds.
    """
    spec = spec or ConversionSpec()
    snn = network.copy()

    # Drop biases: crossbar columns integrate weighted spikes only.
    for layer in snn.layers:
        if isinstance(layer, (Dense, Conv2D)) and layer.bias is not None:
            layer.bias = np.zeros_like(layer.bias)

    thresholds: dict[int, float] = {}
    activations = np.asarray(calibration_inputs, dtype=float)
    if activations.ndim == len(snn.input_shape):  # single sample given
        activations = activations[np.newaxis]
    current = activations
    for index, layer in enumerate(snn.layers):
        if isinstance(layer, (Dense, Conv2D)):
            pre_activation = layer.linear(current)
            threshold = _positive_percentile(pre_activation, spec.percentile)
            thresholds[index] = max(threshold, spec.minimum_threshold)
        elif isinstance(layer, (AvgPool2D, Flatten)):
            # Pooling and reshape layers pass rates through unchanged; their
            # "threshold" stays at 1 so average pooling of rates is preserved.
            pass
        current = layer.forward(current)

    return SpikingNetwork(network=snn, thresholds=thresholds, spec=spec)
