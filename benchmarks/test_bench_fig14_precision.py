"""Fig. 14 — effect of memristor bit-discretisation on accuracy and energy.

Regenerates both panels: (a) normalised accuracy versus weight precision on
the three datasets, and (b) normalised energy versus precision for RESPARC
and the CMOS baseline on the MNIST MLP.
"""

from __future__ import annotations

from repro.experiments import run_fig14_accuracy, run_fig14_energy


def test_fig14a_accuracy_vs_precision(benchmark):
    """Regenerate the accuracy-vs-precision sweep (width-scaled MLPs)."""
    points = benchmark.pedantic(
        lambda: run_fig14_accuracy(
            datasets=("mnist", "svhn", "cifar10"),
            bits=(1, 2, 4, 8),
            network_scale=0.2,
            train_epochs=3,
            timesteps=16,
            samples=32,
        ),
        iterations=1,
        rounds=1,
    )
    print("\nFig. 14(a) — normalised accuracy vs bit precision")
    for point in points:
        print(f"  {point.dataset:<10} {point.bits:>2} bits  norm accuracy {point.normalised_accuracy:.3f}")

    by_dataset: dict[str, dict[int, float]] = {}
    for point in points:
        by_dataset.setdefault(point.dataset, {})[point.bits] = point.normalised_accuracy
    # The saturation claim is checked strictly on the most separable dataset
    # (MNIST); the dense synthetic SVHN/CIFAR stand-ins are noisy at this
    # reduced benchmark fidelity, so they are only checked for sanity.
    mnist = by_dataset["mnist"]
    assert mnist[4] >= 0.95 * mnist[8]
    assert mnist[1] <= mnist[4] + 0.05
    for dataset, series in by_dataset.items():
        for value in series.values():
            assert 0.0 <= value <= 2.0, dataset


def test_fig14b_energy_vs_precision(benchmark, context):
    """Regenerate the energy-vs-precision sweep (MNIST MLP, MCA-64)."""
    points = benchmark.pedantic(
        lambda: run_fig14_energy(context=context, benchmark="mnist-mlp", bits=(1, 2, 4, 8)),
        iterations=1,
        rounds=1,
    )
    print("\nFig. 14(b) — normalised energy vs bit precision (MNIST MLP)")
    for point in points:
        print(
            f"  {point.bits:>2} bits  RESPARC {point.resparc_normalised:.3f}  "
            f"CMOS {point.cmos_normalised:.3f}"
        )
    by_bits = {p.bits: p for p in points}
    # RESPARC is insensitive to precision; the CMOS baseline grows with it.
    assert abs(by_bits[8].resparc_normalised - by_bits[1].resparc_normalised) < 0.2
    assert by_bits[8].cmos_normalised > by_bits[4].cmos_normalised > by_bits[1].cmos_normalised
