"""Spike-packet buffers of an mPE.

Every MCA inside an mPE owns three small buffers (Fig. 4 of the paper):

* **iBUFF** buffers incoming spike packets until the full input vector the
  MCA needs is available,
* **oBUFF** buffers the output spike packets produced by the neurons until
  they can be sent to their targets,
* **tBUFF** stores the target address(es) the output packets must reach.

The classes here model that behaviour functionally (FIFO order, capacity
checking) and count accesses so the structural simulator can charge buffer
energy through the same component library as the analytical model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["SpikePacket", "SpikeBuffer", "TargetBuffer"]


@dataclass(frozen=True)
class SpikePacket:
    """A fixed-width packet of spike bits travelling through the architecture.

    Attributes
    ----------
    bits:
        Binary payload (length = architecture packet width; shorter payloads
        are zero padded by the sender).
    source / target:
        Free-form address strings (``"nc0.mpe3.mca1"``) used for routing and
        debugging.
    """

    bits: tuple[int, ...]
    source: str = ""
    target: str = ""

    @property
    def is_zero(self) -> bool:
        """True when every bit is zero (the packet RESPARC's zero-check suppresses)."""
        return not any(self.bits)

    @property
    def spike_count(self) -> int:
        """Number of set bits."""
        return int(sum(self.bits))

    @staticmethod
    def from_array(
        values: np.ndarray, packet_bits: int, source: str = "", target: str = ""
    ) -> list["SpikePacket"]:
        """Split a binary vector into packets of ``packet_bits`` bits."""
        check_positive("packet_bits", packet_bits)
        flat = np.asarray(values).reshape(-1)
        packets = []
        for start in range(0, len(flat), packet_bits):
            chunk = flat[start : start + packet_bits]
            padded = np.zeros(packet_bits, dtype=int)
            padded[: len(chunk)] = (chunk > 0).astype(int)
            packets.append(SpikePacket(bits=tuple(int(b) for b in padded), source=source, target=target))
        return packets


class SpikeBuffer:
    """A FIFO of spike packets with access counting (iBUFF / oBUFF)."""

    def __init__(self, name: str, capacity_packets: int = 64):
        check_positive("capacity_packets", capacity_packets)
        self.name = name
        self.capacity_packets = int(capacity_packets)
        self._queue: deque[SpikePacket] = deque()
        self.writes = 0
        self.reads = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        """True when no packets are buffered."""
        return not self._queue

    @property
    def accesses(self) -> int:
        """Total buffer accesses (reads + writes)."""
        return self.reads + self.writes

    def push(self, packet: SpikePacket) -> None:
        """Append a packet; raises if the buffer would overflow."""
        if len(self._queue) >= self.capacity_packets:
            raise OverflowError(f"{self.name}: buffer overflow (capacity {self.capacity_packets})")
        self._queue.append(packet)
        self.writes += 1
        self.high_watermark = max(self.high_watermark, len(self._queue))

    def pop(self) -> SpikePacket:
        """Remove and return the oldest packet; raises if empty."""
        if not self._queue:
            raise IndexError(f"{self.name}: pop from an empty buffer")
        self.reads += 1
        return self._queue.popleft()

    def drain(self) -> list[SpikePacket]:
        """Pop every buffered packet in FIFO order."""
        packets = []
        while self._queue:
            packets.append(self.pop())
        return packets

    def reset_counters(self) -> None:
        """Reset access counters (contents are preserved)."""
        self.writes = 0
        self.reads = 0
        self.high_watermark = len(self._queue)


class TargetBuffer:
    """The tBUFF: stores the target addresses of an MCA's output packets."""

    def __init__(self, name: str):
        self.name = name
        self._targets: list[str] = []
        self.lookups = 0

    def configure(self, targets: list[str]) -> None:
        """Program the list of target addresses (done at mapping time)."""
        self._targets = list(targets)

    @property
    def targets(self) -> tuple[str, ...]:
        """Configured target addresses."""
        return tuple(self._targets)

    def lookup(self) -> tuple[str, ...]:
        """Return the targets for an outgoing packet (counts one access)."""
        self.lookups += 1
        return self.targets
