"""Backend comparison: structural chip vs the vectorized fast path.

Builds one MLP, programs one chip, then classifies the same batch through
both execution backends.  Prints the wall-clock of each backend, verifies
that predictions and event counters are identical, and shows how closely
the energy totals agree — the guarantee that makes the fast path safe to
use for full-scale experiment sweeps.

Run with:  python examples/backend_comparison.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import ArchitectureConfig, ChipSimulator
from repro.datasets import make_dataset
from repro.snn import Dense, Network, Trainer, convert_to_snn
from repro.utils.units import format_energy


def main() -> None:
    rng = np.random.default_rng(0)

    dataset = make_dataset("mnist", train_samples=192, test_samples=96, seed=1)
    train_x = dataset.train_images.reshape(-1, 784)[:, ::4]  # 196 inputs
    test_x = dataset.test_images.reshape(-1, 784)[:, ::4]
    network = Network(
        (196,),
        [
            Dense(196, 64, use_bias=False, rng=rng, name="hidden"),
            Dense(64, 10, activation=None, use_bias=False, rng=rng, name="output"),
        ],
        name="backend-comparison-mlp",
    )
    Trainer(learning_rate=0.005, batch_size=32, rng=rng).fit(
        network, train_x, dataset.train_labels, epochs=4
    )
    snn = convert_to_snn(network, train_x[:48])

    config = ArchitectureConfig(crossbar_rows=32, crossbar_columns=32)
    batch = test_x[:64]
    labels = dataset.test_labels[:64]

    results = {}
    for backend in ("structural", "vectorized"):
        simulator = ChipSimulator(
            config=config,
            timesteps=16,
            encoder="poisson",
            backend=backend,
            rng=np.random.default_rng(7),
        )
        chip = simulator.build_chip(snn)
        start = time.perf_counter()
        result = simulator.run(snn, batch, labels, chip=chip)
        elapsed = time.perf_counter() - start
        results[backend] = (result, elapsed)
        print(f"{backend:>11}: {elapsed:6.3f}s for {len(batch)} samples, "
              f"accuracy {result.accuracy:.2%}, "
              f"energy {format_energy(result.energy.total_j)}")

    structural, structural_s = results["structural"]
    vectorized, vectorized_s = results["vectorized"]
    print(f"\nspeedup: {structural_s / vectorized_s:.1f}x")
    print("predictions identical :", bool(np.array_equal(structural.predictions, vectorized.predictions)))
    print("spike counts identical:", bool(np.array_equal(structural.spike_counts, vectorized.spike_counts)))
    identical_counters = sum(
        1
        for name, value in structural.counters.as_dict().items()
        if name != "crossbar_device_energy_j"
        and value == vectorized.counters.as_dict()[name]
    )
    print(f"event counters equal  : {identical_counters}/"
          f"{len(structural.counters.as_dict()) - 1}")
    rel = abs(structural.energy.total_j - vectorized.energy.total_j) / structural.energy.total_j
    print(f"energy relative diff  : {rel:.2e}")


if __name__ == "__main__":
    main()
