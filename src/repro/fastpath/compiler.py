"""Lowering a programmed :class:`~repro.core.resparc.ResparcChip` to arrays.

The structural chip executes one sample at a time by pushing spike packets
through Python objects.  The vectorized backend instead *compiles* the chip
once: every programmed tile is captured as a dense differential-conductance
matrix (exactly the values the MCA would apply), the data-independent event
activity of one timestep is pre-counted into a :class:`StaticStepEvents`
schedule, and the data-dependent crossbar read energy is tabulated per
possible active-row count through the very same
:class:`~repro.crossbar.energy.CrossbarEnergyModel` the structural MCA calls.

The compiled program is immutable and holds no references to the live chip
components, so one chip can serve the structural path and any number of
vectorized batch runs without the two interfering.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass

import numpy as np

from repro.core.resparc import ResparcChip

__all__ = [
    "CompiledTile",
    "CompiledLayer",
    "FusedLayer",
    "StaticStepEvents",
    "CompiledChip",
    "compile_chip",
]


def _chunks(n_items: int, chunk_bits: int) -> int:
    """Number of ``chunk_bits``-wide packets/words covering ``n_items`` slots."""
    return int(math.ceil(n_items / chunk_bits)) if n_items else 0


@dataclass(frozen=True)
class CompiledTile:
    """One programmed MCA, captured as dense arrays.

    ``conductance_diff`` is the full-geometry ``g_positive - g_negative``
    matrix; evaluating ``(x * V_read) @ conductance_diff * scale / lsb``
    reproduces, operation for operation, what
    :meth:`repro.crossbar.mca.CrossbarArray.evaluate` computes for an ideal
    device, so the vectorized drive matches the structural drive bit for bit.
    ``read_cost_j[a]`` is the energy of one evaluation with ``a`` active rows.
    """

    layer_index: int
    row_start: int
    row_stop: int
    column_start: int
    column_stop: int
    conductance_diff: np.ndarray
    scale: float
    read_cost_j: np.ndarray

    @property
    def rows(self) -> int:
        """Input rows the tile consumes."""
        return self.row_stop - self.row_start

    @property
    def columns(self) -> int:
        """Output columns the tile produces."""
        return self.column_stop - self.column_start


@dataclass(frozen=True)
class FusedLayer:
    """A layer's tiles packed for one batched matmul per timestep.

    Every tile of a layer shares the full crossbar geometry, so the tiles
    stack into one ``(tiles, geom_rows, geom_cols)`` conductance tensor and
    the per-timestep inner loop collapses to a single
    ``(tiles, batch, rows) @ (tiles, rows, cols)`` stacked product — the
    same per-slice ``dgemm`` the per-tile loop issued, so the drive is
    bit-identical.  The gather/scatter index tables record where each
    tile's input rows come from and where its output columns accumulate;
    the engine applies the scatter **in placement order**, preserving the
    structural accumulation-order contract.
    """

    #: Stacked ``conductance_diff`` matrices, ``(tiles, geom_rows, geom_cols)``.
    conductance: np.ndarray
    #: Per-tile ``scale`` factors shaped for broadcasting, ``(tiles, 1, 1)``.
    scales: np.ndarray
    #: Row gather table: input slice ``[row_starts[k]:row_stops[k]]`` fills
    #: the first ``rows[k]`` rows of tile ``k``'s block (rest stays zero).
    row_starts: np.ndarray
    row_stops: np.ndarray
    rows: np.ndarray
    #: Column scatter table: the first ``cols[k]`` columns of tile ``k``'s
    #: partial sum accumulate into ``drive[:, col_starts[k]:col_stops[k]]``.
    col_starts: np.ndarray
    col_stops: np.ndarray
    cols: np.ndarray
    #: Flattened per-tile read-cost tables plus the per-tile offsets into
    #: them: the cost of tile ``k`` with ``a`` active rows is
    #: ``read_cost_flat[cost_offsets[k] + a]`` — one batched ``np.take``
    #: replaces per-tile fancy-indexing lookups.
    read_cost_flat: np.ndarray
    cost_offsets: np.ndarray

    @property
    def n_tiles(self) -> int:
        return self.conductance.shape[0]

    @property
    def geometry(self) -> tuple[int, int]:
        """Full crossbar geometry ``(rows, columns)`` shared by the tiles."""
        return self.conductance.shape[1], self.conductance.shape[2]


def _fuse_tiles(tiles: tuple[CompiledTile, ...]) -> FusedLayer:
    """Stack a layer's tiles (placement order) into fused tensors."""
    geometry = tiles[0].conductance_diff.shape
    for tile in tiles:
        if tile.conductance_diff.shape != geometry:
            raise ValueError(
                f"cannot fuse tiles with mixed crossbar geometries: "
                f"{tile.conductance_diff.shape} vs {geometry}"
            )
    table_len = len(tiles[0].read_cost_j)
    return FusedLayer(
        conductance=np.ascontiguousarray(
            np.stack([tile.conductance_diff for tile in tiles])
        ),
        scales=np.array([tile.scale for tile in tiles]).reshape(-1, 1, 1),
        row_starts=np.array([tile.row_start for tile in tiles], dtype=np.int64),
        row_stops=np.array([tile.row_stop for tile in tiles], dtype=np.int64),
        rows=np.array([tile.rows for tile in tiles], dtype=np.int64),
        col_starts=np.array([tile.column_start for tile in tiles], dtype=np.int64),
        col_stops=np.array([tile.column_stop for tile in tiles], dtype=np.int64),
        cols=np.array([tile.columns for tile in tiles], dtype=np.int64),
        read_cost_flat=np.concatenate([tile.read_cost_j for tile in tiles]),
        cost_offsets=(np.arange(len(tiles), dtype=np.int64) * table_len).reshape(-1, 1),
    )


@dataclass(frozen=True)
class CompiledLayer:
    """One dense layer of the compiled program."""

    layer_index: int
    n_in: int
    n_out: int
    threshold: float
    tiles: tuple[CompiledTile, ...]
    #: Distinct (NeuroCell, mPE) destinations the layer's input is routed to.
    destinations: int
    #: Packets per routed copy of the layer's input vector.
    input_packets: int
    #: True when the layer's output crosses NeuroCells over the shared bus.
    needs_bus_transfer: bool
    #: Words of one output vector on the bus / in the input SRAM.
    output_words: int
    #: The layer's tiles packed for the fused kernel (same placement order).
    fused: FusedLayer


@dataclass(frozen=True)
class StaticStepEvents:
    """Data-independent event counts of one chip timestep (one sample).

    These are the events the structural chip generates regardless of the
    spike values: buffer pushes/pops, control sequencing, crossbar
    evaluations, SRAM staging and the per-timestep completion flags.  The
    engine multiplies them by ``batch * timesteps``.
    """

    crossbar_evaluations: int
    neuron_integrations: int
    ibuff_accesses: int
    obuff_accesses: int
    tbuff_accesses: int
    local_control_events: int
    ccu_transfers: int
    input_sram_reads: int
    input_sram_writes: int
    global_control_events: int
    #: Zero-check comparisons (switch packets + bus words); 0 without ED.
    zero_checks: int
    #: Switch hops when event-driven gating is OFF (every packet forwarded).
    switch_hops_without_ed: int
    #: Bus words when event-driven gating is OFF (every word driven).
    io_bus_words_without_ed: int


@dataclass(frozen=True)
class CompiledChip:
    """A :class:`ResparcChip` lowered to a batch-executable program."""

    layers: tuple[CompiledLayer, ...]
    static_events: StaticStepEvents
    event_driven: bool
    packet_bits: int
    word_bits: int
    read_voltage_v: float
    #: Current of a full-scale weight per active row (``V * g_range``).
    current_lsb_a: float
    neurocell_count: int
    active_mpes: int
    active_switches: int
    sram_access_energy_j: float
    sram_leakage_power_w: float

    @property
    def input_dim(self) -> int:
        """Width of the first layer's input vector."""
        return self.layers[0].n_in

    @property
    def output_dim(self) -> int:
        """Width of the last layer's output vector."""
        return self.layers[-1].n_out


#: One compiled program per live chip instance.  A chip's weights are
#: programmed once at construction and never rewritten, so the lowering can
#: be cached for the chip's lifetime; the weak keys let chips be collected.
_COMPILED: "weakref.WeakKeyDictionary[ResparcChip, CompiledChip]" = (
    weakref.WeakKeyDictionary()
)


def compile_chip(chip: ResparcChip) -> CompiledChip:
    """Lower a programmed structural chip into a :class:`CompiledChip`.

    Results are memoized per chip instance (chips are programmed once, at
    construction).  Raises ``ValueError`` when the chip's crossbars enable
    analog non-idealities (IR drop, sneak paths, read noise): those
    evaluation paths are stochastic or geometry-coupled and only the
    structural model simulates them.
    """
    cached = _COMPILED.get(chip)
    if cached is not None:
        return cached
    program = _compile_chip(chip)
    _COMPILED[chip] = program
    return program


def _compile_chip(chip: ResparcChip) -> CompiledChip:
    config = chip.config
    if not chip.tiles:
        raise ValueError("chip has no programmed tiles; build it from a network first")

    device = config.device
    lsb = device.read_voltage_v * (device.g_on_s - device.g_off_s)

    layers: list[CompiledLayer] = []
    for position, layer_index in enumerate(chip.layer_order):
        n_in, n_out = chip.dims_for(layer_index)
        tiles: list[CompiledTile] = []
        destinations: dict[tuple[int, int], None] = {}
        for tile in chip.tiles_for_layer(layer_index):
            destinations.setdefault((tile.neurocell_index, tile.mpe_index))
            mpe = chip.neurocells[tile.neurocell_index].mpes[tile.mpe_index]
            mca = mpe.mcas[tile.mca_index]
            if not mca.config.nonidealities.ideal:
                raise ValueError(
                    "the vectorized backend requires ideal crossbars; "
                    "run non-ideality studies through the structural backend"
                )
            programmed = mca.programmed
            rows = mca.config.rows
            cost = mca.energy_model
            read_cost_j = np.array(
                [
                    cost.read_cost(
                        rows=rows,
                        columns=mca.config.columns,
                        active_rows=active,
                        utilisation=mca.utilisation,
                    ).energy_j
                    for active in range(rows + 1)
                ]
            )
            a = tile.assignment
            tiles.append(
                CompiledTile(
                    layer_index=layer_index,
                    row_start=a.row_start,
                    row_stop=a.row_stop,
                    column_start=a.column_start,
                    column_stop=a.column_stop,
                    conductance_diff=programmed.g_positive - programmed.g_negative,
                    scale=programmed.scale,
                    read_cost_j=read_cost_j,
                )
            )
        needs_bus = False
        if position + 1 < len(chip.layer_order):
            cells_here = {t.neurocell_index for t in chip.tiles_for_layer(layer_index)}
            cells_next = {
                t.neurocell_index
                for t in chip.tiles_for_layer(chip.layer_order[position + 1])
            }
            needs_bus = not cells_next.issubset(cells_here)
        layers.append(
            CompiledLayer(
                layer_index=layer_index,
                n_in=n_in,
                n_out=n_out,
                threshold=chip.threshold_for(layer_index),
                tiles=tuple(tiles),
                destinations=len(destinations),
                input_packets=_chunks(n_in, config.packet_bits),
                needs_bus_transfer=needs_bus,
                output_words=_chunks(n_out, config.word_bits),
                fused=_fuse_tiles(tuple(tiles)),
            )
        )

    static = _static_step_events(layers, chip)
    return CompiledChip(
        layers=tuple(layers),
        static_events=static,
        event_driven=config.event_driven,
        packet_bits=config.packet_bits,
        word_bits=config.word_bits,
        read_voltage_v=device.read_voltage_v,
        current_lsb_a=lsb,
        neurocell_count=len(chip.neurocells),
        active_mpes=chip.total_mpes_used,
        active_switches=sum(len(cell.switches) for cell in chip.neurocells),
        sram_access_energy_j=chip.input_memory.access_energy_j(),
        sram_leakage_power_w=chip.input_memory.leakage_power_w(),
    )


def _static_step_events(layers: list[CompiledLayer], chip: ResparcChip) -> StaticStepEvents:
    """Pre-count the data-independent events of one structural timestep."""
    config = chip.config
    input_words = _chunks(layers[0].n_in, config.word_bits)

    crossbar_evaluations = 0
    neuron_integrations = 0
    ibuff = 0
    obuff = 0
    tbuff = 0
    local_control = 0
    ccu = 0
    sram_words = input_words  # the per-step input staging (store + load)
    switch_packets = 0
    bus_words = input_words

    for layer in layers:
        switch_packets += layer.destinations * layer.input_packets
        for tile in layer.tiles:
            crossbar_evaluations += 1
            neuron_integrations += tile.columns
            # deliver_packets pushes then evaluate_tile drains: one write and
            # one read per packet of the tile's row slice.
            ibuff += 2 * _chunks(tile.rows, config.packet_bits)
            # emit_output pushes then pops every output packet.
            obuff += 2 * _chunks(tile.columns, config.packet_bits)
            tbuff += 1
            local_control += 1
            if tile.row_start > 0:
                ccu += 1
        if layer.needs_bus_transfer:
            sram_words += layer.output_words
            bus_words += layer.output_words

    zero_checks = (switch_packets + bus_words) if config.event_driven else 0
    return StaticStepEvents(
        crossbar_evaluations=crossbar_evaluations,
        neuron_integrations=neuron_integrations,
        ibuff_accesses=ibuff,
        obuff_accesses=obuff,
        tbuff_accesses=tbuff,
        local_control_events=local_control,
        ccu_transfers=ccu,
        input_sram_reads=sram_words,
        input_sram_writes=sram_words,
        global_control_events=len(chip.neurocells),
        zero_checks=zero_checks,
        switch_hops_without_ed=switch_packets,
        io_bus_words_without_ed=bus_words,
    )
