"""ElasticFleet: replicas + autoscaler + dynamic gateway, wired together.

One object owns the whole elastic serving fleet:

* a :class:`~repro.serve.fleet.replica.ReplicaManager` boots/retires
  :class:`~repro.serve.distributed.ChipServer` processes;
* an :class:`~repro.serve.distributed.InferenceGateway` fronts them with
  live membership — scale-up joins the new replica's pipelined client as an
  endpoint, scale-down drains the endpoint first (planner stops using it),
  then drains the server (it answers everything admitted), then removes the
  endpoint once the process exited;
* a :class:`~repro.serve.fleet.controller.FleetController` samples the
  gateway's cached per-endpoint load (the background refresher's numbers —
  no extra RPC on the control path) plus each replica's polled shed
  counters, and scales within the policy bounds.

Exactness is inherited, not re-proven: membership changes alter shard
*placement* only, and shard-stable encoding makes every placement
result-identical to a single ``ChipSession`` run.

The scale-down handshake is the part worth reading twice
(:meth:`ElasticFleet.scale_down`): gateway drain → server drain → process
join → endpoint removal.  At no point can a planner place new work on the
retiring replica, and the server exits only after answering every admitted
request — so scale-down never fails in-flight work.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

from repro.serve.distributed.gateway import GatewayEndpoint, InferenceGateway
from repro.serve.fleet.controller import FleetController, FleetPolicy
from repro.serve.fleet.replica import Replica, ReplicaManager, ReplicaSpec
from repro.serve.schema import InferenceRequest, InferenceResponse

__all__ = ["ElasticFleet"]


class ElasticFleet:
    """An autoscaled fleet of chip-server replicas behind one gateway.

    Parameters
    ----------
    spec:
        What every replica runs (:class:`ReplicaSpec`).
    policy:
        Autoscaling policy (:class:`FleetPolicy`); the fleet boots with
        ``min_replicas`` and stays within ``[min_replicas, max_replicas]``.
    start_controller:
        Run the control loop on a background thread (default).  Pass False
        to drive :attr:`controller` manually (deterministic tests).
    gateway_load_poll_s:
        Interval of the gateway's background load refresher.
    hedge_after_s / hedge_percentile:
        Straggler-hedging knobs handed to the gateway (see
        :class:`InferenceGateway`): a shard stuck on a slow replica past
        the threshold is duplicated onto a sibling, first result wins, the
        loser is cancelled over the wire.  Both default to off.
    start_method:
        :mod:`multiprocessing` start method for replica processes.
    """

    def __init__(
        self,
        spec: ReplicaSpec,
        *,
        policy: FleetPolicy | None = None,
        name: str = "fleet",
        start_controller: bool = True,
        gateway_load_poll_s: float = 0.25,
        hedge_after_s: float | None = None,
        hedge_percentile: float | None = None,
        start_method: str | None = None,
        boot_timeout_s: float = 120.0,
    ):
        self.name = name
        self.policy = policy or FleetPolicy()
        self.manager = ReplicaManager(
            spec, start_method=start_method, boot_timeout_s=boot_timeout_s
        )
        self.started_at = time.time()
        # Serialises scale actions (controller thread vs close()).
        self._scale_lock = threading.RLock()
        self._closed = False
        replicas = [
            self.manager.start_replica() for _ in range(self.policy.min_replicas)
        ]
        self.gateway = InferenceGateway(
            [self._as_endpoint(replica) for replica in replicas],
            name=name,
            load_poll_s=gateway_load_poll_s,
            hedge_after_s=hedge_after_s,
            hedge_percentile=hedge_percentile,
        )
        self.controller = FleetController(self, self.policy)
        if start_controller:
            self.controller.start()

    @staticmethod
    def _as_endpoint(replica: Replica) -> GatewayEndpoint:
        assert replica.client is not None
        return GatewayEndpoint(target=replica.client, name=replica.replica_id)

    # -- the controller's fleet interface ------------------------------------------

    def replica_count(self) -> int:
        return len(self.manager)

    def load_signals(self) -> list[dict[str, object]]:
        """One load sample per replica for the controller.

        Backlog comes from the gateway's cache — its planned-shard count
        per endpoint plus the background refresher's last server hint — so
        sampling is RPC-free; the shed counter rides the same refresher's
        cached ``info`` envelope, and the hedge counter is the gateway's
        own per-endpoint hedged-against count (a straggling replica draws
        hedges, which the controller prices into pressure).
        """
        loads = self.gateway.endpoint_loads()
        signals: list[dict[str, object]] = []
        for replica in self.manager.replicas:
            load = loads.get(replica.replica_id)
            if load is None or load["draining"]:
                continue
            info = load.get("info") or {}
            stats = info.get("stats") or {}
            signals.append(
                {
                    "replica_id": replica.replica_id,
                    "backlog": float(load["backlog"]),
                    "shed": int(stats.get("shed", 0)),
                    "hedges": int(load.get("hedges", 0)),
                }
            )
        return signals

    def scale_up(self) -> bool:
        """Boot one replica and join it to the gateway (bounded by policy)."""
        with self._scale_lock:
            if self._closed or len(self.manager) >= self.policy.max_replicas:
                return False
            replica = self.manager.start_replica()
            try:
                self.gateway.add_endpoint(self._as_endpoint(replica))
            except BaseException:
                self.manager.drain_replica(replica, timeout_s=10.0)
                raise
            return True

    def scale_down(self) -> bool:
        """Retire the newest replica without failing any in-flight work.

        The handshake: (1) drain the gateway endpoint — new plans skip it,
        shards already placed keep running; (2) drain the server — it
        answers everything admitted, then exits; (3) join the process;
        (4) remove the endpoint.  Any shard racing the handshake gets the
        structured ``draining`` error and the gateway re-runs it once on a
        serving sibling — exactness holds because shards are idempotent.
        """
        with self._scale_lock:
            if self._closed or len(self.manager) <= self.policy.min_replicas:
                return False
            replica = self.manager.replicas[-1]
            self.gateway.drain_endpoint(replica.replica_id)
            self.manager.drain_replica(replica)
            self.gateway.remove_endpoint(replica.replica_id)
            return True

    # -- serving surface -----------------------------------------------------------

    def submit(
        self, request: InferenceRequest, *, deadline_s: float | None = None
    ) -> Future:
        """Non-blocking dispatch through the gateway (merged-exact future)."""
        return self.gateway.submit(request, deadline_s=deadline_s)

    def infer(
        self, request: InferenceRequest, *, deadline_s: float | None = None
    ) -> InferenceResponse:
        return self.gateway.infer(request, deadline_s=deadline_s)

    def infer_many(
        self,
        requests: list[InferenceRequest],
        *,
        deadline_s: float | None = None,
    ) -> list[InferenceResponse]:
        return self.gateway.infer_many(requests, deadline_s=deadline_s)

    # -- introspection ------------------------------------------------------------

    def fleet_status(self) -> dict[str, object]:
        """Structured snapshot: replicas, gateway loads, controller events."""
        loads = self.gateway.endpoint_loads()
        replicas = []
        for replica in self.manager.replicas:
            entry = replica.status()
            load = loads.get(replica.replica_id)
            if load is not None:
                entry["backlog"] = load["backlog"]
                entry["state"] = (load.get("info") or {}).get("state", "unknown")
            replicas.append(entry)
        return {
            "name": self.name,
            "uptime_s": max(0.0, time.time() - self.started_at),
            "replicas": replicas,
            "controller": self.controller.status(),
            # Summed final counters of every replica retired so far (each
            # drain ack's snapshot): scale-down keeps its history.
            "retired_stats": dict(self.manager.retired_stats),
        }

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Stop the controller, drain every replica to zero, close the gateway.

        Clean teardown is part of the drain contract: every replica's
        process must exit with code 0 (its queue answered), which
        :meth:`ReplicaManager.stop_all` enforces.
        """
        with self._scale_lock:
            if self._closed:
                return
            self._closed = True
        self.controller.close()
        try:
            for replica in self.manager.replicas:
                replica_load = self.gateway.endpoint_loads().get(replica.replica_id)
                if replica_load is not None:
                    self.gateway.drain_endpoint(replica.replica_id)
            self.manager.stop_all()
        finally:
            self.gateway.close()

    def __enter__(self) -> "ElasticFleet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
