"""Synthetic image-classification datasets.

The paper's benchmarks use MNIST (28x28 grayscale digits), SVHN (32x32x3
house numbers) and CIFAR-10 (32x32x3 objects).  Those datasets cannot be
downloaded in this environment, so this module generates *synthetic
stand-ins* with the same input geometry, number of classes and — importantly
for the architecture study — similar foreground/background statistics:

* MNIST-like images are mostly black background with a bright, connected
  foreground glyph (high zero-run-length probability, which is what makes
  the event-driven optimisation so effective for MLPs in Fig. 13).
* SVHN/CIFAR-like images are dense natural-image-like textures with low
  background sparsity.

Each class is defined by a deterministic prototype pattern (derived from the
dataset seed); samples are noisy, shifted variants of their class prototype,
so the classes are genuinely separable and the networks can be trained to a
meaningful accuracy.  Absolute accuracies therefore differ from the real
datasets, but relative trends (e.g. accuracy vs. weight precision, Fig. 14a)
are preserved — and the paper itself reports accuracy only in normalised
form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive

__all__ = ["SyntheticDataset", "DatasetSpec", "make_dataset", "DATASET_SPECS"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a synthetic dataset family."""

    name: str
    image_shape: tuple[int, int, int]
    classes: int
    background_sparsity: float  # fraction of pixels that are (near) zero
    description: str


#: The three dataset families used by the paper's benchmarks.
DATASET_SPECS: dict[str, DatasetSpec] = {
    "mnist": DatasetSpec(
        name="mnist",
        image_shape=(28, 28, 1),
        classes=10,
        background_sparsity=0.80,
        description="MNIST-like sparse grayscale digits (digit recognition)",
    ),
    "svhn": DatasetSpec(
        name="svhn",
        image_shape=(32, 32, 3),
        classes=10,
        background_sparsity=0.25,
        description="SVHN-like dense colour house numbers (house number recognition)",
    ),
    "cifar10": DatasetSpec(
        name="cifar10",
        image_shape=(32, 32, 3),
        classes=10,
        background_sparsity=0.10,
        description="CIFAR-10-like dense colour objects (object classification)",
    ),
}


@dataclass
class SyntheticDataset:
    """A generated dataset split into train and test partitions."""

    spec: DatasetSpec
    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray

    @property
    def input_shape(self) -> tuple[int, int, int]:
        """Per-sample image shape."""
        return self.spec.image_shape

    @property
    def flat_input_size(self) -> int:
        """Flattened per-sample feature count (MLP input size)."""
        h, w, c = self.spec.image_shape
        return h * w * c

    def flattened(self) -> "SyntheticDataset":
        """Return a copy with images flattened to vectors (for MLPs)."""
        return SyntheticDataset(
            spec=self.spec,
            train_images=self.train_images.reshape(self.train_images.shape[0], -1),
            train_labels=self.train_labels,
            test_images=self.test_images.reshape(self.test_images.shape[0], -1),
            test_labels=self.test_labels,
        )

    def sparsity(self, threshold: float = 0.05) -> float:
        """Fraction of test-set pixels at or below ``threshold`` intensity."""
        return float(np.mean(self.test_images <= threshold))


def _class_prototypes(spec: DatasetSpec, rng: np.random.Generator) -> np.ndarray:
    """Deterministic per-class prototype images for a dataset family."""
    height, width, channels = spec.image_shape
    prototypes = np.zeros((spec.classes, height, width, channels))
    yy, xx = np.meshgrid(np.linspace(-1, 1, height), np.linspace(-1, 1, width), indexing="ij")
    for cls in range(spec.classes):
        if spec.background_sparsity >= 0.5:
            # Sparse "digit-like" glyph: a bright parametric stroke on black.
            angle = 2 * np.pi * cls / spec.classes
            cx, cy = 0.45 * np.cos(angle), 0.45 * np.sin(angle)
            stroke = np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / 0.035)
            ring = np.exp(-((np.sqrt(yy**2 + xx**2) - 0.55) ** 2) / 0.012) * ((cls % 3) / 2.0)
            bar = np.exp(-((yy * np.cos(angle) + xx * np.sin(angle)) ** 2) / 0.01) * 0.8
            glyph = np.clip(stroke + ring + 0.6 * bar, 0.0, 1.0)
            glyph[glyph < 0.15] = 0.0
            for ch in range(channels):
                prototypes[cls, :, :, ch] = glyph
        else:
            # Dense "natural-image-like" texture: smooth low-frequency fields
            # with class-dependent orientation/colour balance.
            base = rng.normal(0, 1, size=(height // 4 + 1, width // 4 + 1, channels))
            upsampled = np.kron(base, np.ones((4, 4, 1)))[:height, :width, :]
            orientation = np.sin((cls + 1) * (yy * 1.5 + xx * (cls % 4 - 1.5)))
            for ch in range(channels):
                mix = 0.5 + 0.25 * orientation + 0.35 * upsampled[:, :, ch]
                mix += 0.15 * np.cos((cls + 1 + ch) * xx * 2.0)
                prototypes[cls, :, :, ch] = np.clip(mix, 0.0, 1.0)
    return prototypes


def _sample_from_prototype(
    prototype: np.ndarray,
    spec: DatasetSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """One noisy, shifted sample of a class prototype."""
    height, width, _ = spec.image_shape
    shift_y, shift_x = rng.integers(-2, 3, size=2)
    sample = np.roll(prototype, (shift_y, shift_x), axis=(0, 1))
    noise_scale = 0.05 if spec.background_sparsity >= 0.5 else 0.12
    sample = sample * rng.uniform(0.8, 1.0) + rng.normal(0, noise_scale, size=sample.shape)
    sample = np.clip(sample, 0.0, 1.0)
    if spec.background_sparsity >= 0.5:
        # Keep the background genuinely zero so spike trains stay sparse.
        sample[sample < 0.1] = 0.0
    return sample


def make_dataset(
    name: str,
    train_samples: int = 256,
    test_samples: int = 64,
    seed: int = 0,
) -> SyntheticDataset:
    """Generate a synthetic dataset.

    Parameters
    ----------
    name:
        One of ``"mnist"``, ``"svhn"``, ``"cifar10"``.
    train_samples, test_samples:
        Number of samples per split (balanced over the 10 classes as evenly
        as possible).
    seed:
        Dataset seed; the same seed always produces the same data.

    Returns
    -------
    SyntheticDataset
    """
    if name not in DATASET_SPECS:
        raise ValueError(f"unknown dataset {name!r}; choose from {sorted(DATASET_SPECS)}")
    check_positive("train_samples", train_samples)
    check_positive("test_samples", test_samples)
    spec = DATASET_SPECS[name]
    prototype_rng = derive_rng(seed, "prototypes", name)
    prototypes = _class_prototypes(spec, prototype_rng)

    def _make_split(count: int, split: str) -> tuple[np.ndarray, np.ndarray]:
        rng = derive_rng(seed, "split", name, split)
        labels = np.arange(count) % spec.classes
        rng.shuffle(labels)
        images = np.stack(
            [_sample_from_prototype(prototypes[label], spec, rng) for label in labels]
        )
        return images, labels

    train_images, train_labels = _make_split(int(train_samples), "train")
    test_images, test_labels = _make_split(int(test_samples), "test")
    return SyntheticDataset(
        spec=spec,
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
    )
