"""Spiking neuron models.

RESPARC interfaces every crossbar column with an analog Integrate-and-Fire
(IF) neuron (Section 2 of the paper): the column current accumulates on the
neuron's membrane capacitance and a spike is emitted when the membrane
potential crosses a threshold.  The same IF dynamics are used by the
functional (software) SNN simulator, so the algorithmic reference and the
hardware model agree by construction.

The module provides a vectorised neuron pool — one state vector covers all
neurons of a layer — plus a leaky variant used in robustness tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["IFNeuronParameters", "IFNeuronPool"]


@dataclass(frozen=True)
class IFNeuronParameters:
    """Parameters of an (optionally leaky) Integrate-and-Fire neuron.

    Attributes
    ----------
    threshold:
        Membrane potential at which the neuron fires.
    reset_mode:
        ``"subtract"`` subtracts the threshold on a spike (the standard
        choice for converted rate-coded SNNs because it conserves the input
        integral); ``"zero"`` resets the membrane to the reset potential.
    reset_potential:
        Value the membrane returns to in ``"zero"`` mode.
    leak:
        Multiplicative leak factor applied per timestep (1.0 = pure IF).
    refractory_steps:
        Number of timesteps a neuron stays silent after spiking.
    """

    threshold: float = 1.0
    reset_mode: str = "subtract"
    reset_potential: float = 0.0
    leak: float = 1.0
    refractory_steps: int = 0

    def __post_init__(self) -> None:
        check_positive("threshold", self.threshold)
        if self.reset_mode not in ("subtract", "zero"):
            raise ValueError(
                f"reset_mode must be 'subtract' or 'zero', got {self.reset_mode!r}"
            )
        if not 0.0 < self.leak <= 1.0:
            raise ValueError(f"leak must be in (0, 1], got {self.leak}")
        check_non_negative("refractory_steps", self.refractory_steps)


class IFNeuronPool:
    """A vectorised pool of IF neurons covering one layer (and a batch).

    Parameters
    ----------
    shape:
        Shape of the neuron population; typically ``(batch, n_neurons)`` or
        ``(batch, height, width, channels)``.
    params:
        Neuron parameters shared by the pool.
    """

    def __init__(self, shape: tuple[int, ...], params: IFNeuronParameters | None = None):
        if any(dim <= 0 for dim in shape):
            raise ValueError(f"all pool dimensions must be positive, got {shape}")
        self.shape = tuple(shape)
        self.params = params or IFNeuronParameters()
        self.membrane = np.zeros(self.shape, dtype=float)
        self.refractory = np.zeros(self.shape, dtype=int)
        self.spike_count = np.zeros(self.shape, dtype=int)

    def reset(self) -> None:
        """Reset membranes, refractory counters and spike counts."""
        self.membrane[:] = 0.0
        self.refractory[:] = 0
        self.spike_count[:] = 0

    def step(self, input_current: np.ndarray) -> np.ndarray:
        """Advance the pool by one timestep.

        Parameters
        ----------
        input_current:
            Charge delivered to each neuron this timestep (same shape as the
            pool).

        Returns
        -------
        numpy.ndarray
            Binary spike array (float 0/1) with the pool's shape.
        """
        current = np.asarray(input_current, dtype=float)
        if current.shape != self.shape:
            raise ValueError(
                f"input current shape {current.shape} does not match pool shape {self.shape}"
            )
        p = self.params

        active = self.refractory == 0
        if p.leak < 1.0:
            self.membrane *= p.leak
        self.membrane += np.where(active, current, 0.0)

        spikes = (self.membrane >= p.threshold) & active
        if p.reset_mode == "subtract":
            self.membrane = np.where(spikes, self.membrane - p.threshold, self.membrane)
        else:
            self.membrane = np.where(spikes, p.reset_potential, self.membrane)

        if p.refractory_steps > 0:
            self.refractory = np.where(
                spikes, p.refractory_steps, np.maximum(self.refractory - 1, 0)
            )
        self.spike_count += spikes.astype(int)
        return spikes.astype(float)

    def firing_rate(self, timesteps: int) -> np.ndarray:
        """Average firing rate (spikes per timestep) over a run of ``timesteps``."""
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        return self.spike_count / float(timesteps)
