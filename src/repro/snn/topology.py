"""Connectivity extraction for the mapping compiler.

The RESPARC mapping compiler does not need the weight *values* of a network —
it needs the *structure*: how many output neurons each layer has, what their
fan-in is, whether connectivity is dense (MLP) or sparse-with-sharing (CNN),
and how adjacent output neurons share inputs.  This module extracts exactly
that structure from a :class:`repro.snn.network.Network` as a list of
:class:`LayerConnectivity` descriptors, which :mod:`repro.mapping` then
partitions across crossbars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.snn.layers import AvgPool2D, Conv2D, Dense, Flatten
from repro.snn.network import Network

__all__ = ["LayerConnectivity", "extract_connectivity", "network_connectivity_summary"]


@dataclass(frozen=True)
class LayerConnectivity:
    """Structural description of one computational layer.

    Attributes
    ----------
    index, name, kind:
        Identity of the layer (``kind`` is ``"dense"``, ``"conv"`` or
        ``"pool"``; reshape layers are skipped entirely).
    n_inputs:
        Neurons in the previous layer (the layer's total input count).
    n_outputs:
        Neurons produced by the layer.
    fan_in:
        Inputs per output neuron.
    synapses:
        Total unique connections (``n_outputs * fan_in`` for sparse layers,
        ``n_inputs * n_outputs`` for dense ones — identical in both cases).
    output_groups:
        Number of output neurons that share an identical input window.  For a
        convolution this is the number of output channels (all channels at
        one spatial position read the same window); for dense layers it is
        ``n_outputs`` (every output reads the whole input); for pooling it
        is 1 (every output has a private window).
    window_positions:
        Number of distinct input windows (spatial positions) in the layer —
        ``1`` for dense layers.
    shared_inputs_per_step:
        When adjacent windows are packed onto one crossbar, the number of
        *new* rows each additional window contributes (used to model the
        input-sharing optimisation of Section 3.1.1).  ``0`` for dense
        layers.
    unique_weights:
        Distinct stored weight values (``synapses`` for dense layers, the
        kernel parameter count for convolutions, 0 for fixed-function pooling).
        This is what a digital accelerator must keep in its weight memory.
    """

    index: int
    name: str
    kind: str
    n_inputs: int
    n_outputs: int
    fan_in: int
    synapses: int
    output_groups: int
    window_positions: int
    shared_inputs_per_step: int
    unique_weights: int = 0

    @property
    def is_dense(self) -> bool:
        """True for fully connected layers."""
        return self.kind == "dense"

    @property
    def outputs_per_window(self) -> int:
        """Output neurons sharing each distinct input window."""
        return self.output_groups


def extract_connectivity(network: Network) -> list[LayerConnectivity]:
    """Extract mapping descriptors for every computational layer of ``network``.

    Reshape-only layers (:class:`Flatten`) are skipped because they involve
    no synapses or neurons.
    """
    descriptors: list[LayerConnectivity] = []
    shapes = network.layer_shapes()
    for index, (layer, (in_shape, out_shape)) in enumerate(zip(network.layers, shapes)):
        n_inputs = int(np.prod(in_shape))
        n_outputs = int(np.prod(out_shape))
        if isinstance(layer, Flatten):
            continue
        if isinstance(layer, Dense):
            descriptors.append(
                LayerConnectivity(
                    index=index,
                    name=layer.name,
                    kind="dense",
                    n_inputs=n_inputs,
                    n_outputs=n_outputs,
                    fan_in=layer.n_in,
                    synapses=layer.n_in * layer.n_out,
                    output_groups=layer.n_out,
                    window_positions=1,
                    shared_inputs_per_step=0,
                    unique_weights=layer.n_in * layer.n_out,
                )
            )
        elif isinstance(layer, Conv2D):
            out_h, out_w, out_c = out_shape
            full_sharing = layer.connected_in_channels == layer.in_channels
            if full_sharing:
                # Every output channel at one spatial position reads the same
                # k*k*c_in window, so all of them can share one crossbar's rows.
                output_groups = out_c
                window_positions = out_h * out_w
            elif (
                layer.connected_in_channels == 1
                and out_c >= layer.in_channels
                and out_c % layer.in_channels == 0
            ):
                # Single-channel connection table assigned round robin: output
                # channels reading the same input channel share their window,
                # giving c_in distinct windows per spatial position, each
                # shared by out_c / c_in output channels.
                output_groups = out_c // layer.in_channels
                window_positions = out_h * out_w * layer.in_channels
            else:
                # General sparse connection table: different output channels
                # read different channel subsets; only spatial adjacency is
                # shared.
                output_groups = 1
                window_positions = n_outputs
            descriptors.append(
                LayerConnectivity(
                    index=index,
                    name=layer.name,
                    kind="conv",
                    n_inputs=n_inputs,
                    n_outputs=n_outputs,
                    fan_in=layer.fan_in,
                    synapses=n_outputs * layer.fan_in,
                    output_groups=output_groups,
                    window_positions=window_positions,
                    # Sliding one position (stride 1) brings in one new kernel
                    # column worth of inputs per connected channel.
                    shared_inputs_per_step=layer.kernel_size * layer.connected_in_channels,
                    unique_weights=layer.fan_in * layer.out_channels,
                )
            )
        elif isinstance(layer, AvgPool2D):
            out_h, out_w, out_c = out_shape
            descriptors.append(
                LayerConnectivity(
                    index=index,
                    name=layer.name,
                    kind="pool",
                    n_inputs=n_inputs,
                    n_outputs=n_outputs,
                    fan_in=layer.fan_in,
                    synapses=n_outputs * layer.fan_in,
                    output_groups=1,
                    window_positions=out_h * out_w * out_c,
                    # Non-overlapping pooling windows share nothing.
                    shared_inputs_per_step=layer.fan_in,
                    unique_weights=0,
                )
            )
        else:
            raise TypeError(f"unsupported layer type for mapping: {type(layer).__name__}")
    return descriptors


def network_connectivity_summary(network: Network) -> dict[str, int]:
    """Aggregate neuron/synapse counts over the mapping descriptors."""
    descriptors = extract_connectivity(network)
    return {
        "layers": len(descriptors),
        "neurons": sum(d.n_outputs for d in descriptors),
        "synapses": sum(d.synapses for d in descriptors),
        "max_fan_in": max(d.fan_in for d in descriptors),
    }
