"""Vectorized batch execution of a compiled RESPARC chip.

The engine advances the whole batch through the layer pipeline one timestep
at a time: every tile evaluation is one ``(batch, rows) @ (rows, columns)``
matrix product, every neuron pool holds the membrane state of all samples at
once, and the event-driven bookkeeping (zero packets on the switch network,
zero words on the IO bus, active rows per crossbar read) is reduced with
array operations instead of per-packet Python objects.

Arithmetic parity with the structural chip is deliberate, not approximate:

* tiles are evaluated in the structural placement order and their partial
  sums are accumulated into the layer drive in that same order,
* each tile's input block is zero-padded to the full crossbar geometry and
  multiplied against the full differential-conductance matrix, mirroring
  :meth:`repro.crossbar.mca.CrossbarArray.evaluate` operation for operation,
* the IF neuron update is the same elementwise code path
  (:class:`repro.snn.neuron.IFNeuronPool`), batched over samples.

Predictions and spike counts therefore match the structural backend exactly;
energy totals agree to floating-point accumulation order (<< 1e-9 relative).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.stats import EventCounters
from repro.fastpath.compiler import CompiledChip, CompiledLayer, compile_chip
from repro.snn.neuron import IFNeuronParameters, IFNeuronPool

__all__ = ["BatchRunOutcome", "VectorizedChipEngine"]


@dataclass(frozen=True)
class BatchRunOutcome:
    """Raw outcome of one vectorized batch run (pre energy conversion)."""

    spike_counts: np.ndarray
    predictions: np.ndarray
    counters: EventCounters
    timesteps: int


def _nonzero_chunk_counts(bits: np.ndarray, chunk_bits: int) -> np.ndarray:
    """Per-sample count of ``chunk_bits``-wide chunks containing any spike.

    ``bits`` has shape ``(batch, n)``; chunks are zero-padded at the tail,
    matching :meth:`SpikePacket.from_array` / the bus word slicing.
    """
    batch, n = bits.shape
    n_chunks = int(math.ceil(n / chunk_bits)) if n else 0
    if n_chunks == 0:
        return np.zeros(batch, dtype=np.int64)
    padded = np.zeros((batch, n_chunks * chunk_bits), dtype=bool)
    padded[:, :n] = bits > 0
    return padded.reshape(batch, n_chunks, chunk_bits).any(axis=2).sum(axis=1)


class VectorizedChipEngine:
    """Executes an entire encoded batch through a compiled chip."""

    def __init__(self, program: CompiledChip):
        self.program = program

    @classmethod
    def from_chip(cls, chip) -> "VectorizedChipEngine":
        """Compile a structural chip and wrap it in an engine."""
        return cls(compile_chip(chip))

    # -- drive computation --------------------------------------------------------

    def _layer_drive(
        self, layer: CompiledLayer, current: np.ndarray, active_row_energy: list[float]
    ) -> np.ndarray:
        """Weighted sums of one layer for the whole batch.

        Accumulates per-tile partial sums in placement order and records the
        crossbar read energy of every (sample, tile) evaluation via the
        tiles' active-row cost tables.
        """
        program = self.program
        batch = current.shape[0]
        drive = np.zeros((batch, layer.n_out))
        for index, tile in enumerate(layer.tiles):
            block = np.zeros((batch, tile.conductance_diff.shape[0]))
            block[:, : tile.rows] = current[:, tile.row_start : tile.row_stop]
            active_rows = np.count_nonzero(block, axis=1)
            active_row_energy[0] += float(tile.read_cost_j[active_rows].sum())
            # Mirrors CrossbarArray.evaluate: x*V through the differential
            # conductances, then currents back to weighted sums.
            currents = (block * program.read_voltage_v) @ tile.conductance_diff
            weighted = currents * tile.scale / program.current_lsb_a
            drive[:, tile.column_start : tile.column_stop] += weighted[:, : tile.columns]
        return drive

    # -- execution ----------------------------------------------------------------

    def run_batch(self, spike_train: np.ndarray) -> BatchRunOutcome:
        """Run an encoded spike train of shape ``(timesteps, batch, n_in)``.

        Returns per-sample output spike counts and predictions plus the
        aggregate :class:`EventCounters` of the run (the same totals the
        structural chip's components would have accumulated).
        """
        program = self.program
        train = np.asarray(spike_train, dtype=float)
        if train.ndim != 3:
            raise ValueError(
                f"spike_train must have shape (timesteps, batch, n_in), got {train.shape}"
            )
        timesteps, batch, n_in = train.shape
        if n_in != program.input_dim:
            raise ValueError(
                f"layer {program.layers[0].layer_index} expects {program.input_dim} "
                f"inputs, got {n_in}"
            )

        pools = {
            layer.layer_index: IFNeuronPool(
                (batch, layer.n_out), IFNeuronParameters(threshold=layer.threshold)
            )
            for layer in program.layers
        }
        spike_counts = np.zeros((batch, program.output_dim))
        crossbar_energy = [0.0]
        switch_hops = 0
        suppressed_packets = 0
        io_bus_words = 0

        for t in range(timesteps):
            current = train[t]
            if program.event_driven:
                io_bus_words += int(
                    _nonzero_chunk_counts(current, program.word_bits).sum()
                )
            for layer in program.layers:
                if program.event_driven:
                    live = _nonzero_chunk_counts(current, program.packet_bits)
                    delivered = int(live.sum()) * layer.destinations
                    switch_hops += delivered
                    suppressed_packets += (
                        batch * layer.input_packets * layer.destinations - delivered
                    )
                drive = self._layer_drive(layer, current, crossbar_energy)
                spikes = pools[layer.layer_index].step(drive)
                if program.event_driven and layer.needs_bus_transfer:
                    io_bus_words += int(
                        _nonzero_chunk_counts(spikes, program.word_bits).sum()
                    )
                current = spikes
            spike_counts += current

        final_pool = pools[program.layers[-1].layer_index]
        scores = spike_counts + 1e-3 * final_pool.membrane
        predictions = np.argmax(scores, axis=1).astype(int)

        counters = self._gather_counters(
            batch * timesteps,
            crossbar_energy[0],
            switch_hops,
            suppressed_packets,
            io_bus_words,
        )
        return BatchRunOutcome(
            spike_counts=spike_counts,
            predictions=predictions,
            counters=counters,
            timesteps=timesteps,
        )

    def _gather_counters(
        self,
        steps: int,
        crossbar_energy_j: float,
        switch_hops: int,
        suppressed_packets: int,
        io_bus_words: int,
    ) -> EventCounters:
        """Scale the static schedule by the executed steps and merge in the
        data-dependent event totals."""
        program = self.program
        static = program.static_events
        counters = EventCounters()
        counters.crossbar_evaluations = steps * static.crossbar_evaluations
        counters.crossbar_device_energy_j = crossbar_energy_j
        counters.neuron_integrations = steps * static.neuron_integrations
        counters.ibuff_accesses = steps * static.ibuff_accesses
        counters.obuff_accesses = steps * static.obuff_accesses
        counters.tbuff_accesses = steps * static.tbuff_accesses
        counters.local_control_events = steps * static.local_control_events
        counters.ccu_transfers = steps * static.ccu_transfers
        counters.input_sram_reads = steps * static.input_sram_reads
        counters.input_sram_writes = steps * static.input_sram_writes
        counters.global_control_events = steps * static.global_control_events
        counters.zero_checks = steps * static.zero_checks
        if program.event_driven:
            counters.switch_hops = switch_hops
            counters.suppressed_packets = suppressed_packets
            counters.io_bus_words = io_bus_words
        else:
            counters.switch_hops = steps * static.switch_hops_without_ed
            counters.io_bus_words = steps * static.io_bus_words_without_ed
        return counters
