"""Memristive crossbar substrate.

This package models the analog compute fabric RESPARC is built on:

* :mod:`repro.crossbar.device` — behavioural memristor model (resistance
  range, discrete levels, programming non-idealities, read energy).
* :mod:`repro.crossbar.quantization` — weight bit-discretisation used by the
  precision study (Fig. 14).
* :mod:`repro.crossbar.mapping` — signed-weight to differential-conductance
  mapping and the current→weighted-sum inverse.
* :mod:`repro.crossbar.nonidealities` — first-order IR-drop / sneak-path /
  variation models motivating small MCAs.
* :mod:`repro.crossbar.energy` — per-read energy and latency of an MCA.
* :mod:`repro.crossbar.mca` — the programmed crossbar array combining all of
  the above.
"""

from repro.crossbar.device import DeviceParameters, MemristorModel
from repro.crossbar.energy import CrossbarEnergyModel, CrossbarReadCost
from repro.crossbar.mapping import CrossbarMapper, ProgrammedWeights
from repro.crossbar.mca import CrossbarArray, CrossbarConfig, CrossbarEvaluation
from repro.crossbar.nonidealities import CrossbarNonidealities, NonidealityParameters
from repro.crossbar.quantization import (
    QuantizationSpec,
    quantization_error,
    quantize_network_weights,
    quantize_uniform,
)

__all__ = [
    "DeviceParameters",
    "MemristorModel",
    "CrossbarEnergyModel",
    "CrossbarReadCost",
    "CrossbarMapper",
    "ProgrammedWeights",
    "CrossbarArray",
    "CrossbarConfig",
    "CrossbarEvaluation",
    "CrossbarNonidealities",
    "NonidealityParameters",
    "QuantizationSpec",
    "quantization_error",
    "quantize_network_weights",
    "quantize_uniform",
]
