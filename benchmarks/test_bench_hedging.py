"""Hedged-dispatch benchmark: straggler mitigation vs plain sharding.

The tail-at-scale failure mode: one slow replica in an otherwise healthy
fleet drags *every* fan-out request's latency to the straggler's, because a
merged response is only as fast as its slowest shard.  Hedging converts
that tail into a bounded detour — a shard stuck past ``hedge_after_s`` is
duplicated onto the least-loaded sibling, the first result wins and the
loser is cancelled over the wire.

The measurement uses the load-lab's machine-independent trick: three real
replica processes, two fast and one with a scripted 350ms per-dispatch
delay (``ReplicaSpec.dispatch_delay_s`` — results are unchanged), driven
through two gateways over the *same* replica clients:

* **unhedged** — ``hedge_after_s=None``: every request waits out the slow
  replica's shard, so p95 ~ the scripted delay;
* **hedged** — ``hedge_after_s=0.08``: the slow shard is re-dispatched to
  a fast sibling after 80ms and wins there.

Exactness always runs: both gateways' merged responses must match the
serial single-session answers bit-for-bit (predictions, spike counts,
integer counters; energy to 1e-9) — hedging changes *where* a shard
computes, never what it computes.  The latency threshold (hedged p95 beats
unhedged p95) skips on single-core runners like the other concurrency
benchmarks.

Results land in ``benchmarks/results/hedging.json`` (override with
``HEDGING_BENCH_RESULTS``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import ArchitectureConfig
from repro.serve import ChipSession, InferenceRequest
from repro.serve.distributed.executors import SessionSpec
from repro.serve.distributed.gateway import GatewayEndpoint, InferenceGateway
from repro.serve.fleet import ReplicaManager, ReplicaSpec

#: Scripted artificial latency per dispatch in the one slow replica.
STRAGGLER_DELAY_S = 0.35
#: Straggler threshold for the hedged run: well past a fast replica's
#: dispatch, well before the scripted straggler delay.
HEDGE_AFTER_S = 0.08
REQUESTS = 10
#: Six samples split evenly across three equal-capacity endpoints, so the
#: slow replica receives a shard of every request.
SAMPLES_PER_REQUEST = 6

#: Legacy per-module override; unset falls through to the shared
#: ``persist_result`` results directory (``BENCH_RESULTS_DIR``).
RESULTS_OVERRIDE = os.environ.get("HEDGING_BENCH_RESULTS")


@pytest.fixture(scope="module")
def hedging_fleet():
    """Three live replicas (two fast, one scripted-slow) + ground truth."""
    rng = np.random.default_rng(29)
    from repro.snn import Dense, Network, convert_to_snn

    network = Network(
        (48,),
        [
            Dense(48, 24, use_bias=False, rng=rng, name="fc1"),
            Dense(24, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="hedging-mlp",
    )
    snn = convert_to_snn(network, rng.random((16, 48)))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    requests = [
        InferenceRequest(
            inputs=rng.random((SAMPLES_PER_REQUEST, 48)),
            sample_offset=i * SAMPLES_PER_REQUEST,
        )
        for i in range(REQUESTS)
    ]
    primary = ChipSession(snn, config=config, timesteps=4, encoder="poisson", seed=13)
    assert primary.encoder_state is not None
    session_spec = SessionSpec(
        snn=snn,
        config=primary.config,
        library=None,
        timesteps=4,
        backend="vectorized",
        seed=13,
        encoder_state=primary.encoder_state,
    )
    serial = ChipSession(snn, config=config, timesteps=4, encoder="poisson", seed=13)
    expected = [serial.infer(request) for request in requests]

    def spec(workload: str, delay_s: float) -> ReplicaSpec:
        return ReplicaSpec(
            session_spec=session_spec, workload=workload, dispatch_delay_s=delay_s
        )

    # Two managers because the scripted delay lives on the (frozen) spec:
    # one boots the fast pair, the other the straggler.
    fast = ReplicaManager(spec("hedge-fast", 0.0))
    slow = ReplicaManager(spec("hedge-slow", STRAGGLER_DELAY_S))
    try:
        replicas = [
            slow.start_replica(),
            fast.start_replica(),
            fast.start_replica(),
        ]
        yield replicas, requests, expected
    finally:
        fast.stop_all()
        slow.stop_all()


def _drive(replicas, requests, expected, hedge_after_s: float | None) -> dict:
    """Sequential closed-loop drive through one gateway; exactness inline.

    Fresh :class:`GatewayEndpoint` objects per run (they carry mutable load
    state) over the *same* replica clients, so both runs measure identical
    replicas.  ``close(close_endpoints=False)`` — the default — leaves the
    clients open for the other run.
    """
    gateway = InferenceGateway(
        [
            GatewayEndpoint(target=replica.client, name=replica.replica_id)
            for replica in replicas
        ],
        name=f"bench-hedging-{'on' if hedge_after_s else 'off'}",
        adaptive=False,
        hedge_after_s=hedge_after_s,
    )
    try:
        waits = []
        for index, request in enumerate(requests):
            started = time.perf_counter()
            response = gateway.infer(request)
            waits.append(time.perf_counter() - started)
            want = expected[index]
            np.testing.assert_array_equal(response.predictions, want.predictions)
            np.testing.assert_array_equal(response.spike_counts, want.spike_counts)
            got_counters = response.counters.as_dict()
            for counter, value in want.counters.as_dict().items():
                if counter == "crossbar_device_energy_j":
                    assert abs(got_counters[counter] - value) <= (
                        1e-9 * max(abs(value), 1e-30)
                    )
                else:
                    assert got_counters[counter] == value, (
                        f"counter {counter} diverged: "
                        f"{got_counters[counter]} != {value}"
                    )
            assert abs(response.energy.total_j - want.energy.total_j) <= (
                1e-9 * want.energy.total_j
            ), "merged energy diverged from the serial run"
        tail = gateway.tail_stats()
    finally:
        gateway.close()
    p50, p95 = np.percentile(waits, [50, 95])
    return {
        "hedge_after_s": hedge_after_s,
        "requests": len(requests),
        "straggler_delay_s": STRAGGLER_DELAY_S,
        "wait_p50_s": float(p50),
        "wait_p95_s": float(p95),
        **{key: int(value) for key, value in tail.items()},
    }


def test_bench_hedging_beats_straggler_p95(hedging_fleet, persist_result):
    """Hedged p95 beats hedging-off against the same scripted straggler."""
    replicas, requests, expected = hedging_fleet
    unhedged = _drive(replicas, requests, expected, hedge_after_s=None)
    hedged = _drive(replicas, requests, expected, hedge_after_s=HEDGE_AFTER_S)
    print(
        f"\nhedging ({REQUESTS} requests, "
        f"{STRAGGLER_DELAY_S * 1e3:.0f}ms straggler, "
        f"hedge after {HEDGE_AFTER_S * 1e3:.0f}ms): "
        f"unhedged p95 {unhedged['wait_p95_s'] * 1e3:.0f}ms vs hedged p95 "
        f"{hedged['wait_p95_s'] * 1e3:.0f}ms "
        f"({hedged['hedges_issued']} hedges, {hedged['hedge_wins']} wins, "
        f"{hedged['hedge_wasted_compute']} wasted)"
    )
    persist_result("hedging", "unhedged", unhedged, path=RESULTS_OVERRIDE)
    persist_result("hedging", "hedged", hedged, path=RESULTS_OVERRIDE)

    assert unhedged["hedges_issued"] == 0, (
        "a hedging-off gateway must never issue a hedge"
    )
    if (os.cpu_count() or 1) < 2:
        pytest.skip("hedging latency thresholds need >= 2 cores (replica processes)")
    assert hedged["hedges_issued"] >= 1, "the straggler never tripped a hedge"
    assert hedged["hedge_wins"] >= 1, "no hedge ever beat the straggler"
    assert hedged["wait_p95_s"] < unhedged["wait_p95_s"], (
        f"hedging did not improve p95 latency: "
        f"{hedged['wait_p95_s']:.3f}s vs unhedged {unhedged['wait_p95_s']:.3f}s"
    )
