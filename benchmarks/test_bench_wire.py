"""Wire-serialization overhead: v3 binary frames vs JSON lines.

Protocol v3 exists to take text serialization off the hot path: a feature
batch crosses the wire as raw little-endian float64 instead of decimal
text, so encode+decode cost is a memcpy, not a float-printing loop.  This
benchmark pins that down at two levels and persists the numbers as JSON so
the perf trajectory across PRs is inspectable:

* **codec-only** — `InferenceRequest`/`InferenceResponse` round-tripped
  through `to_frame`/`from_frame` vs `to_json`/`from_json` on a batch of
  256.  Pure CPU, machine-independent ordering: the binary codec must be
  >= 5x cheaper than the JSON codec.
* **end-to-end** — a real `ChipServer` on localhost answering the same
  request over a negotiated-v3 `RemoteSession` and a forced-JSON one.
  Overhead is the round-trip wall time minus local chip compute; the
  acceptance bar is binary overhead under ~10% of chip compute *or* a
  >= 5x reduction vs the JSON path (either shows serialization is no
  longer the ceiling).  Load-dependent thresholds skip on single-core
  runners like the other concurrency benchmarks.

Results land in ``benchmarks/results/wire_overhead.json`` (override with
``WIRE_BENCH_RESULTS``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import ArchitectureConfig
from repro.serve import ChipSession, InferenceRequest, InferenceResponse
from repro.serve.distributed import ChipServer, RemoteSession
from repro.snn import Dense, Network, convert_to_snn

BATCH = 256
FEATURES = 256
TIMESTEPS = 8
ROUNDS = 5

#: The binary codec must beat the JSON codec by at least this factor on a
#: batch of 256 — raw array payloads vs per-float decimal text.
CODEC_SPEEDUP_FLOOR = 5.0
#: End-to-end bar: binary wire overhead stays under this fraction of chip
#: compute, or (on noisy runners) at least CODEC_SPEEDUP_FLOOR cheaper
#: than the JSON wire overhead.
OVERHEAD_COMPUTE_FRACTION = 0.10

#: Legacy per-module override; unset falls through to the shared
#: ``persist_result`` results directory (``BENCH_RESULTS_DIR``).
RESULTS_OVERRIDE = os.environ.get("WIRE_BENCH_RESULTS")


@pytest.fixture(scope="module")
def wire_workload():
    """The executor-benchmark MLP and a batch large enough to stress framing."""
    rng = np.random.default_rng(31)
    network = Network(
        (FEATURES,),
        [
            Dense(FEATURES, 128, use_bias=False, rng=rng, name="fc1"),
            Dense(128, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="wire-mlp",
    )
    snn = convert_to_snn(network, rng.random((24, FEATURES)))
    config = ArchitectureConfig(crossbar_rows=32, crossbar_columns=32)
    inputs = rng.random((BATCH, FEATURES))
    labels = rng.integers(0, 10, size=BATCH)
    return snn, config, inputs, labels


def _session(snn, config) -> ChipSession:
    return ChipSession(snn, config=config, timesteps=TIMESTEPS, seed=3)


def _best(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_wire_codec_binary_vs_json(wire_workload, persist_result):
    """Frame codec must be >= 5x cheaper than the JSON codec at batch 256."""
    snn, config, inputs, labels = wire_workload
    request = InferenceRequest(inputs=inputs, labels=labels, timesteps=TIMESTEPS)
    response = _session(snn, config).infer(request)

    request_binary = _best(
        lambda: InferenceRequest.from_frame(bytes(request.to_frame()))
    )
    request_json = _best(lambda: InferenceRequest.from_json(request.to_json()))
    response_binary = _best(
        lambda: InferenceResponse.from_frame(bytes(response.to_frame()))
    )
    response_json = _best(lambda: InferenceResponse.from_json(response.to_json()))

    binary_s = request_binary + response_binary
    json_s = request_json + response_json
    speedup = json_s / binary_s
    payload = {
        "batch": BATCH,
        "features": FEATURES,
        "request_binary_s": request_binary,
        "request_json_s": request_json,
        "response_binary_s": response_binary,
        "response_json_s": response_json,
        "speedup": speedup,
        "frame_bytes": len(bytes(request.to_frame())),
        "json_bytes": len(request.to_json().encode()),
    }
    persist_result("wire_overhead", "codec", payload, path=RESULTS_OVERRIDE)
    print(
        f"\nwire codec (batch {BATCH}x{FEATURES}): binary {binary_s * 1e3:.2f}ms, "
        f"JSON {json_s * 1e3:.2f}ms, speedup {speedup:.1f}x "
        f"({payload['frame_bytes']} vs {payload['json_bytes']} request bytes)"
    )
    # Round trips must stay lossless before the timing means anything.
    restored = InferenceRequest.from_frame(bytes(request.to_frame()))
    np.testing.assert_array_equal(restored.batch, request.batch)
    assert speedup >= CODEC_SPEEDUP_FLOOR, (
        f"binary codec only {speedup:.1f}x faster than JSON "
        f"({binary_s * 1e3:.2f}ms vs {json_s * 1e3:.2f}ms) — below the "
        f"{CODEC_SPEEDUP_FLOOR:.0f}x floor"
    )


def test_bench_wire_end_to_end_overhead(wire_workload, persist_result):
    """Binary wire overhead vs chip compute over a real localhost server."""
    snn, config, inputs, labels = wire_workload
    request = InferenceRequest(inputs=inputs, labels=labels)
    local = _session(snn, config)
    compute_s = _best(lambda: local.infer(request))
    expected = local.infer(request)

    with ChipServer(_session(snn, config), port=0, workload="wire-bench").start() as server:
        with RemoteSession.connect(server.address, wire="auto") as remote:
            assert remote.wire_version == 3
            binary_s = _best(lambda: remote.infer(request))
            got = remote.infer(request)
        with RemoteSession.connect(server.address, wire="json") as remote:
            assert remote.wire_version == 2
            json_s = _best(lambda: remote.infer(request))

    np.testing.assert_array_equal(got.predictions, expected.predictions)
    np.testing.assert_array_equal(got.spike_counts, expected.spike_counts)

    binary_overhead = max(binary_s - compute_s, 0.0)
    json_overhead = max(json_s - compute_s, 0.0)
    payload = {
        "batch": BATCH,
        "timesteps": TIMESTEPS,
        "compute_s": compute_s,
        "binary_round_trip_s": binary_s,
        "json_round_trip_s": json_s,
        "binary_overhead_s": binary_overhead,
        "json_overhead_s": json_overhead,
        "binary_overhead_fraction": binary_overhead / compute_s,
    }
    persist_result("wire_overhead", "end_to_end", payload, path=RESULTS_OVERRIDE)
    print(
        f"\nwire end-to-end (batch {BATCH}, timesteps {TIMESTEPS}): "
        f"compute {compute_s * 1e3:.1f}ms, v3 round trip {binary_s * 1e3:.1f}ms "
        f"(overhead {binary_overhead * 1e3:.1f}ms, "
        f"{binary_overhead / compute_s:.1%} of compute), "
        f"JSON round trip {json_s * 1e3:.1f}ms "
        f"(overhead {json_overhead * 1e3:.1f}ms)"
    )

    if (os.cpu_count() or 1) < 2:
        pytest.skip("wire overhead thresholds need >= 2 cores (client vs server)")
    under_fraction = binary_overhead < OVERHEAD_COMPUTE_FRACTION * compute_s
    beats_json = binary_overhead * CODEC_SPEEDUP_FLOOR <= json_overhead
    assert under_fraction or beats_json, (
        f"binary wire overhead {binary_overhead * 1e3:.1f}ms is neither under "
        f"{OVERHEAD_COMPUTE_FRACTION:.0%} of compute ({compute_s * 1e3:.1f}ms) "
        f"nor {CODEC_SPEEDUP_FLOOR:.0f}x cheaper than the JSON path "
        f"({json_overhead * 1e3:.1f}ms)"
    )
