"""Cross-backend parity: the vectorized chip must match the structural chip.

The vectorized backend (:mod:`repro.fastpath`) is only allowed to be fast —
never different.  For a grid of seeds, workload shapes, encoders and
event-driven settings these tests assert that predictions and spike counts
are *identical* and that every event counter matches exactly, with the
crossbar device energy and the final energy report agreeing to floating
point accumulation order (1e-9 relative is the contract; observed agreement
is ~1e-15).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ArchitectureConfig, ChipSimulator, simulate
from repro.snn import Dense, Network, convert_to_snn

#: Counters that are pure integer event counts and must match exactly.
EXACT_COUNTERS = [
    "crossbar_evaluations",
    "neuron_integrations",
    "neuron_spikes",
    "ibuff_accesses",
    "obuff_accesses",
    "tbuff_accesses",
    "local_control_events",
    "ccu_transfers",
    "switch_hops",
    "zero_checks",
    "suppressed_packets",
    "io_bus_words",
    "global_control_events",
    "input_sram_reads",
    "input_sram_writes",
]

ENERGY_RTOL = 1e-9


def _mlp(seed: int, dims: tuple[int, ...]) -> tuple[Network, np.ndarray]:
    """A random MLP plus calibration inputs for the given layer widths."""
    rng = np.random.default_rng(seed)
    layers = []
    for i, (n_in, n_out) in enumerate(zip(dims[:-1], dims[1:])):
        last = i == len(dims) - 2
        layers.append(
            Dense(
                n_in,
                n_out,
                activation=None if last else "relu",
                use_bias=False,
                rng=rng,
                name=f"fc{i}",
            )
        )
    network = Network((dims[0],), layers, name=f"parity-{'x'.join(map(str, dims))}")
    return network, rng.random((12, dims[0]))


def _run_pair(snn, inputs, labels, *, config, timesteps, encoder, seed):
    results = []
    for backend in ("structural", "vectorized"):
        simulator = ChipSimulator(
            config=config,
            timesteps=timesteps,
            encoder=encoder,
            backend=backend,
            rng=np.random.default_rng(seed),
        )
        results.append(simulator.run(snn, inputs, labels))
    return results


def _assert_parity(structural, vectorized):
    np.testing.assert_array_equal(structural.predictions, vectorized.predictions)
    np.testing.assert_array_equal(structural.spike_counts, vectorized.spike_counts)
    assert structural.accuracy == vectorized.accuracy
    s_counts = structural.counters.as_dict()
    v_counts = vectorized.counters.as_dict()
    for name in EXACT_COUNTERS:
        assert s_counts[name] == v_counts[name], (
            f"counter {name}: structural={s_counts[name]} vectorized={v_counts[name]}"
        )
    assert vectorized.counters.crossbar_device_energy_j == pytest.approx(
        structural.counters.crossbar_device_energy_j, rel=ENERGY_RTOL
    )
    assert vectorized.energy.total_j == pytest.approx(
        structural.energy.total_j, rel=ENERGY_RTOL
    )
    for component, energy_j in structural.energy.components.items():
        assert vectorized.energy.components[component] == pytest.approx(
            energy_j, rel=ENERGY_RTOL, abs=1e-30
        ), f"energy component {component}"


class TestBackendParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("encoder", ["deterministic", "poisson"])
    def test_two_layer_mlp_parity(self, seed, encoder):
        network, calibration = _mlp(seed, (48, 24, 10))
        snn = convert_to_snn(network, calibration)
        rng = np.random.default_rng(100 + seed)
        inputs = rng.random((6, 48))
        labels = rng.integers(0, 10, size=6)
        structural, vectorized = _run_pair(
            snn,
            inputs,
            labels,
            config=ArchitectureConfig(crossbar_rows=16, crossbar_columns=16),
            timesteps=10,
            encoder=encoder,
            seed=seed,
        )
        _assert_parity(structural, vectorized)

    @pytest.mark.parametrize("event_driven", [True, False])
    def test_multi_neurocell_chip_parity(self, event_driven):
        # Tiny NeuroCells force the mapping across cells, exercising the
        # inter-layer bus/SRAM transfer accounting in both backends.
        network, calibration = _mlp(7, (60, 40, 20, 10))
        snn = convert_to_snn(network, calibration)
        config = ArchitectureConfig(
            crossbar_rows=16,
            crossbar_columns=16,
            mcas_per_mpe=1,
            mpes_per_neurocell=4,
            event_driven=event_driven,
        )
        rng = np.random.default_rng(77)
        inputs = rng.random((5, 60))
        structural, vectorized = _run_pair(
            snn, inputs, None, config=config, timesteps=9, encoder="poisson", seed=5
        )
        chip = ChipSimulator(config=config).build_chip(snn)
        assert chip.required_neurocells() > 1
        _assert_parity(structural, vectorized)

    def test_parity_on_shared_prebuilt_chip(self):
        # Both backends can execute the very same programmed chip instance,
        # in any order and repeatedly: structural counters are per-run
        # deltas, so earlier runs must not leak into later results.
        network, calibration = _mlp(3, (32, 16, 10))
        snn = convert_to_snn(network, calibration)
        config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
        inputs = np.random.default_rng(9).random((4, 32))
        chip = ChipSimulator(config=config).build_chip(snn)
        structural_first = simulate(
            snn, inputs, backend="structural", config=config, timesteps=8, chip=chip
        )
        vectorized = simulate(
            snn, inputs, backend="vectorized", config=config, timesteps=8, chip=chip
        )
        structural_again = simulate(
            snn, inputs, backend="structural", config=config, timesteps=8, chip=chip
        )
        _assert_parity(structural_first, vectorized)
        _assert_parity(structural_again, vectorized)
        first = structural_first.counters.as_dict()
        again = structural_again.counters.as_dict()
        for name in EXACT_COUNTERS:
            assert first[name] == again[name], name
        # The snapshot delta of the float energy accumulator may lose ulps.
        assert again["crossbar_device_energy_j"] == pytest.approx(
            first["crossbar_device_energy_j"], rel=ENERGY_RTOL
        )

    def test_single_vector_input_parity(self):
        network, calibration = _mlp(11, (20, 12, 5))
        snn = convert_to_snn(network, calibration)
        config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
        x = np.random.default_rng(2).random(20)
        structural, vectorized = _run_pair(
            snn, x, None, config=config, timesteps=6, encoder="deterministic", seed=0
        )
        assert structural.predictions.shape == (1,)
        _assert_parity(structural, vectorized)


class TestChipAccessors:
    def test_public_dimension_accessors(self):
        network, calibration = _mlp(2, (32, 16, 10))
        snn = convert_to_snn(network, calibration)
        chip = ChipSimulator(
            config=ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
        ).build_chip(snn)
        assert chip.input_dim == 32
        assert chip.output_dim == 10
        assert chip.dims_for(chip.layer_order[0]) == (32, 16)
        assert chip.layer_dims[chip.layer_order[-1]] == (16, 10)
        assert chip.threshold_for(chip.layer_order[0]) == snn.threshold_for(
            chip.layer_order[0]
        )
        with pytest.raises(KeyError):
            chip.dims_for(99)
        with pytest.raises(KeyError):
            chip.threshold_for(99)


class TestVectorizedBackendGuards:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ChipSimulator(backend="quantum")

    def test_input_width_mismatch_raises(self):
        network, calibration = _mlp(1, (24, 10))
        snn = convert_to_snn(network, calibration)
        simulator = ChipSimulator(
            config=ArchitectureConfig(crossbar_rows=16, crossbar_columns=16),
            timesteps=4,
            backend="vectorized",
        )
        with pytest.raises(ValueError, match="expects"):
            simulator.run(snn, np.random.default_rng(0).random((2, 30)))

    def test_mismatched_chip_config_rejected(self):
        network, calibration = _mlp(6, (24, 10))
        snn = convert_to_snn(network, calibration)
        chip = ChipSimulator(
            config=ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
        ).build_chip(snn)
        other = ChipSimulator(
            config=ArchitectureConfig(crossbar_rows=32, crossbar_columns=32), timesteps=4
        )
        with pytest.raises(ValueError, match="different ArchitectureConfig"):
            other.run(snn, np.zeros((1, 24)), chip=chip)
        # simulate() without an explicit config adopts the chip's own.
        result = simulate(snn, np.zeros((1, 24)), chip=chip, timesteps=4)
        assert result.predictions.shape == (1,)

    def test_simulate_facade_rejects_mismatched_config(self):
        # The facade must raise the mismatch itself, not hand the wrong
        # config to a simulator and rely on the run-time check downstream.
        network, calibration = _mlp(6, (24, 10))
        snn = convert_to_snn(network, calibration)
        chip = ChipSimulator(
            config=ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
        ).build_chip(snn)
        with pytest.raises(ValueError, match="different ArchitectureConfig"):
            simulate(
                snn,
                np.zeros((1, 24)),
                config=ArchitectureConfig(crossbar_rows=32, crossbar_columns=32),
                chip=chip,
                timesteps=4,
            )

    def test_compiled_program_is_cached_per_chip(self):
        from repro.fastpath import compile_chip

        network, calibration = _mlp(8, (20, 10))
        snn = convert_to_snn(network, calibration)
        chip = ChipSimulator(
            config=ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
        ).build_chip(snn)
        assert compile_chip(chip) is compile_chip(chip)

    def test_result_records_backend(self):
        network, calibration = _mlp(4, (16, 8))
        snn = convert_to_snn(network, calibration)
        result = simulate(
            snn,
            np.random.default_rng(1).random((2, 16)),
            backend="vectorized",
            config=ArchitectureConfig(crossbar_rows=16, crossbar_columns=16),
            timesteps=4,
        )
        assert result.backend == "vectorized"
        assert result.energy.label.startswith("resparc-vectorized/")
