"""The vectorized fast path of the structural chip model.

The structural model (:mod:`repro.core.resparc`) executes one sample at a
time through Python objects — maximal fidelity, minimal throughput.  This
package compiles a programmed chip into dense arrays
(:func:`~repro.fastpath.compiler.compile_chip`), packing every layer's
tiles into stacked tensors for the layer-fused kernel
(:class:`~repro.fastpath.compiler.FusedLayer`), and replays whole batches
through NumPy (:class:`~repro.fastpath.engine.VectorizedChipEngine`),
producing the same predictions, the same :class:`~repro.core.stats.EventCounters`
and the same energy totals as the structural execution.  Work buffers live
in reusable :class:`~repro.fastpath.plan.KernelPlan` scratch arenas, cached
per execution shape by :class:`~repro.fastpath.plan.PlanCache`.

Select it through ``ChipSimulator(backend="vectorized")`` or the
:func:`repro.core.simulator.simulate` facade; ``tests/test_backend_parity.py``
is the contract that keeps the two backends equivalent, and
``tests/test_kernel_fused.py`` pins the fused kernel to the per-tile
reference loop bit for bit.
"""

from repro.fastpath.compiler import (
    CompiledChip,
    CompiledLayer,
    CompiledTile,
    FusedLayer,
    StaticStepEvents,
    compile_chip,
)
from repro.fastpath.engine import BatchRunOutcome, VectorizedChipEngine
from repro.fastpath.plan import ChunkCountScratch, KernelPlan, PlanCache

__all__ = [
    "CompiledChip",
    "CompiledLayer",
    "CompiledTile",
    "FusedLayer",
    "StaticStepEvents",
    "compile_chip",
    "BatchRunOutcome",
    "VectorizedChipEngine",
    "ChunkCountScratch",
    "KernelPlan",
    "PlanCache",
]
