"""Tests for report rendering, the experiment runner and remaining edge paths."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import ArchitectureConfig, ChipSimulator, ResparcModel
from repro.experiments import ExperimentSettings, WorkloadContext
from repro.experiments.runner import main as runner_main
from repro.mapping import map_network, partition_layer, place_partitions
from repro.snn import Dense, Network, convert_to_snn
from repro.snn.topology import LayerConnectivity
from repro.workloads import build_mnist_mlp


class TestExperimentSettings:
    def test_quick_settings_are_lighter(self):
        quick = ExperimentSettings.quick()
        default = ExperimentSettings()
        assert quick.timesteps < default.timesteps
        assert quick.eval_samples <= default.eval_samples

    def test_context_inputs_shape_for_mlp_and_cnn(self):
        context = WorkloadContext(
            ExperimentSettings(
                timesteps=4, eval_samples=1, train_samples=8, test_samples=4,
                train_epochs=0, network_scale=0.2, seed=1,
            )
        )
        mlp = context.prepare("mnist-mlp")
        cnn = context.prepare("mnist-cnn")
        assert mlp.network.input_shape == (784,)
        assert cnn.network.input_shape == (28, 28, 1)
        assert mlp.trace.samples == 1

    def test_training_epochs_produce_distinct_cache_entries(self):
        context = WorkloadContext(
            ExperimentSettings(
                timesteps=4, eval_samples=1, train_samples=16, test_samples=4,
                train_epochs=0, network_scale=0.15, seed=1,
            )
        )
        untrained = context.prepare("mnist-mlp")
        trained = context.prepare("mnist-mlp", train_epochs=1)
        assert untrained is not trained


class TestRunnerCli:
    def test_quick_run_without_accuracy(self, capsys):
        exit_code = runner_main(["--quick", "--no-accuracy", "--timesteps", "4"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Fig. 11" in captured
        assert "Fig. 12" in captured
        assert "Fig. 13" in captured
        assert "Fig. 14(b)" in captured


class TestStructuralChipExtras:
    def test_effective_layer_weights_shape(self, rng):
        network = Network(
            (24,),
            [Dense(24, 12, use_bias=False, rng=rng), Dense(12, 4, activation=None, use_bias=False, rng=rng)],
            name="weights-roundtrip",
        )
        snn = convert_to_snn(network, rng.random((4, 24)))
        simulator = ChipSimulator(
            config=ArchitectureConfig(crossbar_rows=16, crossbar_columns=16),
            timesteps=4,
            encoder="deterministic",
        )
        chip = simulator.build_chip(snn)
        weights = chip.effective_layer_weights(0)
        assert weights.shape == (24, 12)
        # Correlation with the (quantised) source weights should be very high.
        source = network.layers[0].weights
        corr = np.corrcoef(weights.ravel(), source.ravel())[0, 1]
        assert corr > 0.99

    def test_chip_single_vector_input(self, rng):
        network = Network(
            (10,), [Dense(10, 5, activation=None, use_bias=False, rng=rng)], name="single"
        )
        snn = convert_to_snn(network, rng.random((3, 10)))
        simulator = ChipSimulator(
            config=ArchitectureConfig(crossbar_rows=16, crossbar_columns=16),
            timesteps=3,
            encoder="deterministic",
        )
        result = simulator.run(snn, rng.random(10))
        assert result.predictions.shape == (1,)


class TestModelMapsItself:
    def test_model_map_uses_configured_size(self):
        network = build_mnist_mlp(scale=0.2)
        model = ResparcModel(config=ArchitectureConfig().with_crossbar_size(32))
        mapped = model.map(network)
        assert mapped.crossbar_rows == 32
        direct = map_network(network, crossbar_size=32)
        assert mapped.total_tiles == direct.total_tiles


class TestPlacementProperties:
    @staticmethod
    def _conn(index: int, n_in: int, n_out: int) -> LayerConnectivity:
        return LayerConnectivity(
            index=index, name=f"l{index}", kind="dense", n_inputs=n_in, n_outputs=n_out,
            fan_in=n_in, synapses=n_in * n_out, output_groups=n_out,
            window_positions=1, shared_inputs_per_step=0, unique_weights=n_in * n_out,
        )

    @given(
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=300), st.integers(min_value=1, max_value=300)),
            min_size=1,
            max_size=4,
        ),
        st.sampled_from([32, 64]),
    )
    @settings(max_examples=25, deadline=None)
    def test_placement_capacity_invariants(self, layer_dims, size):
        partitions = [
            partition_layer(self._conn(i, n_in, n_out), size, size)
            for i, (n_in, n_out) in enumerate(layer_dims)
        ]
        placement = place_partitions(partitions, mcas_per_mpe=4, mpes_per_neurocell=16)
        # Every layer gets enough MCAs for its tiles, and the NeuroCell count
        # is consistent with the mPE capacity of a cell.
        for layer, partition in zip(placement.layers, partitions):
            assert layer.mpe_count * 4 >= partition.tile_count
        assert placement.total_neurocells >= int(np.ceil(placement.total_mpes / 16))
        assert placement.total_switches == placement.total_neurocells * 9
        assert placement.layers[-1].output_stays_in_neurocell
