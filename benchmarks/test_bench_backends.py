"""Wall-clock comparison of the structural and vectorized chip backends.

The vectorized backend exists for throughput: the acceptance bar is a >= 5x
speedup over the per-sample structural execution on a batch of 64 MLP
samples, while staying result-identical (the parity suite asserts the
identity; here we re-check the cheap invariants on the benchmarked runs).
Observed speedups are far above the bar — the structural path walks Python
packet objects per sample, the fast path does a handful of matmuls per
timestep for the whole batch.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import ArchitectureConfig, ChipSimulator
from repro.snn import Dense, Network, convert_to_snn

BATCH = 64
TIMESTEPS = 8
SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="module")
def bench_workload():
    """A mid-size MLP, its programmed chip and a 64-sample input batch."""
    rng = np.random.default_rng(17)
    network = Network(
        (196,),
        [
            Dense(196, 64, use_bias=False, rng=rng, name="fc1"),
            Dense(64, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="bench-mlp",
    )
    snn = convert_to_snn(network, rng.random((24, 196)))
    config = ArchitectureConfig(crossbar_rows=32, crossbar_columns=32)
    chip = ChipSimulator(config=config).build_chip(snn)
    inputs = rng.random((BATCH, 196))
    return snn, config, chip, inputs


def _simulator(config, backend: str) -> ChipSimulator:
    return ChipSimulator(
        config=config,
        timesteps=TIMESTEPS,
        encoder="deterministic",
        backend=backend,
        rng=np.random.default_rng(0),
    )


def test_bench_structural_backend(benchmark, bench_workload):
    """Reference path: 64 samples, one at a time through the component tree."""
    snn, config, chip, inputs = bench_workload
    simulator = _simulator(config, "structural")
    result = benchmark.pedantic(
        lambda: simulator.run(snn, inputs, chip=chip), iterations=1, rounds=1
    )
    assert result.predictions.shape == (BATCH,)


def test_bench_vectorized_backend(benchmark, bench_workload):
    """Fast path: the same 64 samples as one compiled batch."""
    snn, config, chip, inputs = bench_workload
    simulator = _simulator(config, "vectorized")
    result = benchmark.pedantic(
        lambda: simulator.run(snn, inputs, chip=chip), iterations=1, rounds=3
    )
    assert result.predictions.shape == (BATCH,)


def test_vectorized_speedup_floor(bench_workload):
    """The vectorized backend must be >= 5x faster on a 64-sample batch."""
    snn, config, chip, inputs = bench_workload

    structural = _simulator(config, "structural")
    t0 = time.perf_counter()
    structural_result = structural.run(snn, inputs, chip=chip)
    structural_s = time.perf_counter() - t0

    vectorized = _simulator(config, "vectorized")
    vectorized_s = float("inf")
    for _ in range(3):  # best of three to shake out first-call overheads
        t0 = time.perf_counter()
        vectorized_result = vectorized.run(snn, inputs, chip=chip)
        vectorized_s = min(vectorized_s, time.perf_counter() - t0)

    speedup = structural_s / vectorized_s
    print(
        f"\nbackend wall-clock: structural {structural_s:.3f}s, "
        f"vectorized {vectorized_s:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized backend only {speedup:.1f}x faster "
        f"({structural_s:.3f}s vs {vectorized_s:.3f}s)"
    )
    # The speed must not change the answer.
    np.testing.assert_array_equal(
        structural_result.predictions, vectorized_result.predictions
    )
    np.testing.assert_array_equal(
        structural_result.spike_counts, vectorized_result.spike_counts
    )
