"""``python -m repro.serve.distributed`` — the serve CLI."""

from repro.serve.distributed.cli import main

raise SystemExit(main())
