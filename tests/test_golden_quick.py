"""Golden regression of the rendered Fig. 11-14 tables (quick settings).

``run_all(ExperimentSettings.quick(), include_accuracy=False)`` must render
exactly the tables checked in at ``tests/golden/quick_suite.txt``.  The run
is fully deterministic (synthetic datasets, derived RNGs, fixed seed), so
any diff means an intentional change to the models/rendering — or a
regression.

Updating the golden after an intentional change::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_quick.py

then review the diff of ``tests/golden/quick_suite.txt`` like any other code
change.  (The Fig. 14(a) accuracy sweep is excluded: it is the slowest stage
and its rendering is covered by the runner CLI test.)
"""

from __future__ import annotations

import difflib
import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentSettings, run_all

GOLDEN_PATH = Path(__file__).parent / "golden" / "quick_suite.txt"


@pytest.fixture(scope="module")
def rendered_tables() -> str:
    result = run_all(ExperimentSettings.quick(), include_accuracy=False)
    return result.render() + "\n"


def test_quick_suite_matches_golden(rendered_tables: str):
    if os.environ.get("UPDATE_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(rendered_tables)
        pytest.skip(f"golden updated at {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"golden file missing; generate it with UPDATE_GOLDEN=1 pytest {__file__}"
    )
    golden = GOLDEN_PATH.read_text()
    if rendered_tables != golden:
        diff = "\n".join(
            difflib.unified_diff(
                golden.splitlines(),
                rendered_tables.splitlines(),
                fromfile="golden/quick_suite.txt",
                tofile="run_all(quick)",
                lineterm="",
            )
        )
        raise AssertionError(
            "rendered figure tables diverged from the golden snapshot; if the "
            "change is intentional, regenerate with UPDATE_GOLDEN=1 and commit "
            f"the diff.\n{diff}"
        )


def test_golden_contains_every_figure(rendered_tables: str):
    for figure in ("Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14(b)"):
        assert figure in rendered_tables
