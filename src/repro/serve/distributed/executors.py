"""Pluggable shard executors for :class:`~repro.serve.pool.ChipPool`.

A pool splits each request batch into contiguous shards; *how* the shards
execute is this module's concern.  Every executor implements the same tiny
contract — :meth:`ShardExecutor.start` with a :class:`SessionSpec`,
:meth:`ShardExecutor.run_shards` mapping shard requests to responses, and
:meth:`ShardExecutor.close` — and every executor is **result-identical**:
predictions, spike counts and integer event counters match a single
:class:`~repro.serve.session.ChipSession` run exactly, and energies agree to
floating-point accumulation order.  That identity holds because

* encoding is shard-stable (:class:`~repro.snn.encoding.EncoderState` seeds
  spike streams per absolute sample index),
* chip programming is a pure function of ``(snn, config, seed)``, so every
  worker — thread or process — holds an identically programmed chip, and
* counters are per-run deltas that sum exactly across shards.

Three executors are provided:

* :class:`InlineExecutor` — runs shards sequentially on the caller's thread
  (the debugging/profiling baseline: sharding semantics, no concurrency).
* :class:`ThreadExecutor` — the classic pool behaviour: one worker session
  per job on a thread pool (the vectorized backend releases the GIL in its
  NumPy kernels).  Vectorized workers share the primary session's chip and
  compiled program; structural workers rebuild their own chip.
* :class:`ProcessExecutor` — ``multiprocessing`` workers, each holding its
  own programmed chip in its own interpreter.  Requests and responses cross
  the process boundary through the lossless JSON schema
  (:meth:`~repro.serve.schema.InferenceRequest.to_json` /
  :meth:`~repro.serve.schema.InferenceResponse.from_json`), exactly the
  bytes a remote chip server would exchange — so this executor doubles as
  the single-host proof of the multi-host wire format.
"""

from __future__ import annotations

import multiprocessing
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.config import ArchitectureConfig
from repro.core.resparc import ResparcChip
from repro.energy.components import ComponentLibrary
from repro.serve.schema import InferenceRequest, InferenceResponse
from repro.serve.session import ChipSession
from repro.snn.conversion import SpikingNetwork
from repro.snn.encoding import EncoderState

__all__ = [
    "SessionSpec",
    "ShardExecutor",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "EXECUTORS",
    "make_executor",
]


@dataclass(frozen=True)
class SessionSpec:
    """Picklable recipe for building interchangeable worker sessions.

    Everything a worker — in this process or another — needs to build a
    :class:`ChipSession` whose chip is programmed identically to the pool's
    primary session.  The spec always carries an explicit
    :class:`EncoderState` (never a legacy RNG stream), so worker encoding is
    shard-stable by construction.
    """

    snn: SpikingNetwork
    config: ArchitectureConfig
    library: ComponentLibrary | None
    timesteps: int
    backend: str
    seed: int
    encoder_state: EncoderState

    def build_session(self, chip: ResparcChip | None = None) -> ChipSession:
        """Build a worker session (optionally reusing a prebuilt chip)."""
        return ChipSession(
            self.snn,
            chip=chip,
            config=self.config,
            library=self.library,
            timesteps=self.timesteps,
            backend=self.backend,
            seed=self.seed,
            encoder_state=self.encoder_state,
        )


class ShardExecutor(ABC):
    """Executes a pool's shard requests on worker sessions."""

    #: Registry name (what ``ChipPool(executor=...)`` selects by).
    name = "abstract"

    @abstractmethod
    def start(self, spec: SessionSpec, jobs: int, primary: ChipSession) -> None:
        """Provision ``jobs`` workers from ``spec``.

        ``primary`` is the pool's already-built primary session; executors
        that run in-process may reuse it (and, on the vectorized backend,
        its chip) instead of building a redundant worker.
        """

    @abstractmethod
    def run_shards(self, shards: list[InferenceRequest]) -> list[InferenceResponse]:
        """Run the shard requests and return their responses, in order.

        ``len(shards)`` never exceeds the ``jobs`` the executor was started
        with (:meth:`~repro.serve.pool.ChipPool.infer_many` chunks larger
        coalesced dispatches into waves); the pool guarantees at most one
        call in flight at a time.
        """

    def close(self) -> None:
        """Release worker resources (idempotent)."""


class InlineExecutor(ShardExecutor):
    """Sequential execution on the calling thread.

    Shards run one after another on the primary session — valid because
    counters are per-run deltas (the structural backend resets chip state
    per sample) — so the pool's sharding semantics can be exercised and
    profiled without any concurrency in the way.
    """

    name = "inline"

    def start(self, spec: SessionSpec, jobs: int, primary: ChipSession) -> None:
        self._primary = primary

    def run_shards(self, shards: list[InferenceRequest]) -> list[InferenceResponse]:
        return [self._primary.infer(shard) for shard in shards]


class ThreadExecutor(ShardExecutor):
    """One worker session per job on a thread pool (the historical pool)."""

    name = "thread"

    def start(self, spec: SessionSpec, jobs: int, primary: ChipSession) -> None:
        # Vectorized workers share the primary's chip (and therefore its
        # cached compiled program); the engine never mutates either.  The
        # structural backend mutates live component state, so each worker
        # rebuilds its own chip from the same seed, which programs
        # identically.
        shared_chip = primary.chip if spec.backend == "vectorized" else None
        self.sessions = [primary]
        for _ in range(jobs - 1):
            self.sessions.append(spec.build_session(chip=shared_chip))
        self._threads = ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="chip-pool"
        )

    def run_shards(self, shards: list[InferenceRequest]) -> list[InferenceResponse]:
        # Shards are pinned to fixed sessions: structural workers mutate
        # their chip in place, so a session must never run two shards of the
        # same dispatch wave.  An over-capacity wave would silently drop
        # shards in the zip below — reject it loudly instead.
        if len(shards) > len(self.sessions):
            raise ValueError(
                f"thread executor holds {len(self.sessions)} worker sessions "
                f"but received {len(shards)} shards in one wave"
            )
        futures = [
            self._threads.submit(session.infer, shard)
            for session, shard in zip(self.sessions, shards)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._threads.shutdown(wait=True)


# -- process workers ---------------------------------------------------------------
#
# Worker state lives in a module global because ``multiprocessing`` worker
# functions must be importable top-level callables.  Each worker process
# builds its own session (and therefore its own programmed chip) once, in the
# pool initializer, then serves shard requests from it.

_WORKER_SESSION: ChipSession | None = None


def _process_worker_init(spec: SessionSpec) -> None:
    global _WORKER_SESSION
    _WORKER_SESSION = spec.build_session()


def _process_worker_infer(payload: str) -> str:
    if _WORKER_SESSION is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("process worker used before initialisation")
    request = InferenceRequest.from_json(payload)
    return _WORKER_SESSION.infer(request).to_json()


class ProcessExecutor(ShardExecutor):
    """``multiprocessing`` workers, one programmed chip per process.

    Shard requests and responses are shipped through the JSON schema — the
    same wire format the socket chip server speaks — so results are exact by
    the schema's lossless round-trip guarantee, and the executor sidesteps
    the GIL entirely (useful for the structural backend, whose per-sample
    Python loop threads cannot parallelise).

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"`` or ``None`` for the platform default).  All methods
        work because :class:`SessionSpec` is picklable.
    """

    name = "process"

    def __init__(self, start_method: str | None = None):
        self._start_method = start_method
        self._pool: multiprocessing.pool.Pool | None = None

    def start(self, spec: SessionSpec, jobs: int, primary: ChipSession) -> None:
        context = multiprocessing.get_context(self._start_method)
        self._pool = context.Pool(
            processes=jobs, initializer=_process_worker_init, initargs=(spec,)
        )

    def run_shards(self, shards: list[InferenceRequest]) -> list[InferenceResponse]:
        if self._pool is None:
            raise RuntimeError("process executor is not started")
        payloads = self._pool.map(
            _process_worker_infer, [shard.to_json() for shard in shards], chunksize=1
        )
        return [InferenceResponse.from_json(payload) for payload in payloads]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None


#: Executor registry, keyed by the names ``ChipPool(executor=...)`` accepts.
EXECUTORS: dict[str, type[ShardExecutor]] = {
    InlineExecutor.name: InlineExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def make_executor(executor: str | ShardExecutor) -> ShardExecutor:
    """Resolve an executor name (or pass through an instance)."""
    if isinstance(executor, ShardExecutor):
        return executor
    if executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {sorted(EXECUTORS)} or a ShardExecutor "
            f"instance, got {executor!r}"
        )
    return EXECUTORS[executor]()
