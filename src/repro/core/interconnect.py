"""Global interconnect: the shared IO bus and the input memory.

NeuroCells share one global IO bus connected to an SRAM input memory (Fig. 3
of the paper).  Data transfer between layers mapped to different NeuroCells
is serialised through this bus and memory, while an input broadcast can reach
any number of tagged NeuroCells in a single bus cycle.  A zero-check on the
data read from the SRAM suppresses broadcasts of all-zero words
(Section 3.2).
"""

from __future__ import annotations

import numpy as np

from repro.energy.cacti import SRAMConfig, SRAMModel
from repro.utils.validation import check_positive

__all__ = ["InputMemory", "GlobalIOBus"]


class InputMemory:
    """The SRAM input memory on the global bus."""

    def __init__(self, capacity_bytes: int = 128 * 1024, word_bits: int = 64):
        self.model = SRAMModel(SRAMConfig(capacity_bytes=capacity_bytes, word_bits=word_bits))
        self.word_bits = word_bits
        self.reads = 0
        self.writes = 0
        self._store: dict[str, np.ndarray] = {}

    def store_vector(self, key: str, bits: np.ndarray) -> int:
        """Write a binary vector under ``key``; returns the word count written."""
        bits = np.asarray(bits).reshape(-1)
        words = int(np.ceil(bits.size / self.word_bits)) if bits.size else 0
        self._store[key] = (bits > 0).astype(np.uint8)
        self.writes += words
        return words

    def load_vector(self, key: str) -> tuple[np.ndarray, int]:
        """Read a stored vector; returns ``(bits, words_read)``."""
        if key not in self._store:
            raise KeyError(f"no vector stored under {key!r}")
        bits = self._store[key]
        words = int(np.ceil(bits.size / self.word_bits)) if bits.size else 0
        self.reads += words
        return bits, words

    @property
    def accesses(self) -> int:
        """Total word accesses."""
        return self.reads + self.writes

    def access_energy_j(self) -> float:
        """Energy per word access."""
        return self.model.access_energy_j()

    def leakage_power_w(self) -> float:
        """Standby leakage power."""
        return self.model.leakage_power_w()


class GlobalIOBus:
    """The shared bus between the input memory and the NeuroCells."""

    def __init__(self, word_bits: int = 64, zero_check_enabled: bool = True):
        check_positive("word_bits", word_bits)
        self.word_bits = word_bits
        self.zero_check_enabled = zero_check_enabled
        self.words_transferred = 0
        self.broadcasts = 0
        self.suppressed_words = 0
        self.zero_checks = 0

    def broadcast(self, bits: np.ndarray, target_neurocells: int) -> int:
        """Broadcast a binary vector to ``target_neurocells`` cells.

        Thanks to the NeuroCell tags a word reaches every target cell in one
        bus cycle, so the bus occupancy is the word count, independent of the
        number of targets.  Returns the number of words actually driven (zero
        words are suppressed when zero-check is enabled).
        """
        if target_neurocells <= 0:
            raise ValueError(f"target_neurocells must be positive, got {target_neurocells}")
        bits = np.asarray(bits).reshape(-1)
        n_words = int(np.ceil(bits.size / self.word_bits)) if bits.size else 0
        driven = 0
        for word_index in range(n_words):
            chunk = bits[word_index * self.word_bits : (word_index + 1) * self.word_bits]
            if self.zero_check_enabled:
                self.zero_checks += 1
                if not np.any(chunk):
                    self.suppressed_words += 1
                    continue
            driven += 1
        self.words_transferred += driven
        self.broadcasts += 1
        return driven

    def transfer_words(self, n_words: int) -> int:
        """Drive ``n_words`` point-to-point words (inter-NC traffic)."""
        if n_words < 0:
            raise ValueError(f"n_words must be >= 0, got {n_words}")
        self.words_transferred += int(n_words)
        return int(n_words)
