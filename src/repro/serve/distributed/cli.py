"""Serve-CLI: run, query and smoke-test the socket chip server.

Three subcommands, all runnable as ``python -m repro.serve.distributed``:

* ``serve`` — load a registered MLP benchmark, open a :class:`ChipPool` on
  it and serve inference on a TCP port (JSON lines or binary frames,
  negotiated per connection) until interrupted (or a client sends the
  ``shutdown`` op)::

      PYTHONPATH=src python -m repro.serve.distributed serve \\
          --workload mnist-mlp --port 7070 --jobs 2

* ``infer`` — connect to a running server, send one batch of the workload's
  test split and print the result::

      PYTHONPATH=src python -m repro.serve.distributed infer \\
          --endpoint 127.0.0.1:7070 --workload mnist-mlp --samples 8

* ``smoke`` — the CI end-to-end check: boot a server subprocess on a free
  port (logging to ``--server-log``, dumped on failure), wait for
  readiness, run a client inference twice (asserting the served results
  are deterministic and well-formed), drive two concurrent pipelined
  clients and assert their dynamically batched responses are identical to
  the serial ones, tear the server down — then boot a bounded-queue server
  in process and drive one deliberately-shed request, asserting the
  structured ``overloaded`` reply while every admitted request stays
  exact.  Exit code 0 means the whole loop works.

* ``fleet`` — the elastic-fleet smoke: boot an
  :class:`~repro.serve.fleet.ElasticFleet` (replica processes behind one
  gateway, autoscaled by the hysteresis controller), flood it with an
  open-loop burst while synthetic per-dispatch latency manufactures
  sustained backlog, assert every merged response is bit-identical to a
  serial single-session run (optionally that the controller scaled up),
  then drain the whole fleet to zero and assert every replica process
  exited cleanly::

      PYTHONPATH=src python -m repro.serve.distributed fleet \\
          --workload mnist-mlp --scale 0.15 --timesteps 4 \\
          --min-replicas 1 --max-replicas 3 --dispatch-delay 0.05 \\
          --flood-requests 32 --expect-scale-up
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

import numpy as np

from repro.serve.distributed.client import (
    PipelinedSession,
    RemoteServerError,
    RemoteSession,
    parse_endpoint,
)
from repro.serve.distributed.executors import EXECUTORS, SessionSpec
from repro.serve.distributed.server import (
    SHED_POLICIES,
    ChipServer,
    load_benchmark_workload,
)
from repro.serve.fleet import ElasticFleet, FleetPolicy, ReplicaSpec
from repro.serve.distributed.gateway import GatewayEndpoint, InferenceGateway
from repro.serve.pool import ChipPool
from repro.serve.retry import RetryBudget
from repro.serve.schema import ERROR_OVERLOADED, InferenceRequest
from repro.serve.session import ChipSession
from repro.utils.units import format_energy
from repro.workloads import list_benchmarks

__all__ = ["main"]

MLP_BENCHMARKS = sorted(spec.name for spec in list_benchmarks(connectivity="MLP"))


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        default="mnist-mlp",
        choices=MLP_BENCHMARKS,
        help="registered MLP benchmark to serve",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="network width scale factor"
    )
    parser.add_argument("--seed", type=int, default=7, help="workload/session seed")
    parser.add_argument(
        "--timesteps", type=int, default=16, help="rate-coding window per sample"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.distributed",
        description="Socket chip server, client and smoke check",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="serve a workload on a TCP port")
    _add_workload_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7070, help="bind port (0 picks a free port)"
    )
    serve.add_argument(
        "--jobs", type=int, default=2, help="pool worker count (>= 1)"
    )
    serve.add_argument(
        "--executor",
        default="thread",
        choices=sorted(EXECUTORS),
        help="pool shard executor",
    )
    serve.add_argument(
        "--encoder",
        default="poisson",
        choices=["poisson", "deterministic"],
        help="input spike encoder",
    )
    serve.add_argument(
        "--backend",
        default="vectorized",
        choices=["structural", "vectorized"],
        help="chip execution backend",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=8,
        help="most queued compatible requests one dynamic batch may coalesce",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=0,
        help="most infer requests that may wait for dispatch at once "
        "(0 = unbounded); the load-shedding bound",
    )
    serve.add_argument(
        "--shed-policy",
        default="reject",
        choices=sorted(SHED_POLICIES),
        help="what a full queue does to new requests: reject with a "
        "structured 'overloaded' error, or block admission until space frees",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve Prometheus text-format metrics over HTTP on this "
        "port (0 picks a free port; omit to disable the endpoint)",
    )

    infer = sub.add_parser("infer", help="run one client inference")
    _add_workload_arguments(infer)
    infer.add_argument(
        "--endpoint", required=True, metavar="HOST:PORT", help="server address"
    )
    infer.add_argument(
        "--samples", type=int, default=8, help="test samples to send"
    )
    infer.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-request socket timeout in seconds (size for the batch)",
    )
    infer.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request dispatch deadline enforced by the server "
        "(a structured 'deadline_exceeded' error once it passes)",
    )
    infer.add_argument(
        "--wire",
        default="auto",
        choices=["auto", "json"],
        help="wire carrier: auto negotiates binary frames with a v3 server "
        "(falling back to JSON against older ones), json forces the JSON "
        "carrier",
    )
    infer.add_argument(
        "--retry-attempts",
        type=int,
        default=None,
        metavar="N",
        help="attach a retry budget of N total attempts to the request "
        "(reconnects back off with jitter and stop with a structured "
        "budget-exhausted error; omit for the legacy single-retry path)",
    )

    smoke = sub.add_parser(
        "smoke", help="boot a server subprocess, run a client inference, tear down"
    )
    _add_workload_arguments(smoke)
    smoke.add_argument("--samples", type=int, default=4, help="test samples to send")
    smoke.add_argument("--jobs", type=int, default=2, help="server pool workers")
    smoke.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-request socket timeout in seconds",
    )
    smoke.add_argument(
        "--boot-timeout",
        type=float,
        default=120.0,
        help="seconds to wait for the server to accept connections",
    )
    smoke.add_argument(
        "--server-log",
        default=None,
        metavar="PATH",
        help="file the server subprocess logs to (default: a temp file); "
        "smoke dumps it when the check fails",
    )
    smoke.add_argument(
        "--wire",
        default="auto",
        choices=["auto", "json"],
        help="client wire carrier for the smoke drive: auto negotiates "
        "binary frames, json forces the JSON fallback path",
    )
    smoke.add_argument(
        "--hedge-after",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="straggler threshold for the hedging drive: a gated endpoint "
        "holds one shard past this long, the gateway must duplicate it to "
        "the fast sibling and win there (0 skips the hedging drive)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="boot an autoscaled replica fleet, flood it, drain it to zero",
    )
    _add_workload_arguments(fleet)
    fleet.add_argument(
        "--min-replicas", type=int, default=1, help="fleet floor (policy bound)"
    )
    fleet.add_argument(
        "--max-replicas", type=int, default=3, help="fleet ceiling (policy bound)"
    )
    fleet.add_argument(
        "--interval",
        type=float,
        default=0.1,
        help="controller sampling interval in seconds",
    )
    fleet.add_argument(
        "--target-backlog",
        type=float,
        default=1.0,
        help="per-replica EWMA pressure that triggers a scale-up",
    )
    fleet.add_argument(
        "--idle-backlog",
        type=float,
        default=0.25,
        help="per-replica EWMA pressure under which the fleet is idle",
    )
    fleet.add_argument(
        "--up-stable",
        type=float,
        default=0.2,
        help="seconds the pressure must stay above target before scaling up",
    )
    fleet.add_argument(
        "--down-stable",
        type=float,
        default=5.0,
        help="seconds the fleet must stay idle before scaling down",
    )
    fleet.add_argument(
        "--cooldown",
        type=float,
        default=0.5,
        help="minimum seconds between any two scale actions",
    )
    fleet.add_argument(
        "--dispatch-delay",
        type=float,
        default=0.05,
        help="synthetic per-dispatch latency injected in every replica "
        "(manufactures machine-independent backlog; results are unchanged)",
    )
    fleet.add_argument(
        "--flood-requests",
        type=int,
        default=32,
        help="open-loop burst size (requests submitted all at once)",
    )
    fleet.add_argument(
        "--flood-samples",
        type=int,
        default=4,
        help="samples per flood request",
    )
    fleet.add_argument(
        "--expect-scale-up",
        action="store_true",
        help="fail unless the controller scaled up during the flood",
    )
    fleet.add_argument(
        "--run-for",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="idle observation window after the flood (lets a small "
        "--down-stable demonstrate scale-down before teardown)",
    )
    fleet.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="per-future wait bound for flood responses, in seconds",
    )
    fleet.add_argument(
        "--boot-timeout",
        type=float,
        default=120.0,
        help="seconds one replica may take to boot and answer its health check",
    )
    fleet.add_argument(
        "--log-dir",
        default=None,
        metavar="DIR",
        help="directory replica processes log to ({replica_id}.log); "
        "CI dumps these on failure",
    )
    fleet.add_argument(
        "--hedge-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="hedge a shard stuck on one replica past this many seconds "
        "onto the least-loaded sibling (first result wins, the loser is "
        "cancelled over the wire; omit to disable hedging)",
    )
    fleet.add_argument(
        "--status-json",
        default=None,
        metavar="PATH",
        help="also write the final fleet status dump to this file",
    )
    return parser


def _validate(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    if getattr(args, "jobs", 1) < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if getattr(args, "samples", 1) < 1:
        parser.error(f"--samples must be >= 1, got {args.samples}")
    if args.timesteps < 1:
        parser.error(f"--timesteps must be >= 1, got {args.timesteps}")
    if args.scale <= 0:
        parser.error(f"--scale must be > 0, got {args.scale}")
    if getattr(args, "max_batch", 1) < 1:
        parser.error(f"--max-batch must be >= 1, got {args.max_batch}")
    if getattr(args, "max_queue", 0) < 0:
        parser.error(f"--max-queue must be >= 0, got {args.max_queue}")
    if getattr(args, "timeout", 1.0) <= 0:
        parser.error(f"--timeout must be > 0 seconds, got {args.timeout}")
    if getattr(args, "deadline", None) is not None and args.deadline <= 0:
        parser.error(f"--deadline must be > 0 seconds, got {args.deadline}")
    if getattr(args, "retry_attempts", None) is not None and args.retry_attempts < 1:
        parser.error(f"--retry-attempts must be >= 1, got {args.retry_attempts}")
    if args.command == "smoke" and args.hedge_after < 0:
        parser.error(f"--hedge-after must be >= 0 seconds, got {args.hedge_after}")
    if getattr(args, "endpoint", None) is not None:
        try:
            parse_endpoint(args.endpoint)
        except ValueError as exc:
            parser.error(str(exc))
    if args.command == "fleet":
        if args.flood_requests < 1:
            parser.error(f"--flood-requests must be >= 1, got {args.flood_requests}")
        if args.flood_samples < 1:
            parser.error(f"--flood-samples must be >= 1, got {args.flood_samples}")
        if args.dispatch_delay < 0:
            parser.error(f"--dispatch-delay must be >= 0, got {args.dispatch_delay}")
        if args.run_for < 0:
            parser.error(f"--run-for must be >= 0, got {args.run_for}")
        if args.hedge_after is not None and args.hedge_after <= 0:
            parser.error(
                f"--hedge-after must be > 0 seconds, got {args.hedge_after}"
            )
        try:
            _fleet_policy(args)
        except ValueError as exc:
            parser.error(str(exc))


# -- subcommands --------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    workload = load_benchmark_workload(args.workload, scale=args.scale, seed=args.seed)
    with ChipPool(
        workload.snn,
        jobs=args.jobs,
        timesteps=args.timesteps,
        encoder=args.encoder,
        backend=args.backend,
        seed=args.seed,
        executor=args.executor,
    ) as pool:
        with ChipServer(
            pool,
            host=args.host,
            port=args.port,
            workload=args.workload,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            shed_policy=args.shed_policy,
            metrics_port=args.metrics_port,
        ) as server:
            host, port = server.address
            print(
                f"chip-server: {args.workload} ({args.backend}, jobs={args.jobs}, "
                f"executor={args.executor}, max_batch={args.max_batch}, "
                f"max_queue={args.max_queue or 'unbounded'}, "
                f"shed_policy={args.shed_policy}) "
                f"listening on {host}:{port}",
                flush=True,
            )
            if server.metrics_address is not None:
                metrics_host, metrics_port = server.metrics_address
                print(
                    f"chip-server: Prometheus metrics on "
                    f"http://{metrics_host}:{metrics_port}/metrics",
                    flush=True,
                )
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
    print("chip-server: stopped", flush=True)
    return 0


def _client_inference(
    remote: RemoteSession, args: argparse.Namespace
) -> tuple[InferenceRequest, object]:
    workload = load_benchmark_workload(args.workload, scale=args.scale, seed=args.seed)
    n = min(args.samples, len(workload.test_inputs))
    request = InferenceRequest(
        inputs=workload.test_inputs[:n], labels=workload.test_labels[:n]
    )
    retry_attempts = getattr(args, "retry_attempts", None)
    if retry_attempts is not None:
        request = request.with_retry_budget(RetryBudget(retry_attempts))
    deadline_s = getattr(args, "deadline", None)
    return request, remote.infer(request, deadline_s=deadline_s)


def _cmd_infer(args: argparse.Namespace) -> int:
    with RemoteSession.connect(
        args.endpoint, timeout=args.timeout, wire=args.wire
    ) as remote:
        info = remote.info()
        print(f"server    : {info}")
        print(
            f"wire      : negotiated protocol v{remote.wire_version} "
            f"({'binary frames' if remote.wire_version >= 3 else 'JSON lines'})"
        )
        request, response = _client_inference(remote, args)
        print(f"predictions: {response.predictions.tolist()}")
        print(
            f"result    : {response.batch_size} samples, "
            f"accuracy {response.accuracy:.2%}, "
            f"energy {format_energy(response.energy.total_j)}, "
            f"jobs {response.jobs}"
        )
    return 0


def _wait_for_listening_line(
    proc: subprocess.Popen, log_path: str, boot_timeout: float
) -> tuple[str, int]:
    """Poll the server's log file for the banner to learn the bound address.

    The server binds ``--port 0`` (the kernel picks a free port — no
    probe-then-rebind race) and prints ``listening on HOST:PORT`` into its
    log file; logging to a file (rather than a pipe) means the full server
    output survives for the failure dump and the server can never block on
    a full pipe nobody drains.
    """
    deadline = time.monotonic() + boot_timeout
    while True:
        with open(log_path, encoding="utf-8", errors="replace") as log:
            match = re.search(r"listening on (\S+):(\d+)", log.read())
        if match:
            print(f"smoke: server {match.group(0)}", flush=True)
            return match.group(1), int(match.group(2))
        if proc.poll() is not None:
            raise RuntimeError(
                f"server subprocess exited with {proc.returncode} before "
                f"listening"
            )
        if time.monotonic() >= deadline:
            raise RuntimeError(
                f"server did not print its listening banner within "
                f"{boot_timeout:.0f}s"
            )
        time.sleep(0.05)


def _dump_server_log(log_path: str) -> None:
    """Echo the server subprocess log (the smoke failure post-mortem)."""
    print(f"smoke: ---- server log ({log_path}) ----", flush=True)
    try:
        with open(log_path, encoding="utf-8", errors="replace") as log:
            sys.stdout.write(log.read())
    except OSError as exc:
        print(f"smoke: could not read server log: {exc}")
    print("smoke: ---- end of server log ----", flush=True)


def _connect_to_booting_server(
    proc: subprocess.Popen,
    address: tuple[str, int],
    boot_timeout: float,
    timeout: float,
    wire: str = "auto",
) -> RemoteSession:
    """Retry-connect while the server boots, failing fast if it dies."""
    deadline = time.monotonic() + boot_timeout
    while True:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server subprocess exited with {proc.returncode} before "
                f"accepting connections"
            )
        try:
            return RemoteSession.connect(
                address,
                timeout=timeout,
                wait=min(0.5, max(0.0, deadline - time.monotonic())),
                wire=wire,
            )
        except OSError:
            if time.monotonic() >= deadline:
                raise


def _smoke_pipelined_clients(
    address: tuple[str, int],
    remote: RemoteSession,
    request: InferenceRequest,
    timeout: float,
    clients: int = 2,
    rounds: int = 3,
    wire: str = "auto",
) -> None:
    """Two concurrent pipelined clients must match the serial answers exactly.

    Each client keeps ``rounds`` tagged requests in flight at once, so the
    server's dispatcher sees a full queue and dynamically batches across the
    connections; dynamic batching must change throughput, never numbers.
    """
    shifted = InferenceRequest(
        inputs=request.batch,
        labels=request.labels,
        sample_offset=request.batch_size,
    )
    serial = {0: remote.infer(request), 1: remote.infer(shifted)}
    sessions = [
        PipelinedSession.connect(address, connections=1, timeout=timeout, wire=wire)
        for _ in range(clients)
    ]
    try:
        futures = [
            (index % 2, session.submit(request if index % 2 == 0 else shifted))
            for index, session in enumerate(sessions * rounds)
        ]
        for which, future in futures:
            response = future.result(timeout=timeout)
            expected = serial[which]
            assert np.array_equal(response.predictions, expected.predictions), (
                "pipelined response predictions diverged from the serial run"
            )
            assert np.array_equal(response.spike_counts, expected.spike_counts), (
                "pipelined response spike counts diverged from the serial run"
            )
            got, want = response.counters.as_dict(), expected.counters.as_dict()
            for name, value in want.items():
                if name == "crossbar_device_energy_j":
                    # Float accumulation order may differ between a coalesced
                    # and a serial dispatch; everything else is integer-exact.
                    assert abs(got[name] - value) <= 1e-9 * max(abs(value), 1e-30)
                else:
                    assert got[name] == value, f"counter {name} diverged: " \
                        f"{got[name]} != {value}"
            assert abs(response.energy.total_j - expected.energy.total_j) <= (
                1e-9 * expected.energy.total_j
            ), "pipelined response energy diverged from the serial run"
    finally:
        for session in sessions:
            session.close()
    stats = remote.info(refresh=True).get("stats", {})
    print(
        f"smoke: {len(futures)} pipelined requests over {clients} clients ok "
        f"(server stats: {stats})",
        flush=True,
    )


class _GatedTarget:
    """Target that holds its first dispatch until released.

    The shed drive needs the server's one work thread deterministically
    busy while follow-up requests queue — real chip latency is too
    machine-dependent to rely on.
    """

    def __init__(self, session: ChipSession):
        self.session = session
        self.entered = threading.Event()
        self.release = threading.Event()

    @property
    def backend(self) -> str:
        return self.session.backend

    @property
    def timesteps(self) -> int:
        return self.session.timesteps

    def infer(self, request: InferenceRequest):
        self.entered.set()
        if not self.release.wait(timeout=120):
            raise RuntimeError("shed-drive gate never released")
        return self.session.infer(request)


#: Metric families the smoke requires after one served inference: the
#: request counter and the queue-wait phase histogram prove the whole
#: observability plane (registry -> op -> exposition) is live, and the
#: plan-cache counters prove the sessions' fused-kernel plan reuse is.
_SMOKE_REQUIRED_SERIES = (
    "repro_server_requests_total",
    "repro_server_batches_total",
    "repro_request_queue_wait_seconds_bucket",
    "repro_session_plan_cache_hits_total",
    "repro_session_plan_cache_misses_total",
)


def _smoke_metrics(remote: RemoteSession) -> None:
    """Scrape the metrics op + Prometheus endpoint; both must agree.

    The server was booted with ``--metrics-port 0``, so ``info`` carries
    the HTTP exposition endpoint.  After the inferences the smoke already
    ran, the core serving series must be present with non-zero counts, and
    the wire op's rendered text must equal an HTTP scrape of the same
    snapshot (they are the same registry by construction).
    """
    info = remote.info(refresh=True)
    endpoint = info.get("metrics_endpoint")
    assert endpoint, f"server info lacks the metrics endpoint: {info}"
    payload = remote.metrics()
    assert payload["schema_version"] == 1, f"unexpected metrics schema: {payload}"
    text = payload["text"]
    for series in _SMOKE_REQUIRED_SERIES:
        assert series in text, f"metrics op lacks the {series} series"
    families = payload["snapshot"]["families"]
    served = families["repro_server_requests_total"]["series"][0]["value"]
    assert served > 0, f"request counter never moved: {served}"
    # The smoke served the same request shape repeatedly, so every session
    # must have built at least one kernel plan and reused at least one.
    plan_misses = families["repro_session_plan_cache_misses_total"]["series"][0][
        "value"
    ]
    plan_hits = families["repro_session_plan_cache_hits_total"]["series"][0]["value"]
    assert plan_misses >= 1, f"no kernel plan was ever built: {plan_misses}"
    assert plan_hits >= 1, (
        f"repeated request shapes never reused a kernel plan: {plan_hits}"
    )
    scraped = (
        urllib.request.urlopen(f"http://{endpoint}/metrics", timeout=30)
        .read()
        .decode("utf-8")
    )
    for series in _SMOKE_REQUIRED_SERIES:
        assert series in scraped, f"Prometheus endpoint lacks {series}"
    # Counters may advance between the two reads; re-render via the op and
    # compare against a fresh scrape taken while the server is idle.
    fresh = remote.metrics()
    scraped = (
        urllib.request.urlopen(f"http://{endpoint}/metrics", timeout=30)
        .read()
        .decode("utf-8")
    )
    assert fresh["text"] == scraped, (
        "metrics op and Prometheus endpoint render different snapshots"
    )
    print(
        f"smoke: metrics op == http://{endpoint}/metrics "
        f"({served:.0f} requests counted, "
        f"{len(families)} metric families)",
        flush=True,
    )


def _smoke_load_shedding(args: argparse.Namespace) -> None:
    """Drive one deliberately-shed request and assert the structured reply.

    An in-process server (real socket, real wire protocol) with
    ``max_queue=1`` and a gated target: the first request occupies the work
    thread, the second fills the queue, so the third **must** come back as
    a structured ``overloaded`` error while both admitted requests return
    the exact serial answers once the gate opens.
    """
    workload = load_benchmark_workload(args.workload, scale=args.scale, seed=args.seed)

    def session() -> ChipSession:
        return ChipSession(
            workload.snn, timesteps=args.timesteps, encoder="poisson", seed=args.seed
        )

    n = min(args.samples, len(workload.test_inputs))
    head = InferenceRequest(inputs=workload.test_inputs[:n])
    queued = InferenceRequest(inputs=workload.test_inputs[:n], sample_offset=n)
    serial = session()
    expected_head, expected_queued = serial.infer(head), serial.infer(queued)
    gate = _GatedTarget(session())
    wire = getattr(args, "wire", "auto")
    with ChipServer(
        gate, port=0, workload=args.workload, max_queue=1
    ).start() as server:
        with PipelinedSession.connect(
            server.address, connections=1, timeout=args.timeout, wire=wire
        ) as client:
            info = client.info()
            print(
                f"smoke: shed-drive server protocol v{info['protocol_version']}, "
                f"started at {info['started_at']:.0f} "
                f"(uptime {info['uptime_s']:.2f}s), max_queue={info['max_queue']}, "
                f"shed_policy={info['shed_policy']}",
                flush=True,
            )
            future_head = client.submit(head)
            assert gate.entered.wait(timeout=args.timeout), (
                "first request never reached the work thread"
            )
            future_queued = client.submit(queued)
            deadline = time.monotonic() + args.timeout
            while client.info(refresh=True).get("queue_depth", 0) < 1:
                assert time.monotonic() < deadline, (
                    "second request never reached the server queue"
                )
                time.sleep(0.01)
            # Queue full (bound 1), worker busy: this one must be shed.
            try:
                client.submit(head).result(timeout=args.timeout)
                raise AssertionError("third request was not shed by the full queue")
            except RemoteServerError as exc:
                assert exc.code == ERROR_OVERLOADED, (
                    f"expected a structured 'overloaded' reply, got "
                    f"code={exc.code!r} ({exc})"
                )
            gate.release.set()
            got_head = future_head.result(timeout=args.timeout)
            got_queued = future_queued.result(timeout=args.timeout)
            assert np.array_equal(got_head.predictions, expected_head.predictions), (
                "admitted head request diverged from the serial run"
            )
            assert np.array_equal(
                got_queued.predictions, expected_queued.predictions
            ), "admitted queued request diverged from the serial run"
            final = client.info(refresh=True)
            assert final["stats"]["shed"] == 1, f"unexpected shed stats: {final}"
            assert final["queue_depth"] == 0, f"queue not drained: {final}"
    print(
        "smoke: load shedding ok (1 shed with structured 'overloaded', "
        "2 admitted exact)",
        flush=True,
    )


def _smoke_hedging(args: argparse.Namespace) -> None:
    """Drive one deliberately-hedged shard and assert the exact, faster win.

    An in-process gateway over two endpoints: a gated straggler (holds its
    shard until released) and a fast sibling.  The straggler's shard must
    trip the ``--hedge-after`` threshold, get duplicated onto the sibling
    and win there — while the merged response stays bit-identical to the
    serial single-session run.  The gate opens only *after* the merged
    response landed, so the win can only have come from the hedge.
    """
    workload = load_benchmark_workload(args.workload, scale=args.scale, seed=args.seed)

    def session() -> ChipSession:
        return ChipSession(
            workload.snn, timesteps=args.timesteps, encoder="poisson", seed=args.seed
        )

    n = min(args.samples, len(workload.test_inputs))
    request = InferenceRequest(inputs=workload.test_inputs[:n])
    expected = session().infer(request)
    gate = _GatedTarget(session())
    gateway = InferenceGateway(
        [
            GatewayEndpoint(target=gate, name="straggler"),
            GatewayEndpoint(target=session(), name="sibling"),
        ],
        name="smoke-hedge",
        adaptive=False,
        load_poll_s=0.0,
        hedge_after_s=args.hedge_after,
    )
    try:
        response = gateway.submit(request).result(timeout=args.timeout)
        tail = gateway.tail_stats()
    finally:
        # The straggler's worker is still blocked on the gate; open it
        # before close() so the dispatch pool can drain and shut down.
        gate.release.set()
        gateway.close()
    assert np.array_equal(response.predictions, expected.predictions), (
        "hedged response predictions diverged from the serial run"
    )
    assert np.array_equal(response.spike_counts, expected.spike_counts), (
        "hedged response spike counts diverged from the serial run"
    )
    assert abs(response.energy.total_j - expected.energy.total_j) <= (
        1e-9 * expected.energy.total_j
    ), "hedged response energy diverged from the serial run"
    assert tail["hedges_issued"] >= 1, f"no hedge was issued: {tail}"
    assert tail["hedge_wins"] >= 1, f"the hedge never won: {tail}"
    hedged = [
        shard
        for shard in response.metadata["shards"]
        if shard.get("hedged_from") == "straggler"
    ]
    assert hedged and all(s["endpoint"] == "sibling" for s in hedged), (
        f"response metadata records no straggler->sibling hedge: "
        f"{response.metadata['shards']}"
    )
    print(
        f"smoke: hedging ok (straggler held past {args.hedge_after:.3f}s, "
        f"{tail['hedges_issued']} hedge(s) issued, "
        f"{tail['hedge_wins']} won on the sibling, merged response exact)",
        flush=True,
    )


def _cmd_smoke(args: argparse.Namespace) -> int:
    command = [
        sys.executable,
        "-m",
        "repro.serve.distributed.cli",
        "serve",
        "--workload", args.workload,
        "--scale", str(args.scale),
        "--seed", str(args.seed),
        "--timesteps", str(args.timesteps),
        "--jobs", str(args.jobs),
        "--host", "127.0.0.1",
        "--port", "0",
        "--metrics-port", "0",
    ]
    log_path = args.server_log
    if log_path is None:
        fd, log_path = tempfile.mkstemp(prefix="chip-server-", suffix=".log")
        os.close(fd)
    print(f"smoke: booting {' '.join(command)} (server log: {log_path})", flush=True)
    with open(log_path, "w", encoding="utf-8") as log_file:
        proc = subprocess.Popen(
            command, stdout=log_file, stderr=subprocess.STDOUT, text=True
        )
        try:
            address = _wait_for_listening_line(proc, log_path, args.boot_timeout)
            with _connect_to_booting_server(
                proc, address, args.boot_timeout, args.timeout, args.wire
            ) as remote:
                assert remote.ping(), "server did not answer ping"
                expected_wire = 3 if args.wire == "auto" else 2
                assert remote.wire_version == expected_wire, (
                    f"--wire {args.wire} should negotiate protocol "
                    f"v{expected_wire}, got v{remote.wire_version}"
                )
                info = remote.info()
                assert info["workload"] == args.workload, f"wrong workload: {info}"
                assert info["replica_id"], f"server info lacks a replica id: {info}"
                assert info["state"] == "serving", f"unexpected server state: {info}"
                assert isinstance(info["pid"], int) and info["pid"] > 0, (
                    f"server info carries no usable pid: {info}"
                )
                print(f"smoke: server info {info}", flush=True)
                print(
                    f"smoke: server identity replica_id={info['replica_id']} "
                    f"pid={info['pid']} state={info['state']}",
                    flush=True,
                )
                print(
                    f"smoke: server protocol v{info['protocol_version']}, "
                    f"negotiated wire v{remote.wire_version} "
                    f"({'binary frames' if remote.wire_version >= 3 else 'JSON lines'}), "
                    f"started at {info['started_at']:.0f} "
                    f"(uptime {info['uptime_s']:.2f}s)",
                    flush=True,
                )
                request, first = _client_inference(remote, args)
                again = remote.infer(request)
                assert first.batch_size == request.batch_size
                assert len(first.predictions) == request.batch_size
                assert first.energy.total_j > 0, "served response carries no energy"
                assert np.array_equal(first.predictions, again.predictions), (
                    "served inference is not deterministic"
                )
                assert first.counters.as_dict() == again.counters.as_dict()
                print(
                    f"smoke: {first.batch_size} samples, "
                    f"accuracy {first.accuracy:.2%}, "
                    f"energy {format_energy(first.energy.total_j)}, "
                    f"deterministic round trip ok",
                    flush=True,
                )
                _smoke_pipelined_clients(
                    address, remote, request, args.timeout, wire=args.wire
                )
                _smoke_metrics(remote)
                remote.shutdown_server()
            returncode = proc.wait(timeout=30)
            assert returncode == 0, f"server exited with {returncode}"
        except BaseException:
            # The server log is the post-mortem: dump it before the failure
            # propagates (CI keeps only the smoke process output).
            _dump_server_log(log_path)
            raise
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
    _smoke_load_shedding(args)
    if args.hedge_after > 0:
        _smoke_hedging(args)
    print("smoke: OK", flush=True)
    return 0


def _fleet_policy(args: argparse.Namespace) -> FleetPolicy:
    """Translate fleet CLI flags into a validated :class:`FleetPolicy`."""
    return FleetPolicy(
        min_replicas=args.min_replicas,
        max_replicas=args.max_replicas,
        interval_s=args.interval,
        target_backlog=args.target_backlog,
        scale_up_stable_s=args.up_stable,
        idle_backlog=args.idle_backlog,
        scale_down_stable_s=args.down_stable,
        cooldown_s=args.cooldown,
    )


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Elastic-fleet smoke: boot, flood, verify exactness, drain to zero."""
    workload = load_benchmark_workload(args.workload, scale=args.scale, seed=args.seed)
    serial = ChipSession(
        workload.snn, timesteps=args.timesteps, encoder="poisson", seed=args.seed
    )
    assert serial.encoder_state is not None
    spec = ReplicaSpec(
        session_spec=SessionSpec(
            snn=workload.snn,
            config=serial.config,
            library=None,
            timesteps=args.timesteps,
            backend="vectorized",
            seed=args.seed,
            encoder_state=serial.encoder_state,
        ),
        workload=args.workload,
        dispatch_delay_s=args.dispatch_delay,
        log_dir=args.log_dir,
    )
    policy = _fleet_policy(args)

    # The flood: an open-loop burst of shard-offset-tagged requests.  The
    # serial session (no synthetic delay) computes the ground truth — every
    # fleet answer must match it bit-for-bit regardless of placement.
    n = min(args.flood_samples, len(workload.test_inputs))
    requests = []
    for index in range(args.flood_requests):
        start = (index * n) % max(1, len(workload.test_inputs) - n + 1)
        requests.append(
            InferenceRequest(
                inputs=workload.test_inputs[start : start + n], sample_offset=start
            )
        )
    expected = [serial.infer(request) for request in requests]

    print(
        f"fleet: booting {policy.min_replicas} replica(s) of {args.workload} "
        f"(max {policy.max_replicas}, dispatch delay {args.dispatch_delay:.3f}s)",
        flush=True,
    )
    with ElasticFleet(
        spec,
        policy=policy,
        boot_timeout_s=args.boot_timeout,
        hedge_after_s=args.hedge_after,
    ) as fleet:
        flood_started = time.monotonic()
        futures = [fleet.submit(request) for request in requests]
        print(
            f"fleet: flooded {len(futures)} requests "
            f"({len(futures) * n} samples) open-loop",
            flush=True,
        )
        for request, future, want in zip(requests, futures, expected):
            got = future.result(timeout=args.timeout)
            assert np.array_equal(got.predictions, want.predictions), (
                f"fleet response at offset {request.sample_offset} diverged "
                f"from the serial run"
            )
            assert np.array_equal(got.spike_counts, want.spike_counts), (
                f"fleet spike counts at offset {request.sample_offset} "
                f"diverged from the serial run"
            )
        flood_s = time.monotonic() - flood_started
        if args.run_for > 0:
            print(
                f"fleet: idling {args.run_for:.1f}s (scale-down window)",
                flush=True,
            )
            time.sleep(args.run_for)
        status = fleet.fleet_status()
        actions = status["controller"]["actions"]
        events = [
            event
            for event in status["controller"]["events"]
            if event["event"] in ("scale_up", "scale_down")
        ]
        print(
            f"fleet: {len(requests)} exact responses in {flood_s:.2f}s; "
            f"replicas now {len(status['replicas'])}, actions {actions}",
            flush=True,
        )
        for event in events:
            print(
                f"fleet: event {event['event']} "
                f"{event['replicas_before']}->{event['replicas_after']} "
                f"(pressure {event['pressure']:.2f})",
                flush=True,
            )
        if args.expect_scale_up:
            assert actions["scale_up"] >= 1, (
                f"controller never scaled up under the flood: {status}"
            )
        replicas = fleet.manager.replicas
        dump = json.dumps(status, indent=2, sort_keys=True, default=str)
        if args.status_json:
            with open(args.status_json, "w", encoding="utf-8") as handle:
                handle.write(dump + "\n")
        print(f"fleet: status {dump}", flush=True)
    # close() drained every replica; the drain contract says each process
    # answered its queue and exited cleanly.
    for replica in replicas:
        assert not replica.alive, f"replica {replica.replica_id} still alive"
        assert replica.exitcode == 0, (
            f"replica {replica.replica_id} exited with {replica.exitcode}"
        )
    print(
        f"fleet: OK ({len(replicas)} replica(s) drained to zero, all exit 0)",
        flush=True,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    _validate(parser, args)
    commands = {
        "serve": _cmd_serve,
        "infer": _cmd_infer,
        "smoke": _cmd_smoke,
        "fleet": _cmd_fleet,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
