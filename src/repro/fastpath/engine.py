"""Vectorized batch execution of a compiled RESPARC chip.

The engine advances the whole batch through the layer pipeline one timestep
at a time.  The default path is **layer-fused**: each layer's tiles were
packed at compile time into one stacked conductance tensor
(:class:`~repro.fastpath.compiler.FusedLayer`), so a layer evaluates as a
single ``(tiles, batch, rows) @ (tiles, rows, cols)`` product — the same
per-slice ``dgemm`` the per-tile loop issued — with partial sums scattered
into the layer drive **in placement order**.  All work buffers live in a
:class:`~repro.fastpath.plan.KernelPlan` scratch arena written with
``out=``/in-place operations, so steady-state timesteps allocate nothing;
callers that repeat an execution shape pass a cached plan
(:class:`~repro.fastpath.plan.PlanCache`) and skip even the first-run
allocation cost.

Data-independent event bookkeeping is hoisted out of the timestep loop:
the input train's IO-bus words are counted in one vectorized pass over the
whole ``(timesteps, batch, n_in)`` array, per-layer packet/destination
constants are pretabulated, and the per-tile ``read_cost_j`` lookups run
as one batched gather per layer.

Arithmetic parity with the structural chip is deliberate, not approximate:

* tiles are evaluated in the structural placement order and their partial
  sums are accumulated into the layer drive in that same order,
* each tile's input block is zero-padded to the full crossbar geometry and
  multiplied against the full differential-conductance matrix, mirroring
  :meth:`repro.crossbar.mca.CrossbarArray.evaluate` operation for operation,
* the IF neuron update replays :class:`repro.snn.neuron.IFNeuronPool`'s
  elementwise code path (subtract reset, no leak/refractory — the only
  regime compiled programs use), batched over samples.

Predictions and spike counts therefore match the structural backend exactly;
energy totals agree to floating-point accumulation order (<< 1e-9 relative).
:meth:`VectorizedChipEngine.run_batch_reference` keeps the original
``timesteps × layers × tiles`` triple loop alive as the parity oracle the
property suite checks the fused kernel against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.stats import EventCounters
from repro.fastpath.compiler import CompiledChip, CompiledLayer, compile_chip
from repro.fastpath.plan import KernelPlan
from repro.snn.neuron import IFNeuronParameters, IFNeuronPool

__all__ = ["BatchRunOutcome", "VectorizedChipEngine"]


@dataclass(frozen=True)
class BatchRunOutcome:
    """Raw outcome of one vectorized batch run (pre energy conversion)."""

    spike_counts: np.ndarray
    predictions: np.ndarray
    counters: EventCounters
    timesteps: int


def _nonzero_chunk_counts(bits: np.ndarray, chunk_bits: int) -> np.ndarray:
    """Per-sample count of ``chunk_bits``-wide chunks containing any spike.

    ``bits`` has shape ``(batch, n)``; chunks are zero-padded at the tail,
    matching :meth:`SpikePacket.from_array` / the bus word slicing.
    """
    batch, n = bits.shape
    n_chunks = int(math.ceil(n / chunk_bits)) if n else 0
    if n_chunks == 0:
        return np.zeros(batch, dtype=np.int64)
    padded = np.zeros((batch, n_chunks * chunk_bits), dtype=bool)
    padded[:, :n] = bits > 0
    return padded.reshape(batch, n_chunks, chunk_bits).any(axis=2).sum(axis=1)


class VectorizedChipEngine:
    """Executes an entire encoded batch through a compiled chip."""

    def __init__(self, program: CompiledChip):
        self.program = program

    @classmethod
    def from_chip(cls, chip) -> "VectorizedChipEngine":
        """Compile a structural chip and wrap it in an engine."""
        return cls(compile_chip(chip))

    def _validate_train(self, spike_train: np.ndarray) -> np.ndarray:
        program = self.program
        train = np.asarray(spike_train, dtype=float)
        if train.ndim != 3:
            raise ValueError(
                f"spike_train must have shape (timesteps, batch, n_in), got {train.shape}"
            )
        if train.shape[2] != program.input_dim:
            raise ValueError(
                f"layer {program.layers[0].layer_index} expects {program.input_dim} "
                f"inputs, got {train.shape[2]}"
            )
        return train

    # -- fused execution ----------------------------------------------------------

    def run_batch(
        self, spike_train: np.ndarray, plan: KernelPlan | None = None
    ) -> BatchRunOutcome:
        """Run an encoded spike train of shape ``(timesteps, batch, n_in)``.

        ``plan`` supplies the preallocated scratch arena for this execution
        shape; omitted, a fresh one is built (and discarded).  Returns
        per-sample output spike counts and predictions plus the aggregate
        :class:`EventCounters` of the run (the same totals the structural
        chip's components would have accumulated).
        """
        program = self.program
        train = self._validate_train(spike_train)
        timesteps, batch, n_in = train.shape

        if plan is None:
            plan = KernelPlan(program, batch, timesteps)
        else:
            plan.check(program, batch, timesteps)
        plan.reset()

        voltage = program.read_voltage_v
        lsb = program.current_lsb_a
        event_driven = program.event_driven
        layers = program.layers
        arenas = plan.layers
        last_index = len(layers) - 1

        crossbar_energy = 0.0
        switch_hops = 0
        suppressed_packets = 0
        io_bus_words = 0

        # Input-train bookkeeping, hoisted: IO-bus words over the whole
        # train in one pass, and the first layer's live packet counts per
        # timestep (later layers derive theirs from the spikes they just
        # produced).
        input_live = None
        if event_driven:
            flat = train.reshape(timesteps * batch, n_in)
            io_bus_words += plan.input_word_scratch.count_total(flat)
            input_live = plan.input_packet_scratch.count_per_group(flat, timesteps)
        # Pretabulated per-layer constants of the event-driven suppression
        # arithmetic (data-independent, formerly recomputed every timestep).
        full_packets = [batch * layer.input_packets * layer.destinations for layer in layers]

        live = 0
        for t in range(timesteps):
            for index, layer in enumerate(layers):
                arena = arenas[index]
                fused = layer.fused
                if event_driven:
                    if index == 0:
                        live = int(input_live[t])
                    delivered = live * layer.destinations
                    switch_hops += delivered
                    suppressed_packets += full_packets[index] - delivered
                if index == 0:
                    # Mirrors CrossbarArray.evaluate: x*V through the
                    # differential conductances (pre-scaling the layer input
                    # once instead of every padded tile block).
                    np.multiply(train[t], voltage, out=arena.scaled_in)
                # Gather into the stacked blocks through the arena's fixed
                # view pairs — one plain copy per tile, no per-step slicing.
                for dst, src in arena.gather:
                    np.copyto(dst, src)
                # One stacked matmul evaluates every tile of the layer.
                np.matmul(arena.blocks, fused.conductance, out=arena.partial)
                # Batched active-row energy: count nonzero rows per (tile,
                # sample), then gather every read cost in one take().
                np.not_equal(arena.blocks, 0.0, out=arena.nonzero)
                arena.nonzero.sum(axis=2, out=arena.active)
                np.add(arena.active, fused.cost_offsets, out=arena.cost_index)
                fused.read_cost_flat.take(arena.cost_index, out=arena.cost)
                crossbar_energy += float(arena.cost.sum())
                # Currents back to weighted sums: * scale / lsb, in place.
                np.multiply(arena.partial, fused.scales, out=arena.partial)
                np.divide(arena.partial, lsb, out=arena.partial)
                # Placement-order accumulation — the parity contract.
                arena.drive.fill(0.0)
                for dst, src in arena.scatter:
                    np.add(dst, src, out=dst)
                # IF update, replaying IFNeuronPool.step's elementwise path
                # for the compiled regime (subtract reset, no leak, no
                # refractory) on the arena's membrane state.
                np.add(arena.membrane, arena.drive, out=arena.membrane)
                np.greater_equal(arena.membrane, layer.threshold, out=arena.spike_bool)
                np.subtract(
                    arena.membrane,
                    layer.threshold,
                    out=arena.membrane,
                    where=arena.spike_bool,
                )
                np.copyto(arena.spikes, arena.spike_bool, casting="safe")
                if event_driven and layer.needs_bus_transfer:
                    io_bus_words += arena.word_scratch.count_total(arena.spikes)
                if index < last_index:
                    if event_driven:
                        live = arena.packet_scratch.count_total(arena.spikes)
                    np.multiply(
                        arena.spikes, voltage, out=arenas[index + 1].scaled_in
                    )
            np.add(plan.spike_counts, arenas[last_index].spikes, out=plan.spike_counts)

        scores = plan.spike_counts + 1e-3 * arenas[last_index].membrane
        predictions = np.argmax(scores, axis=1).astype(int)

        counters = self._gather_counters(
            batch * timesteps,
            crossbar_energy,
            switch_hops,
            suppressed_packets,
            io_bus_words,
        )
        return BatchRunOutcome(
            # The arena is reused by the next run on this shape; the
            # outcome must own its spike counts.
            spike_counts=plan.spike_counts.copy(),
            predictions=predictions,
            counters=counters,
            timesteps=timesteps,
        )

    # -- reference execution (parity oracle) --------------------------------------

    def _layer_drive(
        self, layer: CompiledLayer, current: np.ndarray, active_row_energy: list[float]
    ) -> np.ndarray:
        """Weighted sums of one layer for the whole batch (per-tile loop).

        Accumulates per-tile partial sums in placement order and records the
        crossbar read energy of every (sample, tile) evaluation via the
        tiles' active-row cost tables.
        """
        program = self.program
        batch = current.shape[0]
        drive = np.zeros((batch, layer.n_out))
        for index, tile in enumerate(layer.tiles):
            block = np.zeros((batch, tile.conductance_diff.shape[0]))
            block[:, : tile.rows] = current[:, tile.row_start : tile.row_stop]
            active_rows = np.count_nonzero(block, axis=1)
            active_row_energy[0] += float(tile.read_cost_j[active_rows].sum())
            # Mirrors CrossbarArray.evaluate: x*V through the differential
            # conductances, then currents back to weighted sums.
            currents = (block * program.read_voltage_v) @ tile.conductance_diff
            weighted = currents * tile.scale / program.current_lsb_a
            drive[:, tile.column_start : tile.column_stop] += weighted[:, : tile.columns]
        return drive

    def run_batch_reference(self, spike_train: np.ndarray) -> BatchRunOutcome:
        """The pre-fusion ``timesteps × layers × tiles`` loop, kept verbatim.

        This is the parity oracle: the fused kernel must be bit-identical
        to it (the hypothesis suite in ``tests/test_kernel_fused.py``
        asserts exactly that across randomized geometries), and the kernel
        benchmark measures the fused speedup against it.
        """
        program = self.program
        train = self._validate_train(spike_train)
        timesteps, batch, _n_in = train.shape

        # One neuron pool per layer, positionally aligned with the program.
        pools = [
            IFNeuronPool(
                (batch, layer.n_out), IFNeuronParameters(threshold=layer.threshold)
            )
            for layer in program.layers
        ]
        spike_counts = np.zeros((batch, program.output_dim))
        crossbar_energy = [0.0]
        switch_hops = 0
        suppressed_packets = 0
        io_bus_words = 0

        for t in range(timesteps):
            current = train[t]
            if program.event_driven:
                io_bus_words += int(
                    _nonzero_chunk_counts(current, program.word_bits).sum()
                )
            for index, layer in enumerate(program.layers):
                if program.event_driven:
                    live = _nonzero_chunk_counts(current, program.packet_bits)
                    delivered = int(live.sum()) * layer.destinations
                    switch_hops += delivered
                    suppressed_packets += (
                        batch * layer.input_packets * layer.destinations - delivered
                    )
                drive = self._layer_drive(layer, current, crossbar_energy)
                spikes = pools[index].step(drive)
                if program.event_driven and layer.needs_bus_transfer:
                    io_bus_words += int(
                        _nonzero_chunk_counts(spikes, program.word_bits).sum()
                    )
                current = spikes
            spike_counts += current

        final_pool = pools[-1]
        scores = spike_counts + 1e-3 * final_pool.membrane
        predictions = np.argmax(scores, axis=1).astype(int)

        counters = self._gather_counters(
            batch * timesteps,
            crossbar_energy[0],
            switch_hops,
            suppressed_packets,
            io_bus_words,
        )
        return BatchRunOutcome(
            spike_counts=spike_counts,
            predictions=predictions,
            counters=counters,
            timesteps=timesteps,
        )

    def _gather_counters(
        self,
        steps: int,
        crossbar_energy_j: float,
        switch_hops: int,
        suppressed_packets: int,
        io_bus_words: int,
    ) -> EventCounters:
        """Scale the static schedule by the executed steps and merge in the
        data-dependent event totals."""
        program = self.program
        static = program.static_events
        counters = EventCounters()
        counters.crossbar_evaluations = steps * static.crossbar_evaluations
        counters.crossbar_device_energy_j = crossbar_energy_j
        counters.neuron_integrations = steps * static.neuron_integrations
        counters.ibuff_accesses = steps * static.ibuff_accesses
        counters.obuff_accesses = steps * static.obuff_accesses
        counters.tbuff_accesses = steps * static.tbuff_accesses
        counters.local_control_events = steps * static.local_control_events
        counters.ccu_transfers = steps * static.ccu_transfers
        counters.input_sram_reads = steps * static.input_sram_reads
        counters.input_sram_writes = steps * static.input_sram_writes
        counters.global_control_events = steps * static.global_control_events
        counters.zero_checks = steps * static.zero_checks
        if program.event_driven:
            counters.switch_hops = switch_hops
            counters.suppressed_packets = suppressed_packets
            counters.io_bus_words = io_bus_words
        else:
            counters.switch_hops = steps * static.switch_hops_without_ed
            counters.io_bus_words = steps * static.io_bus_words_without_ed
        return counters
