"""Spiking neural network substrate.

Provides everything needed to build, train (offline), convert and
functionally simulate the deep SNNs that RESPARC accelerates:

* :mod:`repro.snn.neuron` — IF neuron dynamics.
* :mod:`repro.snn.encoding` — rate-coded input spike encoders.
* :mod:`repro.snn.layers` — dense/conv/pool/flatten layers with NumPy
  training support.
* :mod:`repro.snn.network` — the network container.
* :mod:`repro.snn.topology` — structural connectivity extraction for the
  mapping compiler.
* :mod:`repro.snn.training` — offline ANN training (SGD/Adam).
* :mod:`repro.snn.conversion` — ANN→SNN conversion with threshold balancing.
* :mod:`repro.snn.functional` — the golden-model spiking simulator and the
  activity traces consumed by the hardware models.
"""

from repro.snn.conversion import ConversionSpec, SpikingNetwork, convert_to_snn
from repro.snn.encoding import (
    DeterministicRateEncoder,
    EncoderState,
    PoissonEncoder,
    spike_train_statistics,
)
from repro.snn.functional import (
    ActivityTrace,
    LayerActivity,
    SimulationResult,
    SpikingSimulator,
)
from repro.snn.layers import AvgPool2D, Conv2D, Dense, Flatten, Layer
from repro.snn.network import LayerInfo, Network
from repro.snn.neuron import IFNeuronParameters, IFNeuronPool
from repro.snn.topology import LayerConnectivity, extract_connectivity
from repro.snn.training import Trainer, TrainingResult, cross_entropy_loss, softmax

__all__ = [
    "ConversionSpec",
    "SpikingNetwork",
    "convert_to_snn",
    "DeterministicRateEncoder",
    "EncoderState",
    "PoissonEncoder",
    "spike_train_statistics",
    "ActivityTrace",
    "LayerActivity",
    "SimulationResult",
    "SpikingSimulator",
    "AvgPool2D",
    "Conv2D",
    "Dense",
    "Flatten",
    "Layer",
    "LayerInfo",
    "Network",
    "IFNeuronParameters",
    "IFNeuronPool",
    "LayerConnectivity",
    "extract_connectivity",
    "Trainer",
    "TrainingResult",
    "cross_entropy_loss",
    "softmax",
]
