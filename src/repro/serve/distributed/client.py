"""Remote chip client: the ``ChipSession`` surface over a socket.

:class:`RemoteSession` connects to a :class:`~repro.serve.distributed.server.
ChipServer` and exposes the same ``infer(InferenceRequest) ->
InferenceResponse`` contract as a local :class:`~repro.serve.ChipSession`,
so pools, gateways and experiments can treat a chip on another host exactly
like a chip in this process.  The wire format is one JSON object per line in
each direction (see the server module for the protocol).
"""

from __future__ import annotations

import json
import socket
import time

from repro.serve.schema import InferenceRequest, InferenceResponse

__all__ = ["RemoteSession", "RemoteServerError", "parse_endpoint"]


class RemoteServerError(RuntimeError):
    """The server answered a request with ``ok: false``."""


def parse_endpoint(endpoint: str) -> tuple[str, int]:
    """Parse ``"host:port"`` into ``(host, port)`` with actionable errors."""
    text = str(endpoint).strip()
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"endpoint must look like HOST:PORT (for example 127.0.0.1:7070), "
            f"got {endpoint!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"endpoint port must be an integer, got {port_text!r} in {endpoint!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise ValueError(f"endpoint port must be in [1, 65535], got {port}")
    return host, port


class RemoteSession:
    """A chip session served by a remote :class:`ChipServer`.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Per-request socket timeout in seconds (inference on a large batch is
        slow; size accordingly).

    The session holds one persistent connection; requests are serialised on
    it (one line out, one line in).  Use one ``RemoteSession`` per thread, or
    an outer lock, for concurrent callers.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 120.0):
        self.host = host
        self.port = port
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._file = self._socket.makefile("rwb")
        self._info: dict[str, object] | None = None

    @classmethod
    def connect(
        cls,
        endpoint: str | tuple[str, int],
        *,
        timeout: float = 120.0,
        wait: float = 0.0,
    ) -> "RemoteSession":
        """Connect to ``"host:port"`` (or a ``(host, port)`` tuple).

        ``wait`` keeps retrying for up to that many seconds while the server
        boots (0 means a single attempt).
        """
        host, port = (
            parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
        )
        deadline = time.monotonic() + wait
        while True:
            try:
                return cls(host, port, timeout=timeout)
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # -- protocol -----------------------------------------------------------------

    def _call(self, message: dict[str, object]) -> dict[str, object]:
        self._file.write(json.dumps(message).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError(
                f"chip server at {self.host}:{self.port} closed the connection"
            )
        reply = json.loads(line.decode("utf-8"))
        if not reply.get("ok"):
            raise RemoteServerError(str(reply.get("error", "unknown server error")))
        return reply

    # -- the session surface ------------------------------------------------------

    def ping(self) -> bool:
        """Round-trip a no-op message."""
        return bool(self._call({"op": "ping"}).get("pong"))

    def info(self, refresh: bool = False) -> dict[str, object]:
        """Server metadata: workload, backend, timesteps, jobs, capacity."""
        if self._info is None or refresh:
            self._info = dict(self._call({"op": "info"})["info"])
        return self._info

    @property
    def capacity(self) -> int:
        """Worker count of the remote pool (gateway sharding weight)."""
        return int(self.info().get("capacity", 1))

    @property
    def backend(self) -> str:
        """Execution backend of the remote chip."""
        return str(self.info().get("backend", "unknown"))

    @property
    def timesteps(self) -> int:
        """Default rate-coding window of the remote session."""
        return int(self.info().get("timesteps", 0))

    def infer(self, request: InferenceRequest) -> InferenceResponse:
        """Run one batch on the remote chip (same contract as ChipSession)."""
        reply = self._call({"op": "infer", "request": request.to_dict()})
        return InferenceResponse.from_dict(reply["response"])

    def shutdown_server(self) -> None:
        """Ask the server process to stop serving (clean remote teardown)."""
        self._call({"op": "shutdown"})

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
