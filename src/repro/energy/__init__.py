"""Energy and latency modeling substrate.

* :mod:`repro.energy.components` — the 45 nm per-event energy library that
  replaces the paper's Synopsys synthesis results.
* :mod:`repro.energy.cacti` — analytical CACTI-like SRAM model.
* :mod:`repro.energy.model` — per-classification energy reports/breakdowns.
* :mod:`repro.energy.latency` — per-classification latency reports.
"""

from repro.energy.cacti import SRAMConfig, SRAMModel
from repro.energy.components import DEFAULT_LIBRARY, ComponentLibrary, scale_for_bits
from repro.energy.latency import LatencyReport
from repro.energy.model import CMOS_GROUPS, RESPARC_GROUPS, EnergyReport, merge_reports

__all__ = [
    "SRAMConfig",
    "SRAMModel",
    "DEFAULT_LIBRARY",
    "ComponentLibrary",
    "scale_for_bits",
    "LatencyReport",
    "CMOS_GROUPS",
    "RESPARC_GROUPS",
    "EnergyReport",
    "merge_reports",
]
