"""Distributed serving: executors, socket server/client, and the gateway.

Three layers share the :class:`~repro.serve.InferenceRequest` ->
:class:`~repro.serve.InferenceResponse` contract and are each result-
identical to a single local :class:`~repro.serve.ChipSession`:

* **executors** (:mod:`~repro.serve.distributed.executors`) — pluggable
  shard execution for :class:`~repro.serve.ChipPool`: ``inline``, ``thread``
  or ``process`` (one programmed chip per ``multiprocessing`` worker, shards
  shipped through the JSON schema).
* **server/client** (:mod:`~repro.serve.distributed.server` /
  :mod:`~repro.serve.distributed.client`) — an :mod:`asyncio` chip daemon
  answering newline-delimited JSON with pipelined request ids and
  cross-client dynamic batching, :class:`RemoteSession`, which gives a chip
  on another host the ``ChipSession`` surface (with reconnect-and-retry
  across server restarts), and :class:`PipelinedSession`, which keeps many
  tagged requests in flight over a small connection pool.
* **gateway** (:mod:`~repro.serve.distributed.gateway`) — fans a batch out
  across several endpoints (local pools and/or remote sessions) with
  capacity-weighted sharding and an exact streaming merge;
  ``submit()`` is non-blocking, so successive batches pipeline across the
  endpoints.

Quickstart::

    from repro.serve import ChipPool, InferenceRequest
    from repro.serve.distributed import ChipServer, InferenceGateway, PipelinedSession

    pool = ChipPool(snn, jobs=4, executor="process", seed=7)   # multi-core
    server = ChipServer(pool, port=7070).start()               # multi-host
    remote = PipelinedSession.connect("127.0.0.1:7070")        # many in flight
    gateway = InferenceGateway([remote, local_pool])           # multi-endpoint
    future = gateway.submit(InferenceRequest(inputs=images))   # non-blocking
    response = future.result()

``python -m repro.serve.distributed serve --workload mnist-mlp`` runs the
daemon from the command line; ``infer`` and ``smoke`` client subcommands
live alongside it (see :mod:`~repro.serve.distributed.cli`).
"""

from repro.serve.distributed.client import (
    CancellableFuture,
    PipelinedSession,
    RemoteServerError,
    RemoteSession,
    parse_endpoint,
    split_endpoints,
)
from repro.serve.distributed.executors import (
    EXECUTORS,
    InlineExecutor,
    ProcessExecutor,
    ProcessJsonExecutor,
    SessionSpec,
    ShardExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.serve.distributed.gateway import GatewayEndpoint, InferenceGateway
from repro.serve.distributed.server import (
    SHED_POLICIES,
    ChipServer,
    ServeRejection,
    ServingWorkload,
    load_benchmark_workload,
)

__all__ = [
    "EXECUTORS",
    "SHED_POLICIES",
    "CancellableFuture",
    "ChipServer",
    "GatewayEndpoint",
    "InferenceGateway",
    "InlineExecutor",
    "PipelinedSession",
    "ProcessExecutor",
    "ProcessJsonExecutor",
    "RemoteServerError",
    "RemoteSession",
    "ServeRejection",
    "ServingWorkload",
    "SessionSpec",
    "ShardExecutor",
    "ThreadExecutor",
    "load_benchmark_workload",
    "make_executor",
    "parse_endpoint",
    "split_endpoints",
]
