"""Weight-matrix to crossbar-conductance mapping.

A memristive device can only realise a positive conductance, while SNN
weights are signed.  The standard scheme (used by the paper's references
[7, 13, 14] and assumed here) is a *differential pair*: each logical synapse
occupies a device on a "positive" column and a device on a "negative" column,
and the neuron integrates the difference of the two column currents.

:class:`CrossbarMapper` converts a signed weight matrix into the conductance
matrices programmed on the positive/negative device planes and provides the
inverse transform used to interpret crossbar output currents as weighted
sums.  It is intentionally independent of crossbar geometry — tiling a large
weight matrix across fixed-size MCAs is the job of
:mod:`repro.mapping.partitioner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crossbar.device import MemristorModel

__all__ = ["ProgrammedWeights", "CrossbarMapper"]


@dataclass(frozen=True)
class ProgrammedWeights:
    """Result of programming a signed weight matrix onto device pairs.

    Attributes
    ----------
    g_positive / g_negative:
        Conductance matrices (S) of the positive and negative device planes,
        shape ``(rows, columns)`` — rows are inputs, columns are neurons.
    scale:
        Weight magnitude that maps to full-scale conductance; used to convert
        differential currents back into weighted sums.
    """

    g_positive: np.ndarray
    g_negative: np.ndarray
    scale: float

    @property
    def shape(self) -> tuple[int, int]:
        """``(rows, columns)`` of the programmed matrix."""
        return self.g_positive.shape

    def effective_weights(self, model: MemristorModel) -> np.ndarray:
        """Recover the signed weights realised by the programmed devices."""
        w_pos = model.conductance_to_weight(self.g_positive)
        w_neg = model.conductance_to_weight(self.g_negative)
        return (w_pos - w_neg) * self.scale


@dataclass
class CrossbarMapper:
    """Programs signed weight matrices onto differential device pairs."""

    model: MemristorModel = field(default_factory=MemristorModel)

    def program(
        self,
        weights: np.ndarray,
        rng: np.random.Generator | None = None,
        scale: float | None = None,
    ) -> ProgrammedWeights:
        """Program a signed weight matrix.

        Parameters
        ----------
        weights:
            Signed weight matrix of shape ``(rows, columns)``, rows indexing
            inputs and columns indexing output neurons.
        rng:
            Generator used for programming non-idealities (required only when
            the device model enables them).
        scale:
            Weight magnitude corresponding to full-scale conductance.  When
            omitted, the matrix absolute maximum is used (a zero matrix maps
            to scale 1.0).

        Returns
        -------
        ProgrammedWeights
        """
        w = np.asarray(weights, dtype=float)
        if w.ndim != 2:
            raise ValueError(f"weights must be 2-D (rows, columns); got shape {w.shape}")
        if scale is None:
            scale = float(np.max(np.abs(w))) or 1.0
        elif scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        normalised = np.clip(np.abs(w) / scale, 0.0, 1.0)
        pos = np.where(w > 0, normalised, 0.0)
        neg = np.where(w < 0, normalised, 0.0)
        return ProgrammedWeights(
            g_positive=self.model.program(pos, rng),
            g_negative=self.model.program(neg, rng),
            scale=scale,
        )

    def column_currents(
        self, programmed: ProgrammedWeights, inputs: np.ndarray
    ) -> np.ndarray:
        """Differential column currents (A) for a batch of input vectors.

        ``inputs`` has shape ``(rows,)`` or ``(batch, rows)`` and holds the
        spike values (0/1) or analog activations applied to the crossbar rows.
        The value returned has shape ``(columns,)`` or ``(batch, columns)``.
        """
        x = np.asarray(inputs, dtype=float)
        squeeze = x.ndim == 1
        x = np.atleast_2d(x)
        rows = programmed.shape[0]
        if x.shape[1] != rows:
            raise ValueError(
                f"inputs have {x.shape[1]} elements but the crossbar has {rows} rows"
            )
        v = x * self.model.params.read_voltage_v
        currents = v @ (programmed.g_positive - programmed.g_negative)
        return currents[0] if squeeze else currents

    def currents_to_weighted_sum(
        self, programmed: ProgrammedWeights, currents: np.ndarray
    ) -> np.ndarray:
        """Convert differential column currents back to weighted sums.

        The conversion factor is ``scale / (V_read * g_range)``: a full-scale
        weight on one device contributes ``V_read * g_range`` amps (relative
        to the zero-weight baseline) per active input.
        """
        params = self.model.params
        lsb = params.read_voltage_v * (params.g_on_s - params.g_off_s)
        return np.asarray(currents, dtype=float) * programmed.scale / lsb
