"""Replica lifecycle: provision, health-check and drain ChipServer processes.

A *replica* is one :class:`~repro.serve.distributed.ChipServer` running in
its own OS process, built from a picklable
:class:`~repro.serve.distributed.SessionSpec` — the same provisioning
recipe the executor registry uses for pool workers, so every replica's chip
is programmed identically and shard placement stays result-exact.

The lifecycle protocol:

* **boot** — :meth:`ReplicaManager.start_replica` spawns the process, which
  builds its session, binds port 0, sends the bound address back through a
  pipe, and serves.  The manager then connects a
  :class:`~repro.serve.distributed.PipelinedSession` control/data channel
  and health-checks it with a ping + ``info`` identity read.
* **serve** — the replica is an ordinary endpoint; callers (usually an
  :class:`~repro.serve.fleet.ElasticFleet` gateway) submit work through
  ``replica.client``.
* **drain** — :meth:`ReplicaManager.drain_replica` sends the graceful
  ``drain`` wire op: the server stops admitting (structured ``draining``
  errors), completes and answers everything already admitted, exits its
  serving loop, and the process terminates with exit code 0.  The manager
  joins the process, so when the call returns the OS resources are gone.

Replicas inherit the parent's interpreter via :mod:`multiprocessing` (the
platform default start method; pass ``start_method="spawn"`` for a fully
fresh interpreter per replica at the cost of slower boots).
"""

from __future__ import annotations

import itertools
import multiprocessing
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.serve.distributed.client import PipelinedSession
from repro.serve.distributed.executors import SessionSpec
from repro.serve.distributed.server import ChipServer

__all__ = ["Replica", "ReplicaManager", "ReplicaSpec"]


class _DelayedTarget:
    """Inject synthetic per-dispatch latency (the fleet's load lab).

    Wraps the replica's session so every dispatch sleeps first — a
    machine-independent way to manufacture sustained backlog in tests,
    benchmarks and smoke runs.  Results are untouched: the sleep happens
    before the exact same ``infer``/``infer_many`` call.
    """

    def __init__(self, session, delay_s: float):
        self._session = session
        self._delay_s = float(delay_s)

    def __getattr__(self, name):
        return getattr(self._session, name)

    def infer(self, request):
        time.sleep(self._delay_s)
        return self._session.infer(request)

    def infer_many(self, requests):
        time.sleep(self._delay_s)
        return self._session.infer_many(requests)


@dataclass(frozen=True)
class ReplicaSpec:
    """Picklable recipe for one fleet replica's server process.

    ``session_spec`` is the chip-provisioning half (network, config,
    encoder state — see :class:`SessionSpec`); the rest configures the
    :class:`ChipServer` wrapped around it.  ``dispatch_delay_s`` > 0 wraps
    the session in a synthetic-latency target (load-lab knob; results are
    unchanged).  ``log_dir`` redirects the child's stdout/stderr to
    ``{log_dir}/{replica_id}.log`` so CI can dump replica logs on failure.
    """

    session_spec: SessionSpec
    workload: str = "custom"
    host: str = "127.0.0.1"
    max_batch: int = 8
    batch_window_s: float = 0.0
    max_queue: int = 0
    shed_policy: str = "reject"
    dispatch_delay_s: float = 0.0
    log_dir: str | None = None


def _replica_main(spec: ReplicaSpec, replica_id: str, conn) -> None:
    """Child-process entry point: build the session, serve, exit on drain."""
    if spec.log_dir:
        log_path = Path(spec.log_dir) / f"{replica_id}.log"
        log_path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(log_path, "w", buffering=1)
        sys.stdout = sys.stderr = handle
    session = spec.session_spec.build_session()
    target = (
        _DelayedTarget(session, spec.dispatch_delay_s)
        if spec.dispatch_delay_s > 0
        else session
    )
    server = ChipServer(
        target,
        host=spec.host,
        port=0,
        workload=spec.workload,
        max_batch=spec.max_batch,
        batch_window_s=spec.batch_window_s,
        max_queue=spec.max_queue,
        shed_policy=spec.shed_policy,
        replica_id=replica_id,
    )
    # The socket is bound (constructor binds eagerly): hand the address to
    # the parent before serving; clients retry-connect until the loop is up.
    conn.send(server.address)
    conn.close()
    print(f"replica {replica_id}: serving on {server.endpoint}", flush=True)
    server.serve_forever()
    print(f"replica {replica_id}: drained, exiting", flush=True)


@dataclass
class Replica:
    """A live fleet replica: process handle + pipelined control channel."""

    replica_id: str
    endpoint: tuple[str, int]
    process: multiprocessing.process.BaseProcess
    client: PipelinedSession | None = None
    started_at: float = field(default_factory=time.time)
    draining: bool = False
    #: The server's final counter view, captured from the drain
    #: acknowledgement — the last reply the manager is guaranteed to read
    #: before the process exits.  None until the replica drains.
    final_stats: dict[str, int] | None = None
    #: The full registry snapshot riding the same drain ack.
    final_metrics: dict[str, object] | None = None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def exitcode(self) -> int | None:
        return self.process.exitcode

    def status(self) -> dict[str, object]:
        """Cheap local snapshot (no RPC)."""
        return {
            "replica_id": self.replica_id,
            "endpoint": f"{self.endpoint[0]}:{self.endpoint[1]}",
            "pid": self.process.pid,
            "alive": self.alive,
            "exitcode": self.exitcode,
            "draining": self.draining,
            "uptime_s": max(0.0, time.time() - self.started_at),
        }


class ReplicaManager:
    """Provision, health-check and drain ChipServer replica processes.

    Thread-safe: the fleet controller scales from its own thread while the
    owner drives shutdown from another.

    Parameters
    ----------
    spec:
        What every replica runs (:class:`ReplicaSpec`).
    start_method:
        :mod:`multiprocessing` start method (None = platform default).
    boot_timeout_s:
        Seconds one replica may take to build its chip, bind, and answer
        the health-check ping before the boot is declared failed.
    client_connections:
        Connection-pool size of each replica's :class:`PipelinedSession`.
    """

    def __init__(
        self,
        spec: ReplicaSpec,
        *,
        start_method: str | None = None,
        boot_timeout_s: float = 120.0,
        client_connections: int = 1,
    ):
        if boot_timeout_s <= 0:
            raise ValueError(f"boot_timeout_s must be > 0, got {boot_timeout_s}")
        self.spec = spec
        self.boot_timeout_s = float(boot_timeout_s)
        self.client_connections = int(client_connections)
        self._context = multiprocessing.get_context(start_method)
        self._lock = threading.RLock()
        self._replicas: list[Replica] = []
        self._ids = itertools.count(1)
        #: Summed final counters of every drained replica, so scale-down
        #: does not silently discard a replica's shed/deadline/cancel
        #: history (the fleet's lifetime totals stay additive).
        self.retired_stats: dict[str, int] = {}

    @property
    def replicas(self) -> list[Replica]:
        """Snapshot of the live replica handles."""
        with self._lock:
            return list(self._replicas)

    def __len__(self) -> int:
        with self._lock:
            return len(self._replicas)

    # -- provisioning -------------------------------------------------------------

    def start_replica(self) -> Replica:
        """Boot one replica process and health-check it (blocking)."""
        replica_id = f"{self.spec.workload}-r{next(self._ids)}"
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_replica_main,
            args=(self.spec, replica_id, child_conn),
            name=f"chip-replica-{replica_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = time.monotonic() + self.boot_timeout_s
        try:
            while not parent_conn.poll(0.05):
                if not process.is_alive():
                    raise RuntimeError(
                        f"replica {replica_id} died during boot "
                        f"(exit code {process.exitcode})"
                    )
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"replica {replica_id} did not report its address "
                        f"within {self.boot_timeout_s:.0f}s"
                    )
            endpoint = tuple(parent_conn.recv())
        except BaseException:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            raise
        finally:
            parent_conn.close()
        replica = Replica(
            replica_id=replica_id,
            endpoint=(str(endpoint[0]), int(endpoint[1])),
            process=process,
        )
        try:
            remaining = max(0.5, deadline - time.monotonic())
            replica.client = PipelinedSession.connect(
                replica.endpoint,
                connections=self.client_connections,
                timeout=remaining,
                wait=remaining,
            )
            info = replica.client.info(refresh=True, timeout=remaining)
            if info.get("replica_id") != replica_id:
                raise RuntimeError(
                    f"replica {replica_id} answered as "
                    f"{info.get('replica_id')!r}; refusing the mismatched "
                    f"process"
                )
        except BaseException:
            if replica.client is not None:
                replica.client.close()
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            raise
        with self._lock:
            self._replicas.append(replica)
        return replica

    # -- health -------------------------------------------------------------------

    def check_health(self, *, timeout_s: float = 5.0) -> dict[str, bool]:
        """Ping every replica; ``{replica_id: healthy}``."""
        health: dict[str, bool] = {}
        for replica in self.replicas:
            try:
                assert replica.client is not None
                health[replica.replica_id] = bool(
                    replica.alive and replica.client.ping(timeout=timeout_s)
                )
            except Exception:  # noqa: BLE001 - health is a yes/no question
                health[replica.replica_id] = False
        return health

    # -- retirement ---------------------------------------------------------------

    def drain_replica(self, replica: Replica, *, timeout_s: float = 60.0) -> None:
        """Gracefully retire one replica (blocking until its process exits).

        Sends the ``drain`` op — the server refuses new work, answers all
        admitted work, then exits — and joins the process.  The drain
        acknowledgement carries the server's final ``stats``/``metrics``
        snapshot, which is recorded on the replica and folded into
        :attr:`retired_stats` so retiring a replica never discards its
        shed/deadline/cancel counters.  Raises ``TimeoutError`` (after
        force-killing the process) if the drain does not complete in time;
        an already-dead replica drains cleanly.
        """
        replica.draining = True
        try:
            if replica.client is not None:
                ack = replica.client.drain_server(timeout=timeout_s)
                final_stats = ack.get("stats")
                if isinstance(final_stats, dict):
                    replica.final_stats = {
                        str(key): int(value) for key, value in final_stats.items()
                    }
                    with self._lock:
                        for key, value in replica.final_stats.items():
                            if key == "max_coalesced":
                                # A high-water mark, not a count: folds as max.
                                self.retired_stats[key] = max(
                                    self.retired_stats.get(key, 0), value
                                )
                            else:
                                self.retired_stats[key] = (
                                    self.retired_stats.get(key, 0) + value
                                )
                final_metrics = ack.get("metrics")
                if isinstance(final_metrics, dict):
                    replica.final_metrics = final_metrics
        except Exception:  # noqa: BLE001 - a dead/exiting server is already drained
            pass
        replica.process.join(timeout=timeout_s)
        timed_out = replica.process.is_alive()
        if timed_out:
            replica.process.terminate()
            replica.process.join(timeout=5.0)
        if replica.client is not None:
            replica.client.close()
        with self._lock:
            if replica in self._replicas:
                self._replicas.remove(replica)
        if timed_out:
            raise TimeoutError(
                f"replica {replica.replica_id} did not drain within "
                f"{timeout_s:.0f}s; process was terminated"
            )

    def stop_all(self, *, timeout_s: float = 60.0) -> None:
        """Drain every replica (newest first); errors don't stop the sweep."""
        failures: list[str] = []
        for replica in reversed(self.replicas):
            try:
                self.drain_replica(replica, timeout_s=timeout_s)
            except Exception as exc:  # noqa: BLE001 - collect, keep sweeping
                failures.append(f"{replica.replica_id}: {exc}")
        if failures:
            raise RuntimeError(
                "fleet teardown left unhealthy replicas: " + "; ".join(failures)
            )

    def __enter__(self) -> "ReplicaManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop_all()
