"""Sharded inference across a pool of chip sessions.

:class:`ChipPool` owns a primary :class:`~repro.serve.ChipSession` plus a
pluggable :class:`~repro.serve.distributed.executors.ShardExecutor` that runs
``jobs`` workers — inline on the calling thread, on a thread pool, or in
``multiprocessing`` worker processes each holding its own programmed chip.
Each request batch is split into contiguous shards, one per worker, and the
merged response is *result-identical* to running the whole batch on one
session regardless of the executor:

* encoding is shard-stable — every worker derives the pool's
  :class:`~repro.snn.encoding.EncoderState` and receives its shard's
  absolute ``sample_offset``, so sample ``i`` gets the same spike train no
  matter how (or where) the batch is partitioned;
* chip programming is a pure function of ``(snn, config, seed)``, so thread
  workers sharing the primary chip and process workers rebuilding their own
  execute the same hardware;
* predictions and spike counts are per-sample and concatenate exactly;
* event counters are integer totals that sum exactly across shards, and the
  merged counters are converted to energy through the primary session's own
  pipeline, so components agree with a single-session run to floating-point
  accumulation order (<< 1e-9 relative).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.config import ArchitectureConfig
from repro.energy.components import ComponentLibrary
from repro.serve.distributed.executors import SessionSpec, ShardExecutor, make_executor
from repro.serve.metrics import (
    PHASE_COMPUTE,
    PHASE_MERGE,
    MetricsRegistry,
    get_default_registry,
    record_phase,
)
from repro.serve.schema import InferenceRequest, InferenceResponse
from repro.serve.session import ChipSession
from repro.snn.conversion import SpikingNetwork
from repro.snn.encoding import EncoderState

__all__ = ["ChipPool"]


class ChipPool:
    """N workers sharding large batches behind one ``infer`` call.

    Parameters
    ----------
    executor:
        Worker strategy: ``"inline"`` (sequential, debugging baseline),
        ``"thread"`` (default; NumPy kernels release the GIL) or
        ``"process"`` (one chip per worker process, requests shipped through
        the JSON schema).  A :class:`ShardExecutor` instance is also
        accepted.  All executors return identical results.  A ``jobs=1``
        pool never shards, so no workers are provisioned and the executor
        choice is effectively ``inline`` (a process worker would program a
        chip that is never consulted).
    """

    def __init__(
        self,
        snn: SpikingNetwork,
        jobs: int = 2,
        *,
        config: ArchitectureConfig | None = None,
        library: ComponentLibrary | None = None,
        timesteps: int = 32,
        encoder: str = "deterministic",
        backend: str = "vectorized",
        seed: int = 0,
        encoder_state: EncoderState | None = None,
        executor: str | ShardExecutor = "thread",
        registry: MetricsRegistry | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.metrics = registry if registry is not None else get_default_registry()
        self._m_dispatches = self.metrics.counter(
            "repro_pool_dispatches_total", "coalesced pool dispatches"
        )
        self._m_shards = self.metrics.counter(
            "repro_pool_shards_total", "shards executed"
        )
        self._m_compute = self.metrics.histogram(
            "repro_pool_compute_seconds", "wave execution wall per dispatch"
        )
        self._m_merge = self.metrics.histogram(
            "repro_pool_merge_seconds", "shard merge wall per request"
        )
        # Validate the requested executor even when it will not be used; a
        # single-worker pool downgrades to inline rather than provisioning
        # workers that infer()'s single-shard fast path can never reach.
        requested = make_executor(executor)
        self._shard_executor = requested if jobs > 1 else make_executor("inline")
        primary = ChipSession(
            snn,
            config=config,
            library=library,
            timesteps=timesteps,
            encoder=encoder,
            backend=backend,
            seed=seed,
            encoder_state=encoder_state,
            registry=registry,
        )
        self._primary = primary
        assert primary.encoder_state is not None  # sessions built here are state-mode
        self._shard_executor.start(
            SessionSpec(
                snn=snn,
                config=primary.config,
                library=library,
                timesteps=timesteps,
                backend=backend,
                seed=seed,
                encoder_state=primary.encoder_state,
            ),
            jobs,
            primary,
        )
        # Shard tasks are pinned to fixed workers, and structural workers
        # mutate their chip in place — so only one batch may be in flight per
        # pool.  Callers' infer() calls serialise on this lock.
        self._infer_lock = threading.Lock()
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Shut down the workers (idempotent)."""
        if not self._closed:
            self._closed = True
            self._shard_executor.close()

    def __enter__(self) -> "ChipPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def session(self) -> ChipSession:
        """The primary session (shared chip / encoder state / energy context)."""
        return self._primary

    @property
    def executor(self) -> str:
        """Name of the active shard executor."""
        return self._shard_executor.name

    # -- inference ----------------------------------------------------------------

    def _shard_bounds(self, batch: int, shards: int | None = None) -> list[tuple[int, int]]:
        """Contiguous, near-equal shard boundaries; empty shards are dropped.

        With ``batch < shards`` some workers have nothing to do; their empty
        shards are dropped here so no worker ever receives a degenerate
        zero-sample request (which the schema rejects).
        """
        shards = self.jobs if shards is None else shards
        sizes = [len(part) for part in np.array_split(np.arange(batch), shards)]
        bounds = []
        start = 0
        for size in sizes:
            if size:
                bounds.append((start, start + size))
            start += size
        return bounds

    def _shard_allocation(self, requests: list[InferenceRequest]) -> list[int]:
        """How many shards each request receives in one coalesced dispatch.

        Shard sizes are levelled against the dispatch's *ideal makespan* —
        ``ceil(total samples / jobs)``, the wall-clock of a perfectly
        balanced dispatch: request ``i`` is split into
        ``ceil(batch_i / ideal)`` shards, so no single shard ever exceeds
        the ideal and an oversized request is re-batched into sub-shards
        that pack worker slots alongside the small requests riding in the
        same dispatch.  When the requests fit one wave this reduces to the
        historical proportional allocation; when they do not, the spill is
        balanced sub-shards across extra waves rather than one monolithic
        whole-request shard pinning a worker while its siblings idle.
        """
        sizes = [request.batch_size for request in requests]
        ideal = max(1, -(-sum(sizes) // self.jobs))
        return [-(-size // ideal) for size in sizes]

    @staticmethod
    def _pack_waves(sizes: list[int], jobs: int) -> list[list[int]]:
        """Pack shard indices into waves of at most ``jobs``, largest first.

        A wave's wall-clock is its largest shard, so sorting the shards by
        descending size and chunking minimises the summed wave maxima (each
        wave's maximum is then exactly the smallest it can possibly be given
        the shards that remain).  The sort is stable, so equal-sized shards
        dispatch in plan order — packing is deterministic.
        """
        order = sorted(range(len(sizes)), key=lambda index: -sizes[index])
        return [order[start : start + jobs] for start in range(0, len(order), jobs)]

    def infer(self, request: InferenceRequest) -> InferenceResponse:
        """Shard one request across the workers and merge their responses.

        Thread-safe: concurrent callers are serialised, one dispatch in
        flight at a time (the workers parallelise *within* a dispatch).
        """
        return self.infer_many([request])[0]

    def infer_many(self, requests: list[InferenceRequest]) -> list[InferenceResponse]:
        """Run several requests as one coalesced pool dispatch.

        This is the dynamic-batching seam the async chip server drains its
        request queue through: every queued request is split into contiguous
        shards carrying its *own* absolute ``sample_offset``, the shards are
        **re-batched at the shard level** — an oversized request becomes
        several sub-shards no larger than the dispatch's ideal makespan, and
        the flattened shard set is packed into worker waves largest-first,
        so sub-shards of a big request fill slots alongside small requests
        instead of pinning one worker per request — and the shard responses
        are regrouped per request with exactly the merge a standalone
        :meth:`infer` performs.  Because encoding is shard-stable per
        absolute sample index, each returned response is result-identical to
        running that request alone on a single
        :class:`~repro.serve.ChipSession` — re-batching changes throughput,
        never numbers.

        Requests may disagree on ``timesteps``/``labels``; each shard
        carries its request's own overrides (shards with different
        ``timesteps`` may share a wave — workers are independent sessions).
        More shards than worker slots execute in successive waves of at most
        ``jobs`` shards.
        """
        if not requests:
            raise ValueError("infer_many needs at least one request")
        with self._infer_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            plans = [
                self._shard_bounds(request.batch_size, shards)
                for request, shards in zip(requests, self._shard_allocation(requests))
            ]
            if len(requests) == 1 and len(plans[0]) <= 1:
                # Historic fast path: a request too small to shard runs on
                # the primary session without touching the executor.
                started = time.monotonic()
                response = self.session.infer(requests[0])
                record_phase(
                    response.metadata, PHASE_COMPUTE, time.monotonic() - started
                )
                self._m_dispatches.inc()
                self._m_shards.inc()
                return [response]
            shard_requests = [
                request.shard(start, stop)
                for request, bounds in zip(requests, plans)
                for start, stop in bounds
            ]
            # Executors pin shards to fixed workers and a wave never exceeds
            # the worker count; packing decides which shards share a wave.
            responses: list[InferenceResponse | None] = [None] * len(shard_requests)
            waves = self._pack_waves(
                [shard.batch_size for shard in shard_requests], self.jobs
            )
            compute_started = time.monotonic()
            for wave in waves:
                for index, response in zip(
                    wave,
                    self._shard_executor.run_shards(
                        [shard_requests[index] for index in wave]
                    ),
                ):
                    responses[index] = response
            compute_s = time.monotonic() - compute_started
        self._m_dispatches.inc()
        self._m_shards.inc(len(shard_requests))
        self._m_compute.observe(compute_s)
        merged = []
        cursor = 0
        for request, bounds in zip(requests, plans):
            merge_started = time.monotonic()
            response = self._merge_request(
                request, responses[cursor : cursor + len(bounds)]
            )
            merge_s = time.monotonic() - merge_started
            # Every request in the dispatch waited for every wave (merging
            # starts only once all shards are back), so the dispatch's
            # compute wall is each request's compute span; the merge span
            # is the request's own.
            record_phase(response.metadata, PHASE_COMPUTE, compute_s)
            record_phase(response.metadata, PHASE_MERGE, merge_s)
            self._m_merge.observe(merge_s)
            merged.append(response)
            cursor += len(bounds)
        return merged

    def _merge_request(
        self, request: InferenceRequest, responses: list[InferenceResponse]
    ) -> InferenceResponse:
        """Merge one request's shard responses (exact, same as a single run)."""
        if len(responses) == 1:
            return responses[0]
        batch = request.batch_size
        timesteps = (
            request.timesteps
            if request.timesteps is not None
            else self.session.timesteps
        )
        predictions = np.concatenate([r.predictions for r in responses])
        spike_counts = np.vstack([r.spike_counts for r in responses])
        counters = responses[0].counters
        for shard in responses[1:]:
            counters = counters.merge(shard.counters)
        # Recompute energy from the merged counters through the primary
        # session's pipeline: identical to a single full-batch run (the
        # static/leakage terms are linear in the batch size).
        energy = self.session.energy_for(counters, batch=batch, timesteps=timesteps)
        accuracy = None
        if request.labels is not None:
            accuracy = float(
                np.mean(predictions == np.asarray(request.labels, dtype=int))
            )
        return InferenceResponse(
            predictions=predictions,
            spike_counts=spike_counts,
            accuracy=accuracy,
            counters=counters,
            energy=energy,
            timesteps=timesteps,
            backend=self.session.backend,
            batch_size=batch,
            jobs=len(responses),
        )
