"""Latency and throughput accounting.

The paper reports performance as speedup per classification (Fig. 11 c/d).
Both hardware models produce a :class:`LatencyReport` describing how long one
classification takes and where the time goes (compute vs. communication vs.
memory), from which throughput and speedups are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.units import format_time

__all__ = ["LatencyReport"]


@dataclass
class LatencyReport:
    """Per-classification latency broken down by named phase."""

    label: str
    phases: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` into ``phase``."""
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds} for {phase!r}")
        self.phases[phase] = self.phases.get(phase, 0.0) + float(seconds)

    @property
    def total_s(self) -> float:
        """Total latency of one classification (s)."""
        return float(sum(self.phases.values()))

    @property
    def throughput_per_s(self) -> float:
        """Classifications per second (0 if the latency is 0)."""
        total = self.total_s
        return 1.0 / total if total > 0 else 0.0

    def speedup_over(self, other: "LatencyReport") -> float:
        """How many times faster this design is than ``other``."""
        if self.total_s == 0:
            raise ZeroDivisionError("cannot compute speedup for a zero-latency report")
        return other.total_s / self.total_s

    def fraction(self, phase: str) -> float:
        """Fraction of the total latency spent in ``phase``."""
        total = self.total_s
        return self.phases.get(phase, 0.0) / total if total else 0.0

    def summary(self) -> str:
        """Multi-line human readable breakdown."""
        lines = [f"LatencyReport {self.label!r}: total {format_time(self.total_s)}"]
        for phase, value in sorted(self.phases.items(), key=lambda kv: -kv[1]):
            share = f"({100 * value / self.total_s:5.1f}%)" if self.total_s else ""
            lines.append(f"  {phase:<16} {format_time(value):>12}  {share}")
        return "\n".join(lines)
