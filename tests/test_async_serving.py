"""The async serving core: pipelined protocol, dynamic batching, resilience.

Four seams of the PR-4 refactor, each held to the established parity bar
(results must be *exactly* what a single :class:`~repro.serve.ChipSession`
returns — parallelism, pipelining and coalescing may change throughput,
never numbers):

* the **wire protocol**: version-2 envelopes with request ids allow several
  requests in flight per connection, while untagged version-1 lines keep
  their strict in-order replies;
* the **pool's** :meth:`~repro.serve.ChipPool.infer_many` dynamic-batching
  seam: many requests coalesce into one executor dispatch and split back
  per request, exactly;
* the **server's** cross-client dynamic batcher, driven through gate
  targets so coalescing is deterministic rather than timing-dependent;
* **client/gateway resilience**: reconnect-and-retry across a server
  restart, non-blocking gateway dispatch, and failure surfacing instead of
  a hung merge.
"""

from __future__ import annotations

import json
import re
import socket
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import ArchitectureConfig
from repro.serve import ChipPool, ChipSession, InferenceRequest
from repro.serve.distributed import (
    EXECUTORS,
    ChipServer,
    GatewayEndpoint,
    InferenceGateway,
    PipelinedSession,
    RemoteServerError,
    RemoteSession,
    parse_endpoint,
)
from repro.serve.schema import (
    ERROR_CANCELLED,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_OVERLOADED,
    PROTOCOL_VERSION,
    request_envelope,
)
from repro.snn import Dense, Network, convert_to_snn

ENERGY_RTOL = 1e-9


def _mlp(seed: int, dims: tuple[int, ...]):
    rng = np.random.default_rng(seed)
    layers = []
    for i, (n_in, n_out) in enumerate(zip(dims[:-1], dims[1:])):
        last = i == len(dims) - 2
        layers.append(
            Dense(
                n_in,
                n_out,
                activation=None if last else "relu",
                use_bias=False,
                rng=rng,
                name=f"fc{i}",
            )
        )
    network = Network((dims[0],), layers, name=f"async-{'x'.join(map(str, dims))}")
    return convert_to_snn(network, rng.random((12, dims[0])))


@pytest.fixture(scope="module")
def workload():
    snn = _mlp(9, (48, 24, 10))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    rng = np.random.default_rng(33)
    inputs = rng.random((13, 48))
    labels = rng.integers(0, 10, size=13)
    return snn, config, inputs, labels


@pytest.fixture(scope="module")
def single_session(workload):
    snn, config, _, _ = workload
    return ChipSession(snn, config=config, timesteps=5, encoder="poisson", seed=21)


def _fresh_session(workload):
    snn, config, _, _ = workload
    return ChipSession(snn, config=config, timesteps=5, encoder="poisson", seed=21)


def _assert_identical(expected, actual):
    np.testing.assert_array_equal(expected.predictions, actual.predictions)
    np.testing.assert_array_equal(expected.spike_counts, actual.spike_counts)
    assert expected.accuracy == actual.accuracy
    e, a = expected.counters.as_dict(), actual.counters.as_dict()
    for name, value in e.items():
        if name == "crossbar_device_energy_j":
            assert a[name] == pytest.approx(value, rel=ENERGY_RTOL)
        else:
            assert a[name] == value, f"counter {name}: {a[name]} != {value}"
    assert actual.energy.total_j == pytest.approx(
        expected.energy.total_j, rel=ENERGY_RTOL
    )


# -- wire protocol ------------------------------------------------------------------


class TestWireProtocol:
    @pytest.fixture(scope="class")
    def served_session(self, workload):
        snn, config, _, _ = workload
        session = ChipSession(snn, config=config, timesteps=5, encoder="poisson", seed=21)
        with ChipServer(session, port=0, workload="wire-test").start() as server:
            yield server

    def test_tagged_requests_pipeline_on_one_connection(
        self, served_session, workload, single_session
    ):
        _, _, inputs, _ = workload
        first = InferenceRequest(inputs=inputs[:4])
        second = InferenceRequest(inputs=inputs[4:9], sample_offset=4)
        with socket.create_connection(served_session.address, timeout=30) as raw:
            stream = raw.makefile("rwb")
            # Both requests go out before either reply is read: the server
            # must accept the pipelined lines and tag each reply with its id.
            for request_id, request in [("a", first), ("b", second)]:
                line = request_envelope(
                    "infer", request_id=request_id, request=request.to_dict()
                )
                stream.write(json.dumps(line).encode() + b"\n")
            stream.flush()
            replies = [json.loads(stream.readline()) for _ in range(2)]
        by_id = {reply["id"]: reply for reply in replies}
        assert set(by_id) == {"a", "b"}
        for reply in replies:
            assert reply["ok"] is True
            assert reply["reply"] == "infer"
            assert reply["v"] == PROTOCOL_VERSION
        expected = single_session.infer(InferenceRequest(inputs=inputs[:9]))
        merged = np.concatenate(
            [
                np.asarray(by_id["a"]["response"]["predictions"]),
                np.asarray(by_id["b"]["response"]["predictions"]),
            ]
        )
        np.testing.assert_array_equal(expected.predictions, merged)

    def test_untagged_v1_lines_still_answered_in_order(self, served_session):
        with socket.create_connection(served_session.address, timeout=30) as raw:
            stream = raw.makefile("rwb")
            stream.write(b'{"op": "ping"}\n{"op": "info"}\n')
            stream.flush()
            ping = json.loads(stream.readline())
            info = json.loads(stream.readline())
        assert ping["ok"] is True and ping["pong"] is True
        assert "id" not in ping
        assert info["ok"] is True
        assert info["info"]["workload"] == "wire-test"
        assert info["info"]["protocol_version"] == PROTOCOL_VERSION

    def test_unsupported_protocol_version_rejected(self, served_session):
        with socket.create_connection(served_session.address, timeout=30) as raw:
            stream = raw.makefile("rwb")
            stream.write(b'{"v": 99, "op": "ping", "id": 1}\n')
            stream.flush()
            reply = json.loads(stream.readline())
        assert reply["ok"] is False
        assert "unsupported protocol version" in reply["error"]
        # The error reply must stay routable: a pipelined client matches
        # replies by id, and the bad line still carried one.
        assert reply["id"] == 1
        assert reply["reply"] == "ping"

    def test_large_request_lines_cross_the_wire(self, served_session, single_session):
        # A production batch serialises to hundreds of kilobytes per line —
        # far past the stdlib stream default of 64 KiB.  Regression test for
        # the server's raised line limit.
        rng = np.random.default_rng(4)
        request = InferenceRequest(inputs=rng.random((600, 48)))
        expected = single_session.infer(request)
        with RemoteSession.connect(served_session.address, timeout=60) as remote:
            response = remote.infer(request)
        np.testing.assert_array_equal(expected.predictions, response.predictions)
        np.testing.assert_array_equal(expected.spike_counts, response.spike_counts)

    def test_request_envelope_shape(self):
        envelope = request_envelope("infer", request_id=7, request={"inputs": [[1.0]]})
        assert envelope == {
            "v": PROTOCOL_VERSION,
            "op": "infer",
            "id": 7,
            "request": {"inputs": [[1.0]]},
        }
        assert "id" not in request_envelope("ping")


# -- pool dynamic batching ----------------------------------------------------------


class TestPoolInferMany:
    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_coalesced_requests_split_back_exactly(
        self, workload, single_session, executor
    ):
        snn, config, inputs, labels = workload
        requests = [
            InferenceRequest(inputs=inputs[:5], labels=labels[:5]),
            InferenceRequest(inputs=inputs, labels=labels),
            InferenceRequest(inputs=inputs[:1]),
            InferenceRequest(inputs=inputs[:6], timesteps=3),
        ]
        expected = [single_session.infer(request) for request in requests]
        with ChipPool(
            snn,
            jobs=3,
            config=config,
            timesteps=5,
            encoder="poisson",
            seed=21,
            executor=executor,
        ) as pool:
            responses = pool.infer_many(requests)
        assert len(responses) == len(requests)
        for want, got in zip(expected, responses):
            _assert_identical(want, got)

    def test_more_requests_than_jobs_run_in_waves(self, workload, single_session):
        snn, config, inputs, labels = workload
        requests = [
            InferenceRequest(inputs=inputs[i : i + 2], labels=labels[i : i + 2],
                             sample_offset=i)
            for i in range(0, 10, 2)
        ]
        expected = [single_session.infer(request) for request in requests]
        with ChipPool(
            snn, jobs=2, config=config, timesteps=5, encoder="poisson", seed=21
        ) as pool:
            responses = pool.infer_many(requests)
        for want, got in zip(expected, responses):
            _assert_identical(want, got)

    def test_shard_allocation_properties(self, workload):
        snn, config, inputs, _ = workload

        def req(n):
            return InferenceRequest(inputs=inputs[:n])

        with ChipPool(
            snn, jobs=4, config=config, timesteps=5, encoder="poisson", seed=21
        ) as pool:
            # Proportional with a floor of one shard per request.
            assert pool._shard_allocation([req(8), req(2)]) == [3, 1]
            # A batch-1 request can never be split further.
            assert pool._shard_allocation([req(1), req(1), req(1)]) == [1, 1, 1]
            # One request soaks up every worker slot.
            assert pool._shard_allocation([req(13)]) == [4]
            # More requests than slots: one shard each (waves handle the rest).
            assert pool._shard_allocation([req(2)] * 6) == [1] * 6
        with ChipPool(
            snn, jobs=2, config=config, timesteps=5, encoder="poisson", seed=21
        ) as pool:
            with pytest.raises(ValueError, match="at least one request"):
                pool.infer_many([])

    def test_infer_still_matches_single_session(self, workload, single_session):
        snn, config, inputs, labels = workload
        request = InferenceRequest(inputs=inputs, labels=labels)
        expected = single_session.infer(request)
        with ChipPool(
            snn, jobs=3, config=config, timesteps=5, encoder="poisson", seed=21
        ) as pool:
            response = pool.infer(request)
        assert response.jobs == 3
        _assert_identical(expected, response)

    def test_oversized_request_splits_into_sub_shards(self, workload):
        # Shard-level re-batching: a request larger than the ideal makespan
        # is split into several sub-shards instead of pinning one worker
        # with a monolithic whole-request shard.
        snn, config, inputs, _ = workload

        def req(n):
            return InferenceRequest(inputs=np.random.default_rng(1).random((n, 48)))

        with ChipPool(
            snn, jobs=2, config=config, timesteps=5, encoder="poisson", seed=21
        ) as pool:
            # 13 + 2 samples on 2 workers: ideal makespan 8, so the big
            # request becomes 2 sub-shards (7+6) and the small stays whole.
            assert pool._shard_allocation([req(13), req(2)]) == [2, 1]
            # 100 + 2 on 2 workers: the big request spills across waves in
            # balanced halves rather than one 100-sample shard.
            assert pool._shard_allocation([req(100), req(2)]) == [2, 1]
            # 6 + 2 on 4 workers fit one wave: big sub-shards (2+2+2) pack
            # worker slots alongside the small request.
        with ChipPool(
            snn, jobs=4, config=config, timesteps=5, encoder="poisson", seed=21
        ) as pool:
            assert pool._shard_allocation([req(6), req(2)]) == [3, 1]

    def test_wave_packing_is_largest_first_and_deterministic(self):
        # Sorting by descending size and chunking minimises the summed wave
        # maxima; the stable sort keeps equal sizes in plan order.
        assert ChipPool._pack_waves([7, 6, 2, 2], 2) == [[0, 1], [2, 3]]
        assert ChipPool._pack_waves([2, 7, 3], 2) == [[1, 2], [0]]
        assert ChipPool._pack_waves([4, 4, 4], 3) == [[0, 1, 2]]
        assert ChipPool._pack_waves([1], 4) == [[0]]

    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_mixed_small_and_oversized_requests_split_back_exactly(
        self, workload, single_session, executor
    ):
        # The acceptance bar for shard-level re-batching: an oversized
        # request (split into sub-shards) coalesced with small requests must
        # return responses exactly identical to serial single-session runs.
        snn, config, inputs, labels = workload
        requests = [
            InferenceRequest(inputs=inputs, labels=labels),  # oversized: 13
            InferenceRequest(inputs=inputs[:2], sample_offset=4),  # small
            InferenceRequest(inputs=inputs[:3], labels=labels[:3], timesteps=3),
        ]
        expected = [single_session.infer(request) for request in requests]
        with ChipPool(
            snn,
            jobs=2,
            config=config,
            timesteps=5,
            encoder="poisson",
            seed=21,
            executor=executor,
        ) as pool:
            # The oversized request really is re-batched into sub-shards.
            assert pool._shard_allocation(requests)[0] > 1
            responses = pool.infer_many(requests)
        for want, got in zip(expected, responses):
            _assert_identical(want, got)


# -- server-side dynamic batching ---------------------------------------------------


class _GateTarget:
    """Inference target that blocks until released and records dispatch sizes.

    Lets a test hold the server's single work thread busy while more
    requests queue up, making cross-client coalescing deterministic instead
    of timing-dependent.
    """

    def __init__(self, session: ChipSession):
        self.session = session
        self.entered = threading.Event()
        self.release = threading.Event()
        self.dispatches: list[int] = []

    @property
    def backend(self) -> str:
        return self.session.backend

    @property
    def timesteps(self) -> int:
        return self.session.timesteps

    def infer(self, request):
        return self.infer_many([request])[0]

    def infer_many(self, requests):
        self.entered.set()
        assert self.release.wait(timeout=30), "gate never released"
        self.dispatches.append(len(requests))
        return [self.session.infer(request) for request in requests]


class TestServerDynamicBatching:
    def _wait_for_queue(self, server: ChipServer, depth: int) -> None:
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if server._queue is not None and server._queue.qsize() >= depth:
                return
            time.sleep(0.005)
        raise AssertionError(f"server queue never reached depth {depth}")

    def test_queued_compatible_requests_coalesce(self, workload, single_session):
        _, _, inputs, labels = workload
        gate = _GateTarget(_fresh_session(workload))
        first = InferenceRequest(inputs=inputs[:3], labels=labels[:3])
        second = InferenceRequest(inputs=inputs, labels=labels)
        third = InferenceRequest(inputs=inputs[:6], sample_offset=7)
        with ChipServer(gate, port=0, workload="gate").start() as server:
            with PipelinedSession.connect(server.address, connections=1) as client_a:
                with PipelinedSession.connect(server.address, connections=1) as client_b:
                    future_1 = client_a.submit(first)
                    # While the work thread is gated on the first dispatch,
                    # two more requests (one per client) pile up in the
                    # server queue.
                    assert gate.entered.wait(timeout=10), "first dispatch never ran"
                    future_2 = client_a.submit(second)
                    future_3 = client_b.submit(third)
                    self._wait_for_queue(server, 2)
                    gate.release.set()
                    responses = [
                        future.result(timeout=60)
                        for future in (future_1, future_2, future_3)
                    ]
        # The gated head dispatched alone; the two queued requests (from two
        # different clients) coalesced into one dispatch.
        assert gate.dispatches == [1, 2]
        assert server.stats["max_coalesced"] == 2
        assert server.stats["requests"] == 3
        for request, response in zip((first, second, third), responses):
            _assert_identical(single_session.infer(request), response)

    def test_incompatible_timesteps_never_coalesce(self, workload, single_session):
        _, _, inputs, _ = workload
        gate = _GateTarget(_fresh_session(workload))
        plain = InferenceRequest(inputs=inputs[:3])
        override = InferenceRequest(inputs=inputs[:3], timesteps=3)
        with ChipServer(gate, port=0, workload="gate").start() as server:
            with PipelinedSession.connect(server.address, connections=1) as client:
                futures = [client.submit(plain)]
                assert gate.entered.wait(timeout=10), "first dispatch never ran"
                futures += [client.submit(plain), client.submit(override)]
                self._wait_for_queue(server, 2)
                gate.release.set()
                responses = [future.result(timeout=60) for future in futures]
        # The differing timesteps override must stay in its own dispatch.
        assert gate.dispatches == [1, 1, 1]
        _assert_identical(single_session.infer(override), responses[-1])
        assert responses[-1].timesteps == 3

    def test_concurrent_clients_match_single_session(self, workload, single_session):
        # No gating: whatever interleaving/batching happens under real
        # concurrency, every client must still get the single-session answer.
        snn, config, inputs, labels = workload
        request = InferenceRequest(inputs=inputs, labels=labels)
        expected = single_session.infer(request)
        with ChipPool(
            snn, jobs=2, config=config, timesteps=5, encoder="poisson", seed=21
        ) as pool:
            with ChipServer(pool, port=0, workload="pool").start() as server:

                def one_client(_):
                    with PipelinedSession.connect(server.address) as remote:
                        return remote.infer_many([request] * 3)

                with ThreadPoolExecutor(max_workers=2) as clients:
                    batches = list(clients.map(one_client, range(2)))
        for batch in batches:
            for response in batch:
                _assert_identical(expected, response)


# -- load control: backpressure, deadlines, cancellation ----------------------------


def _wait_for_info(client: PipelinedSession, predicate, timeout: float = 20.0):
    """Poll the server's info op until ``predicate(info)`` holds."""
    deadline = time.monotonic() + timeout
    info: dict = {}
    while time.monotonic() < deadline:
        info = client.info(refresh=True)
        if predicate(info):
            return info
        time.sleep(0.01)
    raise AssertionError(f"server info never satisfied the predicate; last: {info}")


class TestLoadControl:
    def test_server_validates_queue_arguments(self, workload):
        session = _fresh_session(workload)
        with pytest.raises(ValueError, match="max_queue must be >= 0"):
            ChipServer(session, port=0, max_queue=-1)
        with pytest.raises(ValueError, match="shed_policy must be one of"):
            ChipServer(session, port=0, shed_policy="bogus")

    def test_info_reports_load_stats_and_start_time(self, workload):
        before = time.time()
        with ChipServer(
            _fresh_session(workload), port=0, max_queue=7, shed_policy="block"
        ) as server:
            info = server.info()
        assert info["protocol_version"] == PROTOCOL_VERSION
        assert info["max_queue"] == 7
        assert info["shed_policy"] == "block"
        assert info["queue_depth"] == 0
        assert info["inflight"] == 0
        assert before <= info["started_at"] <= time.time()
        assert info["uptime_s"] >= 0.0
        for counter in ("shed", "deadline_exceeded", "cancelled"):
            assert info["stats"][counter] == 0

    def test_flood_sheds_with_structured_reply_and_bounded_queue(
        self, workload, single_session
    ):
        # The acceptance scenario: queue bound N, 4N submitted.  The head
        # request occupies the (gated) work thread, N fill the queue, the
        # rest must come back as structured `overloaded` errors — and every
        # admitted request must return the exact serial answer.
        _, _, inputs, _ = workload
        n_bound = 2
        gate = _GateTarget(_fresh_session(workload))
        head = InferenceRequest(inputs=inputs[:3])
        admitted = [
            InferenceRequest(inputs=inputs[3:8], sample_offset=3),
            InferenceRequest(inputs=inputs[8:13], sample_offset=8),
        ]
        flood = [InferenceRequest(inputs=inputs[:2]) for _ in range(4 * n_bound - 1 - n_bound)]
        with ChipServer(
            gate, port=0, workload="bounded", max_queue=n_bound
        ).start() as server:
            with PipelinedSession.connect(server.address, connections=1) as client:
                future_head = client.submit(head)
                assert gate.entered.wait(timeout=10), "head dispatch never ran"
                admitted_futures = []
                for depth, request in enumerate(admitted, start=1):
                    admitted_futures.append(client.submit(request))
                    _wait_for_info(client, lambda i, d=depth: i["queue_depth"] == d)
                shed_errors = []
                for request in flood:
                    with pytest.raises(RemoteServerError) as excinfo:
                        client.submit(request).result(timeout=20)
                    shed_errors.append(excinfo.value)
                info = client.info(refresh=True)
                # The bound holds while the flood hammers the full queue.
                assert info["queue_depth"] == n_bound
                gate.release.set()
                results = [future_head.result(timeout=60)] + [
                    future.result(timeout=60) for future in admitted_futures
                ]
                final = client.info(refresh=True)
        assert len(shed_errors) == 4 * n_bound - 1 - n_bound  # 5 of 8 shed
        for error in shed_errors:
            assert error.code == ERROR_OVERLOADED
            assert "queue is full" in str(error)
        for request, response in zip([head, *admitted], results):
            _assert_identical(single_session.infer(request), response)
        assert final["stats"]["shed"] == len(shed_errors)
        assert final["stats"]["requests"] == 1 + n_bound
        assert final["queue_depth"] == 0

    def test_block_policy_applies_backpressure_without_shedding(
        self, workload, single_session
    ):
        _, _, inputs, _ = workload
        gate = _GateTarget(_fresh_session(workload))
        requests = [
            InferenceRequest(inputs=inputs[:3]),
            InferenceRequest(inputs=inputs[3:6], sample_offset=3),
            InferenceRequest(inputs=inputs[6:9], sample_offset=6),
        ]
        with ChipServer(
            gate, port=0, workload="blocking", max_queue=1, shed_policy="block"
        ).start() as server:
            with PipelinedSession.connect(server.address, connections=1) as client:
                futures = [client.submit(requests[0])]
                assert gate.entered.wait(timeout=10), "head dispatch never ran"
                futures.append(client.submit(requests[1]))
                _wait_for_info(client, lambda i: i["queue_depth"] == 1)
                # The third submit blocks in admission instead of shedding:
                # the queue bound holds and nothing errors.
                futures.append(client.submit(requests[2]))
                time.sleep(0.2)
                info = client.info(refresh=True)
                assert info["queue_depth"] == 1
                assert info["stats"]["shed"] == 0
                assert not futures[2].done(), "blocked request resolved early"
                gate.release.set()
                responses = [future.result(timeout=60) for future in futures]
                final = client.info(refresh=True)
        for request, response in zip(requests, responses):
            _assert_identical(single_session.infer(request), response)
        assert final["stats"]["shed"] == 0
        assert final["stats"]["requests"] == 3

    def test_cancel_reaches_request_blocked_in_admission(
        self, workload, single_session
    ):
        # A cancel must also reach a request still blocked in block-policy
        # admission: it is never enqueued, never dispatched, and the server
        # does not burn chip compute on an answer nobody will read.
        _, _, inputs, _ = workload
        gate = _GateTarget(_fresh_session(workload))
        head = InferenceRequest(inputs=inputs[:3])
        queued = InferenceRequest(inputs=inputs[3:6], sample_offset=3)
        blocked = InferenceRequest(inputs=inputs[6:9], sample_offset=6)
        with ChipServer(
            gate, port=0, workload="cancel-blocked", max_queue=1, shed_policy="block"
        ).start() as server:
            with PipelinedSession.connect(server.address, connections=1) as client:
                future_head = client.submit(head)
                assert gate.entered.wait(timeout=10), "head dispatch never ran"
                future_queued = client.submit(queued)
                _wait_for_info(client, lambda i: i["queue_depth"] == 1)
                future_blocked = client.submit(blocked)
                deadline = time.monotonic() + 10
                while len(server._space_waiters) < 1:  # noqa: SLF001
                    assert time.monotonic() < deadline, "third request never blocked"
                    time.sleep(0.005)
                assert future_blocked.cancel(), "blocked future refused to cancel"
                _wait_for_info(client, lambda i: i["stats"]["cancelled"] == 1)
                # The cancel unblocks the admission immediately — while the
                # worker is still gated and the queue still full — and
                # leaves no stale entry in the waiter queue.
                deadline = time.monotonic() + 10
                while server._space_waiters:  # noqa: SLF001
                    assert time.monotonic() < deadline, (
                        "cancelled admission still parked in the waiter queue"
                    )
                    time.sleep(0.005)
                gate.release.set()
                _assert_identical(
                    single_session.infer(head), future_head.result(timeout=60)
                )
                _assert_identical(
                    single_session.infer(queued), future_queued.result(timeout=60)
                )
                # Regression: a drained queue with a historical cancel must
                # admit new work (no deadlock on a stale waiter entry).
                _wait_for_info(client, lambda i: i["queue_depth"] == 0)
                _assert_identical(
                    single_session.infer(head),
                    client.submit(head).result(timeout=60),
                )
                final = client.info(refresh=True)
        assert final["stats"]["cancelled"] == 1
        assert final["stats"]["requests"] == 3, "cancelled request was computed"
        assert final["queue_depth"] == 0
        assert sum(gate.dispatches) == 3, "cancelled request reached the work thread"

    def test_block_policy_admission_is_fifo_under_sustained_load(
        self, workload, single_session
    ):
        # The freed slot is handed to the longest-blocked waiter (slot
        # transfer at wake time), so backpressure holds arrival order
        # instead of letting fresh arrivals starve old ones.
        _, _, inputs, _ = workload

        class _RecordingGate(_GateTarget):
            def __init__(self, session):
                super().__init__(session)
                self.offsets: list[int] = []

            def infer_many(self, requests):
                responses = super().infer_many(requests)
                self.offsets.extend(r.sample_offset for r in requests)
                return responses

        gate = _RecordingGate(_fresh_session(workload))
        requests = [
            InferenceRequest(inputs=inputs[i : i + 3], sample_offset=i)
            for i in (0, 3, 6, 9)
        ]
        with ChipServer(
            gate, port=0, workload="fifo", max_queue=1, shed_policy="block"
        ).start() as server:
            with PipelinedSession.connect(server.address, connections=1) as client:
                futures = [client.submit(requests[0])]
                assert gate.entered.wait(timeout=10), "head dispatch never ran"
                futures.append(client.submit(requests[1]))
                _wait_for_info(client, lambda i: i["queue_depth"] == 1)
                for expected_waiters in (1, 2):
                    futures.append(client.submit(requests[len(futures)]))
                    deadline = time.monotonic() + 10
                    while len(server._space_waiters) < expected_waiters:  # noqa: SLF001
                        assert time.monotonic() < deadline, (
                            f"request never joined the waiter queue "
                            f"({expected_waiters})"
                        )
                        time.sleep(0.005)
                gate.release.set()
                responses = [future.result(timeout=60) for future in futures]
        for request, response in zip(requests, responses):
            _assert_identical(single_session.infer(request), response)
        assert gate.offsets == [0, 3, 6, 9], (
            f"backpressure reordered arrivals: {gate.offsets}"
        )

    def test_deadline_expires_before_dispatch(self, workload, single_session):
        _, _, inputs, _ = workload
        gate = _GateTarget(_fresh_session(workload))
        head = InferenceRequest(inputs=inputs[:3])
        doomed = InferenceRequest(inputs=inputs[3:6], sample_offset=3)
        with ChipServer(gate, port=0, workload="deadline").start() as server:
            with PipelinedSession.connect(server.address, connections=1) as client:
                future_head = client.submit(head)
                assert gate.entered.wait(timeout=10), "head dispatch never ran"
                future_doomed = client.submit(doomed, deadline_s=0.2)
                _wait_for_info(client, lambda i: i["queue_depth"] == 1)
                time.sleep(0.35)  # sail past the deadline while gated
                gate.release.set()
                with pytest.raises(RemoteServerError) as excinfo:
                    future_doomed.result(timeout=20)
                assert excinfo.value.code == ERROR_DEADLINE_EXCEEDED
                _assert_identical(
                    single_session.infer(head), future_head.result(timeout=60)
                )
                final = client.info(refresh=True)
        assert final["stats"]["deadline_exceeded"] == 1
        # The expired request never reached the work thread.
        assert gate.dispatches == [1]

    def test_invalid_deadline_is_rejected(self, workload):
        with ChipServer(
            _fresh_session(workload), port=0, workload="validate"
        ).start() as server:
            with PipelinedSession.connect(server.address, connections=1) as client:
                with pytest.raises(
                    RemoteServerError, match="deadline_s must be a positive number"
                ):
                    client.submit(
                        InferenceRequest(inputs=[[1.0] * 48]), deadline_s=-1
                    ).result(timeout=20)

    def test_cancel_removes_queued_request(self, workload, single_session):
        # Satellite: PipelinedSession future cancellation.  Cancelling the
        # future sends a cancel op; the server drops the queued work (it
        # never reaches the work thread) and counts the cancellation.
        _, _, inputs, _ = workload
        gate = _GateTarget(_fresh_session(workload))
        head = InferenceRequest(inputs=inputs[:3])
        doomed = InferenceRequest(inputs=inputs[3:6], sample_offset=3)
        with ChipServer(gate, port=0, workload="cancel").start() as server:
            with PipelinedSession.connect(server.address, connections=1) as client:
                future_head = client.submit(head)
                assert gate.entered.wait(timeout=10), "head dispatch never ran"
                future_doomed = client.submit(doomed)
                _wait_for_info(client, lambda i: i["queue_depth"] == 1)
                assert future_doomed.cancel(), "pending future refused to cancel"
                with pytest.raises(CancelledError):
                    future_doomed.result(timeout=5)
                _wait_for_info(client, lambda i: i["stats"]["cancelled"] == 1)
                gate.release.set()
                _assert_identical(
                    single_session.infer(head), future_head.result(timeout=60)
                )
                # A finished future can no longer cancel.
                assert not future_head.cancel()
                final = client.info(refresh=True)
        assert final["stats"]["cancelled"] == 1
        assert final["stats"]["requests"] == 1
        assert gate.dispatches == [1], "cancelled request was still dispatched"

    def test_cancel_yields_structured_cancelled_reply_on_the_wire(self, workload):
        # The raw protocol view of cancellation: the cancelled infer's reply
        # is a structured error carrying code "cancelled" (not a dropped
        # line), and the cancel op acknowledges with cancelled=true.
        _, _, inputs, _ = workload
        gate = _GateTarget(_fresh_session(workload))
        head = InferenceRequest(inputs=inputs[:2])
        queued = InferenceRequest(inputs=inputs[2:4], sample_offset=2)
        with ChipServer(gate, port=0, workload="cancel-wire").start() as server:
            with socket.create_connection(server.address, timeout=30) as raw:
                stream = raw.makefile("rwb")

                def send(envelope):
                    stream.write(json.dumps(envelope).encode() + b"\n")
                    stream.flush()

                send(request_envelope("infer", request_id="a", request=head.to_dict()))
                assert gate.entered.wait(timeout=10), "head dispatch never ran"
                send(
                    request_envelope("infer", request_id="b", request=queued.to_dict())
                )
                deadline = time.monotonic() + 10
                while server._backlog < 1:  # noqa: SLF001 - in-process observation
                    assert time.monotonic() < deadline, "request b never queued"
                    time.sleep(0.005)
                send(request_envelope("cancel", request_id="c", target="b"))
                replies = {
                    reply["id"]: reply
                    for reply in (json.loads(stream.readline()) for _ in range(2))
                }
                gate.release.set()
                final = json.loads(stream.readline())
        assert set(replies) == {"b", "c"}
        assert replies["c"]["ok"] is True and replies["c"]["cancelled"] is True
        assert replies["b"]["ok"] is False
        assert replies["b"]["code"] == ERROR_CANCELLED
        assert "cancelled" in replies["b"]["error"]
        assert final["id"] == "a" and final["ok"] is True

    def test_cancel_after_dispatch_reports_false_and_delivers_result(
        self, workload, single_session
    ):
        # Dispatch wins: once a request is on the work thread, cancel must
        # report false, the computed result must still be delivered, and
        # the cancelled/requests counters must not double-count.
        _, _, inputs, _ = workload
        gate = _GateTarget(_fresh_session(workload))
        head = InferenceRequest(inputs=inputs[:2])
        with ChipServer(gate, port=0, workload="dispatch-wins").start() as server:
            with socket.create_connection(server.address, timeout=30) as raw:
                stream = raw.makefile("rwb")
                stream.write(
                    json.dumps(
                        request_envelope("infer", request_id="a", request=head.to_dict())
                    ).encode()
                    + b"\n"
                )
                stream.flush()
                assert gate.entered.wait(timeout=10), "head dispatch never ran"
                stream.write(
                    json.dumps(
                        request_envelope("cancel", request_id="c", target="a")
                    ).encode()
                    + b"\n"
                )
                stream.flush()
                cancel_reply = json.loads(stream.readline())
                gate.release.set()
                infer_reply = json.loads(stream.readline())
                final = server.stats.copy()
        assert cancel_reply["id"] == "c"
        assert cancel_reply["ok"] is True and cancel_reply["cancelled"] is False
        assert infer_reply["id"] == "a" and infer_reply["ok"] is True
        expected = single_session.infer(head)
        np.testing.assert_array_equal(
            np.asarray(infer_reply["response"]["predictions"]), expected.predictions
        )
        assert final["cancelled"] == 0
        assert final["requests"] == 1

    def test_cancel_op_with_unknown_target_reports_false(self, workload):
        with ChipServer(
            _fresh_session(workload), port=0, workload="cancel-miss"
        ).start() as server:
            with socket.create_connection(server.address, timeout=10) as raw:
                stream = raw.makefile("rwb")
                envelope = request_envelope("cancel", request_id=1, target=999)
                stream.write(json.dumps(envelope).encode() + b"\n")
                stream.flush()
                reply = json.loads(stream.readline())
        assert reply["ok"] is True
        assert reply["cancelled"] is False
        assert reply["target"] == 999


# -- structured error replies (client side) ------------------------------------------


def _canned_reply_server(reply_line: bytes):
    """A one-shot fake server answering every request line with ``reply_line``."""
    srv = socket.create_server(("127.0.0.1", 0))

    def run():
        try:
            conn, _ = srv.accept()
        except OSError:
            return
        with conn:
            stream = conn.makefile("rwb")
            while True:
                line = stream.readline()
                if not line:
                    return
                stream.write(reply_line + b"\n")
                stream.flush()

    threading.Thread(target=run, daemon=True).start()
    return srv


class TestStructuredErrorReplies:
    def test_remote_session_raises_on_structured_error(self):
        srv = _canned_reply_server(
            b'{"ok": false, "error": "server queue is full; request shed", '
            b'"code": "overloaded"}'
        )
        try:
            remote = RemoteSession(*srv.getsockname()[:2], timeout=10, retries=0)
            with pytest.raises(RemoteServerError, match="queue is full") as excinfo:
                remote.infer(InferenceRequest(inputs=[[1.0, 2.0]]))
            assert excinfo.value.code == ERROR_OVERLOADED
            remote.close()
        finally:
            srv.close()

    def test_remote_session_raises_on_unknown_error_shape(self):
        # An error reply with no message and no code must still raise —
        # never hang, never be mistaken for success.
        srv = _canned_reply_server(b'{"ok": false}')
        try:
            remote = RemoteSession(*srv.getsockname()[:2], timeout=10, retries=0)
            with pytest.raises(RemoteServerError, match="unknown server error") as excinfo:
                remote.infer(InferenceRequest(inputs=[[1.0, 2.0]]))
            assert excinfo.value.code is None
            remote.close()
        finally:
            srv.close()

    def test_pipelined_session_raises_on_structured_error(self, workload):
        # Against a real server: shed replies surface through submit()
        # futures with their code intact (exercised via a full queue in
        # TestLoadControl; here the cheap path — an invalid op).
        with ChipServer(
            _fresh_session(workload), port=0, workload="errors"
        ).start() as server:
            with PipelinedSession.connect(server.address, connections=1) as client:
                future = client._submit_op("definitely-not-an-op")
                with pytest.raises(RemoteServerError, match="unknown op"):
                    future.result(timeout=20)


class TestParseEndpoint:
    @pytest.mark.parametrize("bad", ["host:0", "host:-7", "127.0.0.1:65536"])
    def test_out_of_range_ports_name_the_endpoint_string(self, bad):
        with pytest.raises(ValueError, match=re.escape(repr(bad))) as excinfo:
            parse_endpoint(bad)
        assert "[1, 65535]" in str(excinfo.value)

    @pytest.mark.parametrize("bad", ["host:seventy", "host:7.5", "host:"])
    def test_non_numeric_ports_name_the_endpoint_string(self, bad):
        with pytest.raises(ValueError, match=re.escape(repr(bad))) as excinfo:
            parse_endpoint(bad)
        assert "must be an integer" in str(excinfo.value)


# -- connection resilience ----------------------------------------------------------


class TestReconnect:
    def test_remote_session_survives_server_restart(self, workload, single_session):
        _, _, inputs, _ = workload
        request = InferenceRequest(inputs=inputs[:4])
        expected = single_session.infer(request)
        server = ChipServer(_fresh_session(workload), port=0, workload="restart").start()
        host, port = server.address
        remote = RemoteSession(host, port, timeout=30)
        try:
            _assert_identical(expected, remote.infer(request))
            # Kill the server: the session now holds a dead socket.
            server.close()
            reborn = ChipServer(
                _fresh_session(workload), host=host, port=port, workload="restart"
            ).start()
            try:
                # Idempotent ops reconnect and retry transparently.
                assert remote.ping()
                assert remote.info(refresh=True)["workload"] == "restart"
                _assert_identical(expected, remote.infer(request))
            finally:
                reborn.close()
        finally:
            remote.close()
            server.close()

    def test_retries_zero_disables_resilience(self, workload):
        _, _, inputs, _ = workload
        server = ChipServer(_fresh_session(workload), port=0, workload="fragile").start()
        host, port = server.address
        remote = RemoteSession(host, port, timeout=30, retries=0)
        try:
            assert remote.ping()
            server.close()
            reborn = ChipServer(
                _fresh_session(workload), host=host, port=port, workload="fragile"
            ).start()
            try:
                with pytest.raises(ConnectionError):
                    remote.ping()
            finally:
                reborn.close()
        finally:
            remote.close()
            server.close()

    def test_pipelined_session_survives_server_restart(self, workload, single_session):
        _, _, inputs, _ = workload
        request = InferenceRequest(inputs=inputs[:4])
        expected = single_session.infer(request)
        server = ChipServer(_fresh_session(workload), port=0, workload="restart").start()
        host, port = server.address
        pipelined = PipelinedSession(host, port, timeout=30)
        try:
            _assert_identical(expected, pipelined.infer(request))
            server.close()
            reborn = ChipServer(
                _fresh_session(workload), host=host, port=port, workload="restart"
            ).start()
            try:
                _assert_identical(expected, pipelined.infer(request))
            finally:
                reborn.close()
        finally:
            pipelined.close()
            server.close()

    def test_slow_server_raises_timeout_without_retry(self, workload):
        # A slow server is not a dead one: the timeout must surface as a
        # TimeoutError after ONE attempt — resending would duplicate work.
        _, _, inputs, _ = workload
        gate = _GateTarget(_fresh_session(workload))
        with ChipServer(gate, port=0, workload="slow").start() as server:
            remote = RemoteSession(*server.address, timeout=0.4)
            try:
                started = time.monotonic()
                with pytest.raises(TimeoutError):
                    remote.infer(InferenceRequest(inputs=inputs[:2]))
                elapsed = time.monotonic() - started
                # One timeout window, not two (no retry of the slow request).
                assert elapsed < 0.75, f"timed out after {elapsed:.2f}s — retried?"
            finally:
                gate.release.set()
                remote.close()
        assert gate.dispatches == [1], "the timed-out request was re-dispatched"

    def test_idle_pipelined_connection_stays_alive(self, workload, single_session):
        # The pipelined client's timeout governs connection establishment
        # only; an established connection idle for longer than the timeout
        # must keep working (a long-lived gateway endpoint is mostly idle).
        _, _, inputs, _ = workload
        request = InferenceRequest(inputs=inputs[:3])
        expected = single_session.infer(request)
        with ChipServer(
            _fresh_session(workload), port=0, workload="idle"
        ).start() as server:
            with PipelinedSession(*server.address, timeout=0.3) as pipelined:
                _assert_identical(expected, pipelined.infer(request))
                time.sleep(0.6)  # well past the (establishment) timeout
                _assert_identical(expected, pipelined.infer(request))

    def test_fire_and_forget_shutdown_still_stops_server(self, workload):
        # An operator script may send the shutdown op and hang up without
        # reading the acknowledgement; the stop must not be lost with it.
        server = ChipServer(_fresh_session(workload), port=0, workload="ff").start()
        with socket.create_connection(server.address, timeout=10) as raw:
            raw.sendall(b'{"op": "shutdown"}\n')
        deadline = time.monotonic() + 10
        while server._thread.is_alive() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not server._thread.is_alive(), "server kept serving after shutdown op"
        server.close()

    def test_closed_sessions_reject_use(self, workload):
        server = ChipServer(_fresh_session(workload), port=0, workload="closing").start()
        remote = RemoteSession(*server.address)
        remote.close()
        with pytest.raises(RuntimeError, match="closed"):
            remote.ping()
        pipelined = PipelinedSession(*server.address)
        pipelined.close()
        pipelined.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pipelined.ping()
        server.close()


# -- gateway ------------------------------------------------------------------------


class _FailingTarget:
    capacity = 1

    def infer(self, request):
        raise RuntimeError("endpoint exploded mid-batch")


class _SlowTarget:
    capacity = 1

    def __init__(self, session, delay_s):
        self._session = session
        self._delay_s = delay_s

    def infer(self, request):
        time.sleep(self._delay_s)
        return self._session.infer(request)


class TestAsyncGateway:
    def test_zero_capacity_endpoint_rejected(self, workload, single_session):
        with pytest.raises(ValueError, match="capacity must be > 0, got 0"):
            GatewayEndpoint(target=single_session, capacity=0)

    def test_single_endpoint_bypasses_sharding(self, workload, single_session):
        snn, config, inputs, labels = workload
        request = InferenceRequest(inputs=inputs, labels=labels)
        expected = single_session.infer(request)
        with InferenceGateway([_fresh_session(workload)], name="solo") as gateway:
            plan = gateway.shard_plan(request.batch_size)
            assert [(shard.start, shard.stop) for shard in plan] == [(0, 13)]
            response = gateway.infer(request)
        _assert_identical(expected, response)
        assert response.metadata["gateway"] == "solo"

    def test_failing_endpoint_surfaces_instead_of_hanging(self, workload):
        good = _fresh_session(workload)
        _, _, inputs, _ = workload
        with InferenceGateway(
            [
                GatewayEndpoint(target=good, capacity=1, name="good"),
                GatewayEndpoint(target=_FailingTarget(), capacity=1, name="bad"),
            ]
        ) as gateway:
            future = gateway.submit(InferenceRequest(inputs=inputs))
            with pytest.raises(RuntimeError, match="'bad' failed on shard"):
                future.result(timeout=30)

    def test_pipelined_failures_resolve_every_batch(self, workload):
        # Regression: a shard failure cancels its pending sibling, and
        # Future.cancel() runs the sibling's done-callback inline on the
        # failing thread — the merge state must survive that re-entrancy.
        # Several pipelined batches keep shard futures queued behind the
        # per-endpoint locks so cancellations actually hit pending futures.
        _, _, inputs, _ = workload
        slow_good = _SlowTarget(_fresh_session(workload), delay_s=0.05)
        with InferenceGateway(
            [
                GatewayEndpoint(target=slow_good, capacity=1, name="good"),
                GatewayEndpoint(target=_FailingTarget(), capacity=1, name="bad"),
            ]
        ) as gateway:
            futures = [
                gateway.submit(InferenceRequest(inputs=inputs)) for _ in range(6)
            ]
            for future in futures:
                with pytest.raises(RuntimeError, match="'bad' failed on shard"):
                    future.result(timeout=30)

    def test_mismatched_endpoints_error_instead_of_hanging(self, workload):
        # Endpoints serving different networks violate the operator
        # contract; the resulting merge error must reach the caller, not
        # disappear inside a future callback.
        snn, config, inputs, _ = workload
        other_snn = _mlp(17, (48, 20, 6))  # different output width
        a = ChipSession(snn, config=config, timesteps=5, encoder="poisson", seed=21)
        b = ChipSession(
            other_snn, config=config, timesteps=5, encoder="poisson", seed=21
        )
        with InferenceGateway(
            [
                GatewayEndpoint(target=a, capacity=1, name="a"),
                GatewayEndpoint(target=b, capacity=1, name="b"),
            ]
        ) as gateway:
            with pytest.raises(Exception):  # noqa: B017 - any error beats a hang
                gateway.submit(InferenceRequest(inputs=inputs)).result(timeout=30)

    def test_submit_is_non_blocking_and_batches_pipeline(
        self, workload, single_session
    ):
        _, _, inputs, labels = workload
        request = InferenceRequest(inputs=inputs, labels=labels)
        expected = single_session.infer(request)
        slow = _SlowTarget(_fresh_session(workload), delay_s=0.3)
        with InferenceGateway([GatewayEndpoint(target=slow, name="slow")]) as gateway:
            started = time.monotonic()
            first = gateway.submit(request)
            second = gateway.submit(request)
            submit_s = time.monotonic() - started
            assert submit_s < 0.25, "submit() must not wait for the endpoint"
            assert not first.done()
            _assert_identical(expected, first.result(timeout=30))
            _assert_identical(expected, second.result(timeout=30))

    def test_infer_many_pipelines_batches(self, workload, single_session):
        snn, config, inputs, labels = workload
        requests = [
            InferenceRequest(inputs=inputs, labels=labels),
            InferenceRequest(inputs=inputs[:5], labels=labels[:5]),
        ]
        expected = [single_session.infer(request) for request in requests]
        endpoints = [
            GatewayEndpoint(target=_fresh_session(workload), capacity=1, name="a"),
            GatewayEndpoint(target=_fresh_session(workload), capacity=2, name="b"),
        ]
        with InferenceGateway(endpoints) as gateway:
            responses = gateway.infer_many(requests)
        for want, got in zip(expected, responses):
            _assert_identical(want, got)


class _BackloggedTarget:
    """Local session reporting a scripted backlog through the load() hook."""

    capacity = 1

    def __init__(self, session: ChipSession, backlog: float):
        self._session = session
        self.backlog = backlog

    def load(self) -> float:
        return self.backlog

    def infer(self, request):
        return self._session.infer(request)


class _SheddingTarget:
    """Endpoint whose server always sheds (structured overloaded error)."""

    capacity = 1

    def __init__(self):
        self.calls = 0

    def infer(self, request):
        self.calls += 1
        raise RemoteServerError(
            "server queue is full (1/1 requests waiting); request shed",
            code=ERROR_OVERLOADED,
        )


class _InfoProbeRecorder:
    """A pipelined-remote-shaped target recording how its info is polled."""

    capacity = 1
    submit = None  # pipelined marker: presence makes the target pollable

    def __init__(self, session: ChipSession):
        self._session = session
        self.timeouts: list[float | None] = []
        self.fail_polls = False

    def info(self, refresh: bool = False, *, timeout: float | None = None):
        self.timeouts.append(timeout)
        if self.fail_polls:
            raise TimeoutError("wedged endpoint never answered info")
        return {"queue_depth": 2, "inflight": 1}

    def infer(self, request):
        return self._session.infer(request)


class _DeadlineRecorder:
    """Endpoint recording the deadline_s its infer() receives."""

    capacity = 1

    def __init__(self, session: ChipSession):
        self._session = session
        self.seen: list[float | None] = []

    def infer(self, request, deadline_s: float | None = None):
        self.seen.append(deadline_s)
        return self._session.infer(request)


class TestAdaptiveGateway:
    def test_backlogged_endpoint_receives_fewer_samples(
        self, workload, single_session
    ):
        _, _, inputs, labels = workload
        idle = _BackloggedTarget(_fresh_session(workload), backlog=0.0)
        busy = _BackloggedTarget(_fresh_session(workload), backlog=3.0)
        with InferenceGateway(
            [
                GatewayEndpoint(target=idle, capacity=1, name="idle"),
                GatewayEndpoint(target=busy, capacity=1, name="busy"),
            ],
            load_poll_s=3600.0,
        ) as gateway:
            # Hints come from the background refresher, never the submit
            # path; force one sweep so the plan sees the scripted backlog.
            gateway.refresh_load_hints()
            plan = gateway.shard_plan(12)
            sizes = {p.endpoint.name: p.stop - p.start for p in plan}
            # Effective capacities 1 vs 1/4: the busy endpoint's share drops
            # from the static 6 to round(12 * 0.2) ≈ 2.
            assert sizes["idle"] > sizes["busy"]
            # Adaptivity changes placement, never numbers.
            request = InferenceRequest(inputs=inputs, labels=labels)
            _assert_identical(single_session.infer(request), gateway.infer(request))

    def test_adaptive_off_restores_static_plan(self, workload):
        idle = _BackloggedTarget(_fresh_session(workload), backlog=0.0)
        busy = _BackloggedTarget(_fresh_session(workload), backlog=9.0)
        with InferenceGateway(
            [
                GatewayEndpoint(target=idle, capacity=1, name="idle"),
                GatewayEndpoint(target=busy, capacity=1, name="busy"),
            ],
            adaptive=False,
        ) as gateway:
            plan = gateway.shard_plan(12)
            assert [(p.start, p.stop) for p in plan] == [(0, 6), (6, 12)]

    def test_idle_endpoints_keep_the_static_plan(self, workload):
        # Zero backlog everywhere: adaptive must plan exactly like the
        # static capacity-weighted planner (the historical behaviour).
        a = _fresh_session(workload)
        b = _fresh_session(workload)
        with InferenceGateway(
            [
                GatewayEndpoint(target=a, capacity=1, name="a"),
                GatewayEndpoint(target=b, capacity=3, name="b"),
            ]
        ) as gateway:
            plan = gateway.shard_plan(13)
            assert [(p.start, p.stop) for p in plan] == [(0, 3), (3, 13)]

    def test_load_polls_are_bounded_and_poll_failures_keep_planning(self, workload):
        # The info poll runs on the background refresher: it must carry a
        # hard timeout (one wedged endpoint may not starve the sweep), a
        # failed poll must keep the previous hint rather than failing the
        # plan, and planning itself must never poll.
        from repro.serve.distributed.gateway import LOAD_POLL_TIMEOUT_S

        probe = _InfoProbeRecorder(_fresh_session(workload))
        other = _fresh_session(workload)
        with InferenceGateway(
            [
                GatewayEndpoint(target=probe, capacity=1, name="probed"),
                GatewayEndpoint(target=other, capacity=1, name="plain"),
            ],
            load_poll_s=3600.0,  # the manual sweeps below are the only polls
        ) as gateway:
            gateway.refresh_load_hints()
            plan = gateway.shard_plan(12)
            assert probe.timeouts == [LOAD_POLL_TIMEOUT_S]
            sizes = {p.endpoint.name: p.stop - p.start for p in plan}
            # Polled backlog 3 discounts the probed endpoint: 1/(1+3) vs 1.
            assert sizes["plain"] > sizes["probed"]
            probe.fail_polls = True
            gateway.refresh_load_hints()  # hint survives the failed poll
            plan = gateway.shard_plan(12)
            sizes = {p.endpoint.name: p.stop - p.start for p in plan}
            assert sizes["plain"] > sizes["probed"]
            assert len(probe.timeouts) == 2
            # shard_plan alone never touched the endpoint's info.
            gateway.shard_plan(12)
            assert len(probe.timeouts) == 2

    def test_shed_shard_retries_on_other_endpoint(self, workload, single_session):
        _, _, inputs, labels = workload
        shedder = _SheddingTarget()
        good = _fresh_session(workload)
        request = InferenceRequest(inputs=inputs, labels=labels)
        with InferenceGateway(
            [
                GatewayEndpoint(target=shedder, capacity=1, name="flaky"),
                GatewayEndpoint(target=good, capacity=1, name="good"),
            ]
        ) as gateway:
            response = gateway.infer(request)
        _assert_identical(single_session.infer(request), response)
        assert shedder.calls == 1, "shed shard retried on the shedding endpoint"
        retried = [
            s for s in response.metadata["shards"] if s.get("retried_from") == "flaky"
        ]
        assert len(retried) == 1
        assert retried[0]["endpoint"] == "good"

    def test_all_endpoints_shedding_surfaces_the_error(self, workload):
        _, _, inputs, _ = workload
        with InferenceGateway(
            [GatewayEndpoint(target=_SheddingTarget(), capacity=1, name="flaky")]
        ) as gateway:
            future = gateway.submit(InferenceRequest(inputs=inputs))
            with pytest.raises(RuntimeError, match="'flaky' failed on shard"):
                future.result(timeout=30)

    def test_non_overload_errors_are_not_retried(self, workload):
        _, _, inputs, _ = workload
        good = _fresh_session(workload)
        with InferenceGateway(
            [
                GatewayEndpoint(target=_FailingTarget(), capacity=1, name="bad"),
                GatewayEndpoint(target=good, capacity=1, name="good"),
            ]
        ) as gateway:
            future = gateway.submit(InferenceRequest(inputs=inputs))
            with pytest.raises(RuntimeError, match="'bad' failed on shard"):
                future.result(timeout=30)

    def test_deadline_propagates_to_supporting_endpoints(
        self, workload, single_session
    ):
        _, _, inputs, labels = workload
        recorder = _DeadlineRecorder(_fresh_session(workload))
        plain = _fresh_session(workload)  # no deadline_s parameter
        request = InferenceRequest(inputs=inputs, labels=labels)
        with InferenceGateway(
            [
                GatewayEndpoint(target=recorder, capacity=1, name="aware"),
                GatewayEndpoint(target=plain, capacity=1, name="plain"),
            ]
        ) as gateway:
            response = gateway.infer(request, deadline_s=7.5)
        _assert_identical(single_session.infer(request), response)
        assert recorder.seen == [7.5]


# -- experiment wiring --------------------------------------------------------------


class TestExperimentDeadline:
    def test_wedged_server_fails_the_run_instead_of_hanging(self, monkeypatch):
        # A server that accepts the connection and reads requests but never
        # replies must blow the remote deadline AND let the gateway/session
        # teardown finish — the whole call must return, not hang.
        from repro.experiments import ExperimentSettings, WorkloadContext
        from repro.experiments import common as experiments_common

        wedged = socket.create_server(("127.0.0.1", 0))

        def accept_loop():
            while True:
                try:
                    conn, _ = wedged.accept()
                except OSError:
                    return
                threading.Thread(
                    target=_drain_forever, args=(conn,), daemon=True
                ).start()

        def _drain_forever(conn):
            try:
                while conn.recv(65536):
                    pass
            except OSError:
                pass

        threading.Thread(target=accept_loop, daemon=True).start()
        monkeypatch.setattr(experiments_common, "REMOTE_DEADLINE_S", 1.0)
        context = WorkloadContext(
            ExperimentSettings(
                timesteps=4, eval_samples=2, train_samples=16, test_samples=8,
                train_epochs=0, network_scale=0.15, seed=11,
            )
        )
        prepared = context.prepare("mnist-mlp")
        host, port = wedged.getsockname()[:2]
        started = time.monotonic()
        try:
            with pytest.raises(TimeoutError):
                context.evaluate_chip(prepared, endpoint=f"{host}:{port}")
            elapsed = time.monotonic() - started
            assert elapsed < 20, f"teardown took {elapsed:.1f}s — hang regression"
        finally:
            wedged.close()


# -- CLI ----------------------------------------------------------------------------


class TestServeCli:
    @pytest.mark.parametrize(
        "argv",
        [
            ["infer", "--endpoint", "127.0.0.1:7070", "--timeout", "0"],
            ["infer", "--endpoint", "127.0.0.1:7070", "--timeout", "-3"],
            ["infer", "--endpoint", "127.0.0.1:7070", "--deadline", "0"],
            ["infer", "--endpoint", "127.0.0.1:7070", "--deadline", "-2"],
            ["infer", "--endpoint", "127.0.0.1:0"],
            ["smoke", "--timeout", "0"],
            ["serve", "--max-batch", "0"],
            ["serve", "--max-queue", "-1"],
            ["serve", "--shed-policy", "sometimes"],
        ],
    )
    def test_cli_rejects_bad_arguments_early(self, argv):
        from repro.serve.distributed.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2  # argparse usage error, not a traceback

    @pytest.mark.parametrize(
        "argv",
        [
            ["--deadline", "5"],  # needs --endpoint
            ["--deadline", "0", "--endpoint", "127.0.0.1:7070"],
        ],
    )
    def test_runner_rejects_bad_deadline_arguments(self, argv):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2

    def test_experiment_settings_validate_deadline(self):
        from repro.experiments import ExperimentSettings

        with pytest.raises(ValueError, match="chip_deadline_s must be > 0"):
            ExperimentSettings(chip_deadline_s=0)
        assert ExperimentSettings(chip_deadline_s=30.0).chip_deadline_s == 30.0

    def test_cli_infer_passes_timeout_through(self, monkeypatch, workload):
        from repro.serve.distributed import cli

        server = ChipServer(
            _fresh_session(workload), port=0, workload="cli-test"
        ).start()
        seen: dict[str, float] = {}
        real_connect = RemoteSession.connect.__func__

        def spying_connect(cls, endpoint, *, timeout=120.0, **kwargs):
            seen["timeout"] = timeout
            return real_connect(cls, endpoint, timeout=timeout, **kwargs)

        monkeypatch.setattr(
            cli.RemoteSession, "connect", classmethod(spying_connect)
        )

        def tiny_inference(remote, args):
            _, _, inputs, labels = workload
            request = InferenceRequest(inputs=inputs[:2], labels=labels[:2])
            return request, remote.infer(request)

        monkeypatch.setattr(cli, "_client_inference", tiny_inference)
        try:
            code = cli.main(
                ["infer", "--endpoint", server.endpoint, "--timeout", "45"]
            )
        finally:
            server.close()
        assert code == 0
        assert seen["timeout"] == 45.0
