"""Synthetic datasets and spike-statistics utilities.

Real MNIST/SVHN/CIFAR-10 are unavailable offline; the synthetic stand-ins in
:mod:`repro.datasets.synthetic` preserve the properties the architecture
study depends on (input geometry, class count, foreground/background
sparsity).  See DESIGN.md for the substitution rationale.
"""

from repro.datasets.spikes import (
    PacketStatistics,
    dataset_spike_statistics,
    zero_run_length_histogram,
)
from repro.datasets.synthetic import (
    DATASET_SPECS,
    DatasetSpec,
    SyntheticDataset,
    make_dataset,
)

__all__ = [
    "DATASET_SPECS",
    "DatasetSpec",
    "SyntheticDataset",
    "make_dataset",
    "PacketStatistics",
    "dataset_spike_statistics",
    "zero_run_length_histogram",
]
