"""Wall-clock payoff of the layer-fused kernel over the per-tile loop.

The fused path packs every layer's tiles into one stacked conductance
tensor and runs each timestep as a single batched matmul per layer, with
all scratch living in a reusable :class:`~repro.fastpath.plan.KernelPlan`
arena.  The acceptance bar is a >= 1.5x speedup over the pre-fusion
``timesteps × layers × tiles`` loop (kept alive as
:meth:`~repro.fastpath.engine.VectorizedChipEngine.run_batch_reference`)
on a batch of 64, while staying bit-identical — the property suite in
``tests/test_kernel_fused.py`` asserts the identity across randomized
geometries; here we re-check it on the benchmarked runs.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import ArchitectureConfig, ChipSimulator
from repro.fastpath import KernelPlan, VectorizedChipEngine
from repro.snn import Dense, Network, convert_to_snn

BATCH = 64
TIMESTEPS = 8
SPEEDUP_FLOOR = 1.5
ROUNDS = 7


@pytest.fixture(scope="module")
def kernel_workload():
    """A compiled mid-size MLP engine plus an encoded 64-sample train."""
    rng = np.random.default_rng(17)
    network = Network(
        (196,),
        [
            Dense(196, 64, use_bias=False, rng=rng, name="fc1"),
            Dense(64, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="kernel-mlp",
    )
    snn = convert_to_snn(network, rng.random((24, 196)))
    config = ArchitectureConfig(crossbar_rows=32, crossbar_columns=32)
    chip = ChipSimulator(config=config).build_chip(snn)
    engine = VectorizedChipEngine.from_chip(chip)
    train = (rng.random((TIMESTEPS, BATCH, 196)) > 0.5).astype(float)
    return engine, train


def _best_of(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_reference_kernel(benchmark, kernel_workload):
    """The pre-fusion per-tile loop (the baseline the floor is against)."""
    engine, train = kernel_workload
    outcome = benchmark.pedantic(
        lambda: engine.run_batch_reference(train), iterations=1, rounds=3
    )
    assert outcome.predictions.shape == (BATCH,)


def test_bench_fused_kernel(benchmark, kernel_workload):
    """The fused kernel with a warm plan (the steady serving state)."""
    engine, train = kernel_workload
    plan = KernelPlan(engine.program, BATCH, TIMESTEPS)
    outcome = benchmark.pedantic(
        lambda: engine.run_batch(train, plan=plan), iterations=1, rounds=3
    )
    assert outcome.predictions.shape == (BATCH,)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="timing floor is unreliable on a single busy core",
)
def test_fused_kernel_speedup_floor(kernel_workload, persist_result):
    """Fused kernel must be >= 1.5x the per-tile loop at batch 64."""
    engine, train = kernel_workload
    plan = KernelPlan(engine.program, BATCH, TIMESTEPS)
    # Warm both paths before timing.
    reference = engine.run_batch_reference(train)
    fused = engine.run_batch(train, plan=plan)

    reference_s = _best_of(lambda: engine.run_batch_reference(train))
    fused_s = _best_of(lambda: engine.run_batch(train, plan=plan))

    speedup = reference_s / fused_s
    print(
        f"\nkernel wall-clock (batch {BATCH}): reference {reference_s * 1e3:.3f}ms, "
        f"fused {fused_s * 1e3:.3f}ms, speedup {speedup:.2f}x"
    )
    persist_result(
        "kernel",
        "fused_vs_reference",
        {
            "batch": BATCH,
            "timesteps": TIMESTEPS,
            "reference_s": reference_s,
            "fused_s": fused_s,
            "speedup": speedup,
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"fused kernel only {speedup:.2f}x faster "
        f"({reference_s * 1e3:.3f}ms vs {fused_s * 1e3:.3f}ms)"
    )
    # Speed must not change the answer — bit-identical, not approximately.
    np.testing.assert_array_equal(reference.predictions, fused.predictions)
    np.testing.assert_array_equal(reference.spike_counts, fused.spike_counts)
    assert (
        reference.counters.as_dict()["io_bus_words"]
        == fused.counters.as_dict()["io_bus_words"]
    )
