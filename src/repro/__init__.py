"""RESPARC reproduction library.

A Python reproduction of "RESPARC: A Reconfigurable and Energy-Efficient
Architecture with Memristive Crossbars for Deep Spiking Neural Networks"
(Ankit, Sengupta, Panda, Roy — DAC 2017).

Subpackages
-----------
``repro.crossbar``
    Memristive crossbar substrate (device model, quantisation, MCA).
``repro.snn``
    Spiking neural network substrate (layers, training, conversion,
    functional simulation).
``repro.datasets``
    Synthetic MNIST/SVHN/CIFAR-10 stand-ins and spike statistics.
``repro.energy``
    45 nm component energy library, CACTI-like SRAM model, reports.
``repro.baseline``
    The optimised CMOS digital baseline accelerator.
``repro.core``
    The RESPARC architecture (mPE / NeuroCell / chip) and its models.
``repro.fastpath``
    Vectorized batch backend of the structural chip (compiled execution).
``repro.serve``
    Service-layer inference API (sessions, sharded chip pools, serializable
    result schema).
``repro.mapping``
    The mapping compiler (partitioning, placement, technology-aware sizing).
``repro.workloads``
    The six benchmark SNNs of the paper's Fig. 10.
``repro.experiments``
    Drivers regenerating every figure of the paper's evaluation.
"""

__version__ = "0.1.0"

__all__ = [
    "baseline",
    "core",
    "crossbar",
    "datasets",
    "energy",
    "experiments",
    "fastpath",
    "mapping",
    "serve",
    "snn",
    "utils",
    "workloads",
]
