"""Shared fixtures for the pytest-benchmark harness.

Each benchmark module regenerates one of the paper's tables/figures.  The
workload context is session scoped so the (comparatively expensive) spiking
simulation of each benchmark network runs once and every figure reuses it —
the same structure the experiment runner uses.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSettings, WorkloadContext


@pytest.fixture(scope="session")
def context() -> WorkloadContext:
    """Full-size benchmark networks with a reduced simulation window."""
    return WorkloadContext(ExperimentSettings.quick())


@pytest.fixture(scope="session")
def reduced_context() -> WorkloadContext:
    """Width-scaled networks for the heavier sweeps."""
    return WorkloadContext(
        ExperimentSettings(
            timesteps=6,
            eval_samples=2,
            train_samples=16,
            test_samples=8,
            train_epochs=0,
            network_scale=0.25,
            seed=7,
        )
    )
