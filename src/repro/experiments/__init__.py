"""Experiment drivers regenerating every table and figure of the paper.

* Fig. 8/9/10 are parameter/benchmark tables realised directly by
  :mod:`repro.core.config`, :mod:`repro.baseline.config` and
  :mod:`repro.workloads`.
* Fig. 11 — :mod:`repro.experiments.fig11_comparison`.
* Fig. 12 — :mod:`repro.experiments.fig12_breakdown`.
* Fig. 13 — :mod:`repro.experiments.fig13_eventdriven`.
* Fig. 14 — :mod:`repro.experiments.fig14_precision`.
* :mod:`repro.experiments.runner` runs them all.
"""

from repro.experiments.common import ExperimentSettings, PreparedWorkload, WorkloadContext
from repro.experiments.fig11_comparison import PAPER_FIG11, Fig11Result, Fig11Row, run_fig11
from repro.experiments.fig12_breakdown import Fig12Entry, Fig12Result, run_fig12
from repro.experiments.fig13_eventdriven import Fig13Entry, Fig13Result, run_fig13
from repro.experiments.fig14_precision import (
    AccuracyPoint,
    EnergyPoint,
    Fig14Result,
    run_fig14,
    run_fig14_accuracy,
    run_fig14_energy,
)
from repro.experiments.runner import ExperimentSuiteResult, run_all

__all__ = [
    "ExperimentSettings",
    "PreparedWorkload",
    "WorkloadContext",
    "PAPER_FIG11",
    "Fig11Result",
    "Fig11Row",
    "run_fig11",
    "Fig12Entry",
    "Fig12Result",
    "run_fig12",
    "Fig13Entry",
    "Fig13Result",
    "run_fig13",
    "AccuracyPoint",
    "EnergyPoint",
    "Fig14Result",
    "run_fig14",
    "run_fig14_accuracy",
    "run_fig14_energy",
    "ExperimentSuiteResult",
    "run_all",
]
