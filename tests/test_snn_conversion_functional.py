"""Tests for ANN→SNN conversion, the functional simulator and topology extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.snn import (
    Conv2D,
    ConversionSpec,
    Dense,
    Network,
    SpikingSimulator,
    Trainer,
    convert_to_snn,
    extract_connectivity,
)
from repro.snn.topology import network_connectivity_summary


class TestConversion:
    def test_thresholds_for_weighted_layers_only(self, small_cnn, rng):
        snn = convert_to_snn(small_cnn, rng.random((8, 12, 12, 1)))
        assert set(snn.thresholds) == {0, 3}
        assert all(t > 0 for t in snn.thresholds.values())

    def test_biases_dropped(self, rng):
        network = Network((6,), [Dense(6, 4, use_bias=True, rng=rng)], name="b")
        network.layers[0].bias[:] = 5.0
        snn = convert_to_snn(network, rng.random((4, 6)))
        np.testing.assert_allclose(snn.network.layers[0].bias, 0.0)
        # The original is untouched.
        np.testing.assert_allclose(network.layers[0].bias, 5.0)

    def test_threshold_floor_applies_to_dead_layer(self, rng):
        network = Network((6,), [Dense(6, 4, use_bias=False, rng=rng)], name="dead")
        network.layers[0].weights[:] = -1.0  # never a positive pre-activation
        snn = convert_to_snn(network, rng.random((4, 6)))
        assert snn.threshold_for(0) == ConversionSpec().minimum_threshold

    def test_single_sample_calibration_accepted(self, small_mlp, rng):
        snn = convert_to_snn(small_mlp, rng.random(36))
        assert snn.threshold_for(0) > 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ConversionSpec(percentile=150.0)
        with pytest.raises(ValueError):
            ConversionSpec(minimum_threshold=0.0)

    def test_default_threshold_for_unlisted_layer(self, small_mlp, rng):
        snn = convert_to_snn(small_mlp, rng.random((4, 36)))
        assert snn.threshold_for(99) == 1.0


class TestSpikingSimulator:
    def test_snn_matches_ann_predictions_on_trained_mlp(self, rng):
        # Train a small MLP on separable data; the converted SNN must agree
        # with the ANN on most samples — the core soundness check of the
        # conversion flow (Diehl et al.).
        network = Network(
            (12,),
            [Dense(12, 24, use_bias=False, rng=rng), Dense(24, 3, activation=None, use_bias=False, rng=rng)],
            name="convert",
        )
        x = rng.random((120, 12))
        labels = (x[:, :4].mean(axis=1) * 3).astype(int).clip(0, 2)
        Trainer(learning_rate=0.01, batch_size=24, rng=rng).fit(network, x, labels, epochs=20)
        snn = convert_to_snn(network, x[:40])
        simulator = SpikingSimulator(timesteps=60, encoder="deterministic")
        result = simulator.run(snn, x[100:], labels[100:])
        ann_predictions = network.predict(x[100:])
        agreement = np.mean(result.predictions == ann_predictions)
        assert agreement >= 0.7

    def test_trace_contains_all_computational_layers(self, traced_small_mlp):
        _, trace = traced_small_mlp
        assert [a.layer_index for a in trace.layers] == [0, 1]
        assert trace.timesteps == 12
        assert trace.samples == 4

    def test_trace_rates_in_unit_interval(self, traced_small_mlp):
        _, trace = traced_small_mlp
        for activity in trace.layers:
            assert 0.0 <= activity.input_spike_rate <= 1.0
            assert 0.0 <= activity.output_spike_rate <= 1.0
            for fraction in activity.zero_packet_fraction.values():
                assert 0.0 <= fraction <= 1.0

    def test_zero_packet_fraction_decreases_with_width(self, traced_small_mlp):
        _, trace = traced_small_mlp
        activity = trace.layers[0]
        assert (
            activity.zero_packet_fraction_for(32)
            >= activity.zero_packet_fraction_for(64)
            >= activity.zero_packet_fraction_for(128)
        )

    def test_zero_packet_fraction_interpolation(self, traced_small_mlp):
        _, trace = traced_small_mlp
        activity = trace.layers[0]
        estimate = activity.zero_packet_fraction_for(20)
        assert 0.0 <= estimate <= 1.0

    def test_total_spikes_consistency(self, traced_small_mlp):
        _, trace = traced_small_mlp
        layer0 = trace.layers[0]
        expected_rate = layer0.total_input_spikes / (layer0.n_inputs * trace.timesteps)
        assert layer0.input_spike_rate == pytest.approx(expected_rate)

    def test_cnn_simulation_runs(self, small_cnn, mnist_like_batch, rng):
        images, labels = mnist_like_batch
        images = images[:, 8:20, 8:20, :]  # crop to the 12x12 input
        snn = convert_to_snn(small_cnn, images[:4])
        simulator = SpikingSimulator(timesteps=10, rng=rng)
        result = simulator.run(snn, images[:4], labels[:4])
        assert result.predictions.shape == (4,)
        assert len(result.trace.layers) == 3  # conv, pool, dense

    def test_input_shape_validation(self, traced_small_mlp, rng):
        snn, _ = traced_small_mlp
        simulator = SpikingSimulator(timesteps=5)
        with pytest.raises(ValueError):
            simulator.run(snn, rng.random((2, 35)))

    def test_simulator_parameter_validation(self):
        with pytest.raises(ValueError):
            SpikingSimulator(timesteps=0)
        with pytest.raises(ValueError):
            SpikingSimulator(encoder="burst")

    def test_higher_intensity_means_more_spikes(self, small_mlp, rng):
        snn = convert_to_snn(small_mlp, rng.random((6, 36)))
        simulator = SpikingSimulator(timesteps=20, encoder="deterministic")
        dim = simulator.run(snn, np.full((1, 36), 0.05))
        bright = simulator.run(snn, np.full((1, 36), 0.9))
        assert bright.trace.total_spikes_per_sample > dim.trace.total_spikes_per_sample


class TestTopology:
    def test_dense_descriptor(self, small_mlp):
        descriptors = extract_connectivity(small_mlp)
        first = descriptors[0]
        assert first.kind == "dense"
        assert first.fan_in == 36
        assert first.synapses == 36 * 20
        assert first.unique_weights == 36 * 20
        assert first.output_groups == 20
        assert first.window_positions == 1

    def test_conv_descriptor_full_sharing(self, small_cnn):
        descriptors = extract_connectivity(small_cnn)
        conv = descriptors[0]
        assert conv.kind == "conv"
        assert conv.fan_in == 9
        assert conv.output_groups == 6
        assert conv.window_positions == 144
        assert conv.synapses == conv.n_outputs * 9

    def test_conv_descriptor_channel_limited(self, rng):
        network = Network(
            (8, 8, 4),
            [Conv2D(4, 8, kernel_size=3, padding="same", in_channel_limit=1, rng=rng)],
            name="limited",
        )
        conv = extract_connectivity(network)[0]
        # 8 output channels over 4 input channels: pairs of channels share.
        assert conv.output_groups == 2
        assert conv.window_positions == 8 * 8 * 4
        assert conv.output_groups * conv.window_positions == conv.n_outputs

    def test_conv_descriptor_channel_limited_without_divisibility(self, rng):
        network = Network(
            (8, 8, 4),
            [Conv2D(4, 3, kernel_size=3, padding="same", in_channel_limit=1, rng=rng)],
            name="nodiv",
        )
        conv = extract_connectivity(network)[0]
        assert conv.output_groups == 1
        assert conv.window_positions == conv.n_outputs

    def test_pool_descriptor(self, small_cnn):
        pool = extract_connectivity(small_cnn)[1]
        assert pool.kind == "pool"
        assert pool.fan_in == 4
        assert pool.unique_weights == 0
        assert pool.output_groups == 1

    def test_flatten_skipped(self, small_cnn):
        descriptors = extract_connectivity(small_cnn)
        assert len(descriptors) == 3

    def test_summary_matches_network(self, small_cnn):
        summary = network_connectivity_summary(small_cnn)
        assert summary["neurons"] == small_cnn.neuron_count
        assert summary["synapses"] == small_cnn.synapse_count
