"""Spike-train statistics over datasets.

The event-driven study of the paper (Fig. 13) hinges on a data property: how
often a spike packet (a group of 32/64/128 consecutive spike bits) is
entirely zero, because RESPARC's zero-check logic suppresses the transfer and
subsequent computation of such packets.  This module measures that property
directly on encoded dataset images, independently of any network, so tests
and experiments can validate the claim that

* MNIST-like (sparse) inputs have a high zero-packet probability that decays
  with packet width, and
* SVHN/CIFAR-like (dense) inputs have a much lower one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import SyntheticDataset
from repro.snn.encoding import PoissonEncoder, spike_train_statistics
from repro.utils.validation import check_positive

__all__ = ["PacketStatistics", "dataset_spike_statistics", "zero_run_length_histogram"]


@dataclass(frozen=True)
class PacketStatistics:
    """Zero-packet statistics of encoded inputs for one packet width."""

    packet_bits: int
    zero_packet_fraction: float
    mean_spike_rate: float


def dataset_spike_statistics(
    dataset: SyntheticDataset,
    timesteps: int = 16,
    packet_widths: tuple[int, ...] = (32, 64, 128),
    samples: int = 16,
    seed: int = 0,
) -> list[PacketStatistics]:
    """Measure zero-packet fractions of Poisson-encoded dataset images.

    Parameters
    ----------
    dataset:
        Dataset whose test images are encoded.
    timesteps:
        Encoding window length.
    packet_widths:
        Packet widths to evaluate (the paper's run lengths: 32, 64, 128).
    samples:
        Number of test images to encode.
    seed:
        Encoder seed.
    """
    check_positive("timesteps", timesteps)
    check_positive("samples", samples)
    images = dataset.test_images[:samples]
    encoder = PoissonEncoder(rng=np.random.default_rng(seed))
    spike_train = encoder.encode(images, timesteps)
    results = []
    for width in packet_widths:
        stats = spike_train_statistics(spike_train, packet_bits=width)
        results.append(
            PacketStatistics(
                packet_bits=width,
                zero_packet_fraction=stats["zero_packet_fraction"],
                mean_spike_rate=stats["mean_rate"],
            )
        )
    return results


def zero_run_length_histogram(
    spike_vector: np.ndarray, max_length: int = 128
) -> np.ndarray:
    """Histogram of zero-run lengths in a flattened binary spike vector.

    Returns an array ``h`` of length ``max_length + 1`` where ``h[k]`` counts
    maximal runs of exactly ``k`` consecutive zeros (runs longer than
    ``max_length`` are accumulated in the last bin).
    """
    check_positive("max_length", max_length)
    bits = np.asarray(spike_vector, dtype=int).reshape(-1)
    histogram = np.zeros(max_length + 1, dtype=int)
    run = 0
    for bit in bits:
        if bit == 0:
            run += 1
        elif run > 0:
            histogram[min(run, max_length)] += 1
            run = 0
    if run > 0:
        histogram[min(run, max_length)] += 1
    return histogram
