"""Open- and closed-loop load generation against any inference target.

Two canonical load shapes:

* **closed loop** — ``concurrency`` workers, each issuing its next request
  the moment the previous one returns.  Offered load adapts to the
  target's speed, so the system is never driven past saturation; this is
  the latency-under-contention shape.
* **open loop** — requests fire at a target *rate* with seeded
  exponentially-distributed inter-arrival jitter (a Poisson process),
  independent of completions.  Offered load is fixed, so queues and shed
  decisions are exercised honestly — the coordinated-omission-free shape.

Both loops run an unmeasured warmup first (chip programming, connection
handshakes and batcher state settle outside the measured window), then
record one :class:`RequestOutcome` per measured request: wall latency, the
phase spans the serving stack attached to the response metadata, the shed
/ error classification, and the response's energy accounting.  Everything
random is driven by one seeded :class:`numpy.random.Generator`, so a load
profile is reproducible run to run.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.serve.distributed.client import RemoteServerError
from repro.serve.metrics import read_phases
from repro.serve.schema import ERROR_OVERLOADED

__all__ = ["LoadSpec", "RequestOutcome", "run_load"]


@dataclass(frozen=True)
class LoadSpec:
    """One load profile: loop mode, intensity, duration, reproducibility.

    ``mode="closed"`` uses ``concurrency`` workers; ``mode="open"`` fires
    at ``rate`` requests/s with seeded exponential inter-arrival jitter.
    ``requests`` counts the measured window; ``warmup`` requests run before
    it and are discarded.
    """

    mode: str = "closed"
    requests: int = 16
    warmup: int = 2
    concurrency: int = 2
    rate: float | None = None
    batch_size: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError(f"mode must be 'open' or 'closed', got {self.mode!r}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.mode == "open" and (self.rate is None or self.rate <= 0):
            raise ValueError("open-loop load needs a positive rate")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    def label(self) -> str:
        if self.mode == "open":
            return f"open@{self.rate:g}rps"
        return f"closed@{self.concurrency}w"


@dataclass
class RequestOutcome:
    """What one measured request did."""

    index: int
    ok: bool
    latency_s: float
    shed: bool = False
    error: str | None = None
    phases: dict[str, float] = field(default_factory=dict)
    energy_j: float | None = None
    batch_size: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "ok": self.ok,
            "latency_s": self.latency_s,
            "shed": self.shed,
            "error": self.error,
            "phases": dict(self.phases),
            "energy_j": self.energy_j,
            "batch_size": self.batch_size,
        }


def _issue(submit, request, index: int) -> RequestOutcome:
    """Run one request and classify its outcome (shed vs error vs served)."""
    started = time.monotonic()
    try:
        response = submit(request)
    except RemoteServerError as exc:
        latency = time.monotonic() - started
        shed = exc.code == ERROR_OVERLOADED
        return RequestOutcome(
            index=index,
            ok=False,
            latency_s=latency,
            shed=shed,
            error=exc.code or "remote_error",
        )
    except Exception as exc:  # noqa: BLE001 - the lab records, it does not crash
        return RequestOutcome(
            index=index,
            ok=False,
            latency_s=time.monotonic() - started,
            error=type(exc).__name__,
        )
    latency = time.monotonic() - started
    energy = getattr(response, "energy", None)
    return RequestOutcome(
        index=index,
        ok=True,
        latency_s=latency,
        phases=read_phases(getattr(response, "metadata", None)),
        energy_j=float(energy.total_j) if energy is not None else None,
        batch_size=int(getattr(response, "batch_size", 0)),
    )


def run_load(submit, make_request, spec: LoadSpec) -> tuple[list[RequestOutcome], float]:
    """Drive ``submit`` with the profile; return (outcomes, measured wall).

    ``submit(request)`` must be thread-safe (every topology wrapper in
    :mod:`repro.loadlab.topologies` is).  ``make_request(index, rng)``
    builds the request for measured index ``index`` (warmup uses negative
    indices), drawing any randomness from the shared seeded ``rng``.
    """
    rng = np.random.default_rng(spec.seed)
    for i in range(spec.warmup):
        _issue(submit, make_request(-1 - i, rng), -1 - i)
    if spec.mode == "closed":
        return _closed_loop(submit, make_request, spec, rng)
    return _open_loop(submit, make_request, spec, rng)


def _closed_loop(submit, make_request, spec, rng):
    outcomes: list[RequestOutcome] = []
    lock = threading.Lock()
    counter = iter(range(spec.requests))
    # Requests are built under the lock so the shared rng stream stays
    # deterministic; only the submit itself runs concurrently.
    started = time.monotonic()

    def worker() -> None:
        while True:
            with lock:
                index = next(counter, None)
                if index is None:
                    return
                request = make_request(index, rng)
            outcome = _issue(submit, request, index)
            with lock:
                outcomes.append(outcome)

    threads = [
        threading.Thread(target=worker, name=f"loadlab-closed-{i}", daemon=True)
        for i in range(min(spec.concurrency, spec.requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - started
    outcomes.sort(key=lambda o: o.index)
    return outcomes, wall


def _open_loop(submit, make_request, spec, rng):
    # Pre-draw the whole arrival process and all requests so the measured
    # window does no RNG work and arrival jitter is seed-stable.
    inter_arrivals = rng.exponential(1.0 / float(spec.rate), size=spec.requests)
    arrivals = np.cumsum(inter_arrivals)
    requests = [make_request(i, rng) for i in range(spec.requests)]
    outcomes: list[RequestOutcome | None] = [None] * spec.requests
    # One thread per in-flight request: an open loop must never block an
    # arrival on a completion, or it degrades into a closed loop.
    with ThreadPoolExecutor(
        max_workers=spec.requests, thread_name_prefix="loadlab-open"
    ) as pool:
        started = time.monotonic()
        futures = []
        for index in range(spec.requests):
            delay = arrivals[index] - (time.monotonic() - started)
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(_issue, submit, requests[index], index))
        for index, future in enumerate(futures):
            outcomes[index] = future.result()
        wall = time.monotonic() - started
    return [o for o in outcomes if o is not None], wall
