"""Fig. 12 — energy breakdowns across crossbar sizes.

The paper breaks the per-classification energy of RESPARC into neuron /
crossbar / peripherals and of the CMOS baseline into core / memory-access /
memory-leakage, for every benchmark and for MCA sizes 32, 64 and 128
(RESPARC-32/-64/-128).  The qualitative claims this experiment must
reproduce:

* MLPs on RESPARC get monotonically cheaper as the MCA grows,
* CNNs on RESPARC are cheapest at MCA-64 (non-monotonic),
* the CMOS baseline is memory dominated for MLPs and core dominated for CNNs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import ExperimentSettings, WorkloadContext
from repro.workloads import list_benchmarks

__all__ = ["Fig12Entry", "Fig12Result", "run_fig12"]

#: MCA sizes studied by the paper.
MCA_SIZES = (32, 64, 128)


@dataclass(frozen=True)
class Fig12Entry:
    """RESPARC breakdown for one benchmark at one MCA size."""

    benchmark: str
    connectivity: str
    crossbar_size: int
    neuron_j: float
    crossbar_j: float
    peripherals_j: float

    @property
    def total_j(self) -> float:
        """Total RESPARC energy per classification."""
        return self.neuron_j + self.crossbar_j + self.peripherals_j


@dataclass(frozen=True)
class CmosBreakdownEntry:
    """CMOS baseline breakdown for one benchmark."""

    benchmark: str
    connectivity: str
    core_j: float
    memory_access_j: float
    memory_leakage_j: float

    @property
    def total_j(self) -> float:
        """Total CMOS energy per classification."""
        return self.core_j + self.memory_access_j + self.memory_leakage_j

    @property
    def memory_fraction(self) -> float:
        """Fraction of the energy spent in the memory system."""
        return (self.memory_access_j + self.memory_leakage_j) / self.total_j

    @property
    def core_fraction(self) -> float:
        """Fraction of the energy spent in the compute core."""
        return self.core_j / self.total_j


@dataclass
class Fig12Result:
    """All breakdown entries of the Fig. 12 reproduction."""

    resparc_entries: list[Fig12Entry] = field(default_factory=list)
    cmos_entries: list[CmosBreakdownEntry] = field(default_factory=list)

    def resparc_for(self, benchmark: str) -> dict[int, Fig12Entry]:
        """RESPARC entries of one benchmark keyed by MCA size."""
        return {
            e.crossbar_size: e for e in self.resparc_entries if e.benchmark == benchmark
        }

    def cmos_for(self, benchmark: str) -> CmosBreakdownEntry:
        """CMOS entry of one benchmark."""
        for entry in self.cmos_entries:
            if entry.benchmark == benchmark:
                return entry
        raise KeyError(f"no CMOS breakdown for {benchmark!r}")

    def optimal_size(self, benchmark: str) -> int:
        """MCA size minimising the RESPARC energy for a benchmark."""
        entries = self.resparc_for(benchmark)
        return min(entries, key=lambda size: entries[size].total_j)

    def as_table(self) -> str:
        """Render the breakdowns as fixed-width tables."""
        lines = ["Fig. 12 reproduction — RESPARC energy breakdown (J/classification)"]
        lines.append(
            f"  {'benchmark':<14} {'size':>5} {'neuron':>11} {'crossbar':>11} "
            f"{'peripherals':>12} {'total':>11}"
        )
        for entry in self.resparc_entries:
            lines.append(
                f"  {entry.benchmark:<14} {entry.crossbar_size:>5} {entry.neuron_j:>11.3e} "
                f"{entry.crossbar_j:>11.3e} {entry.peripherals_j:>12.3e} {entry.total_j:>11.3e}"
            )
        lines.append("  CMOS baseline breakdown (J/classification)")
        lines.append(
            f"  {'benchmark':<14} {'core':>11} {'mem access':>11} {'mem leakage':>12} "
            f"{'memory share':>13}"
        )
        for entry in self.cmos_entries:
            lines.append(
                f"  {entry.benchmark:<14} {entry.core_j:>11.3e} {entry.memory_access_j:>11.3e} "
                f"{entry.memory_leakage_j:>12.3e} {entry.memory_fraction:>12.1%}"
            )
        return "\n".join(lines)


def run_fig12(
    settings: ExperimentSettings | None = None,
    context: WorkloadContext | None = None,
    benchmarks: list[str] | None = None,
    sizes: tuple[int, ...] = MCA_SIZES,
) -> Fig12Result:
    """Reproduce Fig. 12 for the requested benchmarks (default: all six)."""
    context = context or WorkloadContext(settings or ExperimentSettings())
    names = benchmarks or [spec.name for spec in list_benchmarks()]
    result = Fig12Result()
    for name in names:
        workload = context.prepare(name)
        for size in sizes:
            evaluation = context.evaluate_resparc(workload, crossbar_size=size)
            groups = evaluation.energy.grouped()
            result.resparc_entries.append(
                Fig12Entry(
                    benchmark=name,
                    connectivity=workload.spec.connectivity,
                    crossbar_size=size,
                    neuron_j=groups.get("neuron", 0.0),
                    crossbar_j=groups.get("crossbar", 0.0),
                    peripherals_j=groups.get("peripherals", 0.0) + groups.get("other", 0.0),
                )
            )
        cmos = context.evaluate_cmos(workload)
        cmos_groups = cmos.energy.grouped()
        result.cmos_entries.append(
            CmosBreakdownEntry(
                benchmark=name,
                connectivity=workload.spec.connectivity,
                core_j=cmos_groups.get("core", 0.0),
                memory_access_j=cmos_groups.get("memory_access", 0.0),
                memory_leakage_j=cmos_groups.get("memory_leakage", 0.0),
            )
        )
    return result
