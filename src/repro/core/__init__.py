"""The RESPARC architecture — the paper's primary contribution.

Two complementary models are provided:

* an **analytical activity-based model** (:class:`~repro.core.model.ResparcModel`)
  that evaluates any mapped network (MLP or CNN) from its spike-activity
  trace — this is what regenerates the paper's figures; and
* a **structural model** (:class:`~repro.core.resparc.ResparcChip` driven by
  :class:`~repro.core.simulator.ChipSimulator`) that instantiates the actual
  hierarchy — MCAs inside mPEs inside NeuroCells around a shared bus — and
  executes MLP spiking networks through it, cross-validating the analytical
  event accounting.
"""

from repro.core.buffers import SpikeBuffer, SpikePacket, TargetBuffer
from repro.core.config import ArchitectureConfig
from repro.core.control import CurrentControlUnit, GlobalControlUnit, LocalControlUnit
from repro.core.interconnect import GlobalIOBus, InputMemory
from repro.core.model import ResparcEvaluation, ResparcModel
from repro.core.mpe import MacroProcessingEngine, TileAssignment
from repro.core.neurocell import NeuroCell
from repro.core.resparc import ProgrammedTile, ResparcChip
from repro.core.simulator import CHIP_BACKENDS, ChipRunResult, ChipSimulator, simulate
from repro.core.stats import EventCounters, counters_to_energy
from repro.core.switch import ProgrammableSwitch, SwitchPort

__all__ = [
    "SpikeBuffer",
    "SpikePacket",
    "TargetBuffer",
    "ArchitectureConfig",
    "CurrentControlUnit",
    "GlobalControlUnit",
    "LocalControlUnit",
    "GlobalIOBus",
    "InputMemory",
    "ResparcEvaluation",
    "ResparcModel",
    "MacroProcessingEngine",
    "TileAssignment",
    "NeuroCell",
    "ProgrammedTile",
    "ResparcChip",
    "CHIP_BACKENDS",
    "ChipRunResult",
    "ChipSimulator",
    "simulate",
    "EventCounters",
    "counters_to_energy",
    "ProgrammableSwitch",
    "SwitchPort",
]
