"""Determinism: same seed, same results — twice.

Catches shared-RNG ordering bugs (e.g. the :class:`PoissonEncoder` drawing
from a generator whose consumption order changed) at both the chip level and
the experiment level.  Every assertion is for *identical* output, not
tolerance-based: a same-seed rerun exercises the exact same code path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ArchitectureConfig, ChipSimulator
from repro.experiments import ExperimentSettings, WorkloadContext, run_fig11
from repro.snn import Dense, Network, convert_to_snn


def _snn(seed: int = 21):
    rng = np.random.default_rng(seed)
    network = Network(
        (40,),
        [
            Dense(40, 24, use_bias=False, rng=rng, name="fc1"),
            Dense(24, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="determinism-mlp",
    )
    return convert_to_snn(network, rng.random((10, 40)))


def _chip_run(backend: str, encoder: str, seed: int):
    simulator = ChipSimulator(
        config=ArchitectureConfig(crossbar_rows=16, crossbar_columns=16),
        timesteps=8,
        encoder=encoder,
        backend=backend,
        rng=np.random.default_rng(seed),
    )
    inputs = np.random.default_rng(1000 + seed).random((5, 40))
    return simulator.run(_snn(), inputs)


class TestChipDeterminism:
    @pytest.mark.parametrize("backend", ["structural", "vectorized"])
    @pytest.mark.parametrize("encoder", ["poisson", "deterministic"])
    def test_same_seed_identical_results(self, backend, encoder):
        first = _chip_run(backend, encoder, seed=3)
        second = _chip_run(backend, encoder, seed=3)
        np.testing.assert_array_equal(first.predictions, second.predictions)
        np.testing.assert_array_equal(first.spike_counts, second.spike_counts)
        assert first.counters.as_dict() == second.counters.as_dict()
        assert first.energy.components == second.energy.components
        assert first.energy.total_j == second.energy.total_j

    def test_different_seeds_differ_with_poisson(self):
        # Sanity check that the seed actually reaches the encoder: a
        # different seed must change the stochastic spike trains.
        first = _chip_run("vectorized", "poisson", seed=3)
        second = _chip_run("vectorized", "poisson", seed=4)
        assert not np.array_equal(first.spike_counts, second.spike_counts)


class TestExperimentDeterminism:
    @staticmethod
    def _settings() -> ExperimentSettings:
        return ExperimentSettings(
            timesteps=4,
            eval_samples=2,
            train_samples=16,
            test_samples=8,
            train_epochs=0,
            network_scale=0.15,
            seed=11,
        )

    def test_fig11_rerun_is_identical(self):
        # Fresh contexts (fresh caches, fresh derived RNGs) must reproduce
        # the exact same rendered table, including the chip validation rows.
        tables = []
        for _ in range(2):
            context = WorkloadContext(self._settings())
            result = run_fig11(
                context=context, benchmarks=["mnist-mlp"], validate_chip=True
            )
            tables.append(result.as_table())
        assert tables[0] == tables[1]

    def test_chip_validation_backends_agree_in_experiment(self):
        # The experiment-level chip run must be backend-invariant too: the
        # derived RNG seeds the encoder identically for both backends.
        results = {}
        for backend in ("structural", "vectorized"):
            context = WorkloadContext(self._settings())
            workload = context.prepare("mnist-mlp")
            results[backend] = context.evaluate_chip(
                workload, crossbar_size=32, backend=backend
            )
        np.testing.assert_array_equal(
            results["structural"].predictions, results["vectorized"].predictions
        )
        np.testing.assert_array_equal(
            results["structural"].spike_counts, results["vectorized"].spike_counts
        )
        assert results["vectorized"].energy.total_j == pytest.approx(
            results["structural"].energy.total_j, rel=1e-9
        )
