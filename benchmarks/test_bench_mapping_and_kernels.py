"""Micro-benchmarks of the library's computational kernels.

Not a paper figure: these time the mapping compiler, the crossbar evaluation
kernel and the functional spiking simulator so performance regressions in the
simulator itself are visible, independent of the architecture results.
"""

from __future__ import annotations

import numpy as np

from repro.crossbar import CrossbarArray, CrossbarConfig
from repro.mapping import map_network
from repro.snn import SpikingSimulator, convert_to_snn
from repro.workloads import build_mnist_cnn, build_mnist_mlp


def test_bench_map_mnist_mlp(benchmark):
    """Time mapping the full MNIST MLP onto 64x64 MCAs."""
    network = build_mnist_mlp()
    mapped = benchmark(lambda: map_network(network, crossbar_size=64))
    assert mapped.total_tiles > 0


def test_bench_map_mnist_cnn(benchmark):
    """Time mapping the full MNIST CNN onto 64x64 MCAs."""
    network = build_mnist_cnn()
    mapped = benchmark(lambda: map_network(network, crossbar_size=64))
    assert mapped.utilisation.mean_utilisation < 1.0


def test_bench_crossbar_evaluate(benchmark):
    """Time one 64x64 analog crossbar evaluation."""
    rng = np.random.default_rng(0)
    xbar = CrossbarArray(CrossbarConfig(rows=64, columns=64))
    xbar.program(rng.normal(0, 0.3, size=(64, 64)))
    spikes = (rng.random(64) < 0.2).astype(float)
    result = benchmark(lambda: xbar.evaluate(spikes))
    assert result.weighted_sums.shape == (64,)


def test_bench_functional_simulation(benchmark):
    """Time an 8-timestep functional simulation of a reduced MNIST MLP."""
    rng = np.random.default_rng(0)
    network = build_mnist_mlp(scale=0.25)
    inputs = rng.random((2, 784))
    snn = convert_to_snn(network, inputs)
    simulator = SpikingSimulator(timesteps=8, encoder="deterministic")
    result = benchmark(lambda: simulator.run(snn, inputs))
    assert result.trace.timesteps == 8
