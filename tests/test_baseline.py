"""Tests for the CMOS digital baseline model."""

from __future__ import annotations

import pytest

from repro.baseline import (
    BaselineActivityModel,
    BaselineConfig,
    BaselineMemorySystem,
    CmosBaselineModel,
)
from repro.snn import SpikingSimulator, convert_to_snn, extract_connectivity
from repro.workloads import build_mnist_cnn, build_mnist_mlp


class TestBaselineConfig:
    def test_defaults_match_fig9(self):
        config = BaselineConfig()
        assert config.nu_count == 16
        assert config.fifo_depth == 32
        assert config.frequency_hz == pytest.approx(1e9)
        assert config.weight_bits == 4
        assert config.area_mm2 == pytest.approx(0.19)
        assert config.power_w == pytest.approx(35.1e-3)

    def test_weights_per_word(self):
        assert BaselineConfig().weights_per_word == 16
        assert BaselineConfig(weight_bits=8).weights_per_word == 8

    def test_with_weight_bits(self):
        config = BaselineConfig().with_weight_bits(8)
        assert config.weight_bits == 8
        assert config.nu_width_bits == 8
        with pytest.raises(ValueError):
            BaselineConfig().with_weight_bits(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BaselineConfig(nu_count=0)


class TestBaselineMemory:
    def test_mlp_memory_larger_than_cnn(self):
        mlp_memory = BaselineMemorySystem(extract_connectivity(build_mnist_mlp()), BaselineConfig())
        cnn_memory = BaselineMemorySystem(extract_connectivity(build_mnist_cnn()), BaselineConfig())
        assert mlp_memory.weight_capacity_bytes > 5 * cnn_memory.weight_capacity_bytes
        assert mlp_memory.leakage_power_w() > cnn_memory.leakage_power_w()

    def test_weight_capacity_scales_with_bits(self):
        conns = extract_connectivity(build_mnist_mlp(scale=0.3))
        four = BaselineMemorySystem(conns, BaselineConfig())
        eight = BaselineMemorySystem(conns, BaselineConfig().with_weight_bits(8))
        assert eight.weight_capacity_bytes >= 2 * four.weight_capacity_bytes - 8192

    def test_dense_fetches_gated_by_word_level_probability(self):
        conns = extract_connectivity(build_mnist_mlp(scale=0.3))
        memory = BaselineMemorySystem(conns, BaselineConfig())
        dense = conns[0]
        silent = memory.weight_words_for_layer(dense, input_rate=0.0)
        sparse = memory.weight_words_for_layer(dense, input_rate=0.1)
        busy = memory.weight_words_for_layer(dense, input_rate=1.0)
        assert silent == 0.0
        assert 0 < sparse < busy
        assert busy == pytest.approx(dense.unique_weights / 16)

    def test_dense_fetches_ungated_without_event_driven(self):
        conns = extract_connectivity(build_mnist_mlp(scale=0.3))
        memory = BaselineMemorySystem(conns, BaselineConfig(event_driven=False))
        dense = conns[0]
        assert memory.weight_words_for_layer(dense, 0.05) == pytest.approx(
            dense.unique_weights / 16
        )

    def test_conv_fetches_independent_of_rate(self):
        conns = extract_connectivity(build_mnist_cnn(scale=0.3))
        memory = BaselineMemorySystem(conns, BaselineConfig())
        conv = conns[0]
        assert memory.weight_words_for_layer(conv, 0.0) == memory.weight_words_for_layer(conv, 0.9)

    def test_pool_layers_fetch_nothing(self):
        conns = extract_connectivity(build_mnist_cnn(scale=0.3))
        memory = BaselineMemorySystem(conns, BaselineConfig())
        pool = next(c for c in conns if c.kind == "pool")
        assert memory.weight_words_for_layer(pool, 0.5) == 0.0

    def test_activation_words(self):
        conns = extract_connectivity(build_mnist_mlp(scale=0.3))
        memory = BaselineMemorySystem(conns, BaselineConfig())
        layer = conns[0]
        assert memory.activation_words_for_layer(layer) == pytest.approx(
            (layer.n_inputs + layer.n_outputs) / 64
        )

    def test_empty_connectivity_rejected(self):
        with pytest.raises(ValueError):
            BaselineMemorySystem([], BaselineConfig())


class TestBaselineActivity:
    def test_event_driven_reduces_macs(self):
        conns = extract_connectivity(build_mnist_mlp(scale=0.3))
        dense = conns[0]
        on = BaselineActivityModel(BaselineConfig(event_driven=True))
        off = BaselineActivityModel(BaselineConfig(event_driven=False))
        assert on.layer_counts(dense, 0.1, 16).macs < off.layer_counts(dense, 0.1, 16).macs

    def test_counts_scale_with_timesteps(self):
        conns = extract_connectivity(build_mnist_mlp(scale=0.3))
        model = BaselineActivityModel(BaselineConfig())
        short = model.layer_counts(conns[0], 0.2, 8)
        long = model.layer_counts(conns[0], 0.2, 16)
        assert long.macs == pytest.approx(2 * short.macs)
        assert long.compute_cycles == pytest.approx(2 * short.compute_cycles)

    def test_validation(self):
        conns = extract_connectivity(build_mnist_mlp(scale=0.3))
        model = BaselineActivityModel(BaselineConfig())
        with pytest.raises(ValueError):
            model.layer_counts(conns[0], 1.5, 16)
        with pytest.raises(ValueError):
            model.layer_counts(conns[0], 0.5, 0)


class TestCmosBaselineModel:
    @pytest.fixture(scope="class")
    def workload(self):
        network = build_mnist_mlp(scale=0.2)
        import numpy as np

        from repro.datasets import make_dataset

        dataset = make_dataset("mnist", train_samples=8, test_samples=8, seed=0)
        inputs = dataset.test_images.reshape(8, -1)
        snn = convert_to_snn(network, inputs[:4])
        trace = SpikingSimulator(timesteps=8, rng=np.random.default_rng(0)).run(snn, inputs[:2]).trace
        return network, trace

    def test_energy_and_latency_positive(self, workload):
        network, trace = workload
        evaluation = CmosBaselineModel().evaluate(network, trace)
        assert evaluation.energy_per_classification_j > 0
        assert evaluation.latency_per_classification_s > 0

    def test_breakdown_groups_present(self, workload):
        network, trace = workload
        groups = CmosBaselineModel().evaluate(network, trace).energy.grouped()
        assert set(groups) >= {"core", "memory_access", "memory_leakage"}

    def test_event_driven_saves_energy(self, workload):
        network, trace = workload
        on = CmosBaselineModel(config=BaselineConfig(event_driven=True)).evaluate(network, trace)
        off = CmosBaselineModel(config=BaselineConfig(event_driven=False)).evaluate(network, trace)
        assert on.energy_per_classification_j < off.energy_per_classification_j
        assert on.latency_per_classification_s <= off.latency_per_classification_s

    def test_higher_precision_costs_more(self, workload):
        network, trace = workload
        four = CmosBaselineModel(config=BaselineConfig()).evaluate(network, trace)
        eight = CmosBaselineModel(config=BaselineConfig().with_weight_bits(8)).evaluate(network, trace)
        assert eight.energy_per_classification_j > four.energy_per_classification_j

    def test_accepts_connectivity_list(self, workload):
        network, trace = workload
        conns = extract_connectivity(network)
        evaluation = CmosBaselineModel().evaluate(conns, trace)
        assert evaluation.energy_per_classification_j > 0
