"""Offline ANN training.

The paper evaluates inference only: its SNNs were "trained offline using
supervised training algorithms" (Diehl et al.'s conversion flow).  This
module provides the offline half — a small NumPy training loop with SGD and
Adam optimisers and a softmax cross-entropy loss — sufficient to train the
benchmark MLPs and CNNs on the synthetic datasets so that converted SNNs
exhibit realistic, input-dependent spiking activity and so the
bit-discretisation accuracy study (Fig. 14a) has a real accuracy signal to
measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.snn.network import Network
from repro.utils.validation import check_positive

__all__ = ["softmax", "cross_entropy_loss", "TrainingResult", "Trainer"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy_loss(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean softmax cross-entropy loss and its gradient w.r.t. the logits."""
    labels = np.asarray(labels, dtype=int)
    probs = softmax(logits)
    batch = logits.shape[0]
    eps = 1e-12
    loss = float(-np.mean(np.log(probs[np.arange(batch), labels] + eps)))
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


@dataclass(frozen=True)
class TrainingResult:
    """Outcome of a training run."""

    losses: tuple[float, ...]
    train_accuracy: float
    epochs: int

    @property
    def final_loss(self) -> float:
        """Loss of the last optimisation step."""
        return self.losses[-1] if self.losses else float("nan")


@dataclass
class Trainer:
    """Mini-batch trainer for :class:`repro.snn.network.Network`.

    Parameters
    ----------
    learning_rate:
        Step size.
    optimizer:
        ``"sgd"`` (with optional momentum) or ``"adam"``.
    momentum:
        Momentum coefficient for SGD.
    batch_size:
        Mini-batch size.
    rng:
        Generator used to shuffle the training set each epoch.
    """

    learning_rate: float = 0.05
    optimizer: str = "adam"
    momentum: float = 0.9
    batch_size: int = 32
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        check_positive("learning_rate", self.learning_rate)
        check_positive("batch_size", self.batch_size)
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError(f"optimizer must be 'sgd' or 'adam', got {self.optimizer!r}")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")
        self._state: dict[tuple[int, str], dict[str, np.ndarray]] = {}
        self._adam_step = 0

    # -- optimiser updates -----------------------------------------------------

    def _update(self, key: tuple[int, str], param: np.ndarray, grad: np.ndarray) -> None:
        state = self._state.setdefault(key, {})
        if self.optimizer == "sgd":
            velocity = state.get("velocity")
            if velocity is None:
                velocity = np.zeros_like(param)
            velocity = self.momentum * velocity - self.learning_rate * grad
            state["velocity"] = velocity
            param += velocity
        else:  # adam
            beta1, beta2, eps = 0.9, 0.999, 1e-8
            m = state.get("m", np.zeros_like(param))
            v = state.get("v", np.zeros_like(param))
            m = beta1 * m + (1 - beta1) * grad
            v = beta2 * v + (1 - beta2) * grad**2
            state["m"], state["v"] = m, v
            t = self._adam_step
            m_hat = m / (1 - beta1**t)
            v_hat = v / (1 - beta2**t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

    # -- training loop -----------------------------------------------------------

    def train_step(self, network: Network, x: np.ndarray, labels: np.ndarray) -> float:
        """One forward/backward/update pass over a mini-batch; returns the loss."""
        logits = network.forward(x, training=True)
        loss, grad = cross_entropy_loss(logits, labels)
        self._adam_step += 1
        for layer in reversed(network.layers):
            grad = layer.backward(grad)
        for index, layer in enumerate(network.layers):
            params = layer.parameters()
            grads = layer.gradients()
            for name, param in params.items():
                if name in grads:
                    self._update((index, name), param, grads[name])
        return loss

    def fit(
        self,
        network: Network,
        x: np.ndarray,
        labels: np.ndarray,
        epochs: int = 1,
    ) -> TrainingResult:
        """Train ``network`` in place on a labelled dataset.

        Returns
        -------
        TrainingResult
            Per-step losses and the final training accuracy.
        """
        check_positive("epochs", epochs)
        x = np.asarray(x, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if x.shape[0] != labels.shape[0]:
            raise ValueError("x and labels must have the same number of samples")
        n = x.shape[0]
        losses: list[float] = []
        for _ in range(int(epochs)):
            order = self.rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch_idx = order[start : start + self.batch_size]
                losses.append(self.train_step(network, x[batch_idx], labels[batch_idx]))
        return TrainingResult(
            losses=tuple(losses),
            train_accuracy=network.accuracy(x, labels),
            epochs=int(epochs),
        )
