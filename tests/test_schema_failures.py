"""Failure paths and property tests for the serving wire schema.

The schema is the trust boundary of the distributed subsystem: every byte a
chip server or process worker reads arrives through
``InferenceRequest.from_json`` / ``InferenceResponse.from_json``.  These
tests pin down the failure behaviour — malformed JSON, missing required
fields and unknown fields must all surface as :class:`ValueError` with a
message naming the problem — and property-test the lossless float round
trip of :class:`EventCounters` and :class:`EnergyReport` over randomized
values (JSON's shortest-round-trip float printing makes the cycle exact).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EventCounters
from repro.energy.model import EnergyReport
from repro.serve import InferenceRequest, InferenceResponse
from repro.serve.schema import (
    FRAME_HEADER_SIZE,
    FRAME_MAGIC,
    decode_frame,
    encode_frame,
    parse_frame_header,
)


def _request_dict() -> dict:
    return InferenceRequest(
        inputs=np.random.default_rng(0).random((3, 4)),
        labels=np.array([1, 2, 3]),
        timesteps=5,
        sample_offset=2,
    ).to_dict()


class TestMalformedPayloads:
    @pytest.mark.parametrize(
        "payload, match",
        [
            ("{not json", "malformed request JSON"),
            ("", "malformed request JSON"),
            ("[1, 2]", "must be a JSON object"),
            ('"a string"', "must be a JSON object"),
        ],
    )
    def test_request_from_json_rejects_junk(self, payload, match):
        with pytest.raises(ValueError, match=match):
            InferenceRequest.from_json(payload)

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("{truncated", "malformed response JSON"),
            ("null", "must be a JSON object"),
        ],
    )
    def test_response_from_json_rejects_junk(self, payload, match):
        with pytest.raises(ValueError, match=match):
            InferenceResponse.from_json(payload)

    def test_request_missing_inputs(self):
        data = _request_dict()
        del data["inputs"]
        with pytest.raises(ValueError, match=r"missing required fields: \['inputs'\]"):
            InferenceRequest.from_dict(data)

    def test_request_unknown_field(self):
        data = _request_dict()
        data["priority"] = "high"
        with pytest.raises(ValueError, match=r"unknown fields: \['priority'\]"):
            InferenceRequest.from_dict(data)

    def test_request_optional_fields_may_be_absent(self):
        restored = InferenceRequest.from_dict({"inputs": [[0.5, 0.25]]})
        assert restored.batch_size == 1
        assert restored.labels is None
        assert restored.timesteps is None
        assert restored.sample_offset == 0

    def test_response_missing_fields_are_named(self):
        with pytest.raises(ValueError, match="missing required fields") as excinfo:
            InferenceResponse.from_dict({"predictions": [1]})
        for name in ("counters", "energy", "backend"):
            assert name in str(excinfo.value)

    def test_response_unknown_field(self):
        data = {
            "predictions": [1],
            "spike_counts": [[0.0]],
            "counters": EventCounters().as_dict(),
            "energy": EnergyReport(label="t").to_dict(),
            "timesteps": 4,
            "backend": "vectorized",
            "batch_size": 1,
            "warp_factor": 9,
        }
        with pytest.raises(ValueError, match=r"unknown fields: \['warp_factor'\]"):
            InferenceResponse.from_dict(data)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="batch is empty"):
            InferenceRequest(inputs=np.zeros((0, 4)))
        with pytest.raises(ValueError, match="batch is empty"):
            InferenceRequest(inputs=[])

    def test_featureless_samples_rejected(self):
        with pytest.raises(ValueError, match="at least one feature"):
            InferenceRequest(inputs=np.zeros((3, 0)))

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels length 2"):
            InferenceRequest(inputs=np.zeros((3, 4)), labels=np.array([0, 1]))

    def test_request_json_round_trip(self):
        data = _request_dict()
        restored = InferenceRequest.from_json(json.dumps(data))
        assert restored.to_dict() == data


# -- property tests -----------------------------------------------------------------

finite_counts = st.floats(
    min_value=0.0, max_value=1e15, allow_nan=False, allow_infinity=False
)

counters_strategy = st.builds(
    EventCounters,
    **{name: finite_counts for name in EventCounters().as_dict()},
)

component_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
)
energy_values = st.floats(
    min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestRoundTripProperties:
    @settings(max_examples=50, deadline=None)
    @given(counters=counters_strategy)
    def test_event_counters_survive_json_exactly(self, counters):
        payload = json.dumps(counters.as_dict())
        restored = EventCounters.from_dict(json.loads(payload))
        assert restored.as_dict() == counters.as_dict()

    @settings(max_examples=50, deadline=None)
    @given(
        components=st.dictionaries(component_names, energy_values, max_size=8),
        label=st.text(min_size=1, max_size=20),
    )
    def test_energy_report_survives_json_exactly(self, components, label):
        report = EnergyReport(label=label)
        for name, value in components.items():
            report.add(name, value)
        restored = EnergyReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert restored.components == report.components
        assert restored.label == report.label

    @settings(max_examples=25, deadline=None)
    @given(counters=counters_strategy)
    def test_merge_commutes_with_round_trip(self, counters):
        # Merging then serialising equals serialising then merging — the
        # property the pool/gateway merge relies on when responses cross a
        # process or socket boundary.
        other = EventCounters(crossbar_evaluations=7.0, neuron_spikes=3.5)
        direct = counters.merge(other).as_dict()
        via_wire = (
            EventCounters.from_dict(json.loads(json.dumps(counters.as_dict())))
            .merge(other)
            .as_dict()
        )
        assert direct == via_wire


# -- binary frame codec (protocol v3) -----------------------------------------------

wire_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
float_arrays = st.lists(wire_floats, max_size=16).map(
    lambda values: np.asarray(values, dtype="<f8")
)
int_arrays = st.lists(
    st.integers(min_value=-(2**53), max_value=2**53), max_size=16
).map(lambda values: np.asarray(values, dtype="<i8"))
wire_arrays = float_arrays | int_arrays

json_scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**6), max_value=10**6)
    | wire_floats
    | st.text(max_size=8)
)
meta_keys = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=6)
envelope_values = st.recursive(
    json_scalars | wire_arrays,
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(meta_keys, children, max_size=3),
    max_leaves=12,
)
envelopes = st.dictionaries(meta_keys, envelope_values, max_size=4)


def _trees_equal(left, right) -> bool:
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        return (
            isinstance(left, np.ndarray)
            and isinstance(right, np.ndarray)
            and left.dtype == right.dtype
            and left.shape == right.shape
            and np.array_equal(left, right)
        )
    if isinstance(left, dict) and isinstance(right, dict):
        return left.keys() == right.keys() and all(
            _trees_equal(left[key], right[key]) for key in left
        )
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        return len(left) == len(right) and all(
            _trees_equal(a, b) for a, b in zip(left, right)
        )
    return type(left) is type(right) and left == right


class TestFrameCodecProperties:
    @settings(max_examples=50, deadline=None)
    @given(envelope=envelopes)
    def test_arbitrary_envelopes_round_trip(self, envelope):
        frame = encode_frame(envelope)
        assert frame[: len(FRAME_MAGIC)] == FRAME_MAGIC
        assert _trees_equal(decode_frame(frame), envelope)

    @settings(max_examples=25, deadline=None)
    @given(first=envelopes, second=envelopes)
    def test_reused_encode_buffer_is_not_corrupted(self, first, second):
        # Back-to-back encodes into one buffer: each frame must decode to
        # its own envelope even when the second is shorter than the first.
        buffer = bytearray()
        assert _trees_equal(
            decode_frame(bytes(encode_frame(first, buffer=buffer))), first
        )
        assert _trees_equal(
            decode_frame(bytes(encode_frame(second, buffer=buffer))), second
        )

    @settings(max_examples=50, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=5),
        features=st.integers(min_value=1, max_value=6),
        with_labels=st.booleans(),
        timesteps=st.none() | st.integers(min_value=1, max_value=9),
        sample_offset=st.integers(min_value=0, max_value=100),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_request_frame_round_trip_is_lossless(
        self, batch, features, with_labels, timesteps, sample_offset, seed
    ):
        rng = np.random.default_rng(seed)
        request = InferenceRequest(
            inputs=rng.random((batch, features)),
            labels=rng.integers(0, 10, size=batch) if with_labels else None,
            timesteps=timesteps,
            sample_offset=sample_offset,
        )
        restored = InferenceRequest.from_frame(request.to_frame())
        assert restored.to_dict() == request.to_dict()
        np.testing.assert_array_equal(restored.batch, request.batch)

    @settings(max_examples=50, deadline=None)
    @given(envelope=envelopes, cut=st.integers(min_value=0, max_value=10**6))
    def test_truncated_frames_raise_value_error(self, envelope, cut):
        frame = encode_frame(envelope)
        if cut >= len(frame):
            cut = len(frame) - 1
        with pytest.raises(ValueError):
            decode_frame(frame[:cut])

    @settings(max_examples=50, deadline=None)
    @given(header=st.binary(min_size=FRAME_HEADER_SIZE, max_size=FRAME_HEADER_SIZE))
    def test_non_magic_headers_are_rejected(self, header):
        if header[: len(FRAME_MAGIC)] == FRAME_MAGIC:
            header = b"\x00" + header[1:]
        with pytest.raises(ValueError, match="magic"):
            parse_frame_header(header)

    def test_descriptor_past_payload_end_is_rejected(self):
        meta = json.dumps(
            {
                "envelope": {"x": {"__nd__": 0}},
                "arrays": [{"dtype": "<f8", "shape": [4], "offset": 0}],
            },
            separators=(",", ":"),
        ).encode()
        frame = (
            FRAME_MAGIC
            + len(meta).to_bytes(4, "little")
            + (8).to_bytes(8, "little")
            + meta
            + bytes(8)
        )
        with pytest.raises(ValueError, match="payload holds"):
            decode_frame(frame)

    def test_reserved_placeholder_key_is_rejected_on_encode(self):
        with pytest.raises(ValueError, match="reserved"):
            encode_frame({"request": {"__nd__": 3}})
