"""The distributed serving subsystem: executors, server/client, gateway.

The parity bar is the one :mod:`tests.test_serve_api` sets for the thread
pool: a distributed run is only allowed to be *parallel* (or *remote*) —
never different.  Predictions, spike counts and every integer event counter
must match a single :class:`~repro.serve.ChipSession` exactly; accumulated
float energies agree to 1e-9 relative.  That must hold for every shard
executor (inline / thread / process), for a response read back over the
chip server's socket, and for a gateway merge across mixed local/remote
endpoints.
"""

from __future__ import annotations

import json
import socket

import numpy as np
import pytest

from repro.core import ArchitectureConfig, EventCounters
from repro.serve import ChipPool, ChipSession, InferenceRequest
from repro.serve.distributed import (
    EXECUTORS,
    ChipServer,
    GatewayEndpoint,
    InferenceGateway,
    RemoteServerError,
    RemoteSession,
    load_benchmark_workload,
    make_executor,
    parse_endpoint,
)
from repro.snn import Dense, Network, convert_to_snn

ENERGY_RTOL = 1e-9

EXACT_COUNTERS = [
    name for name in EventCounters().as_dict() if name != "crossbar_device_energy_j"
]


def _mlp(seed: int, dims: tuple[int, ...]):
    rng = np.random.default_rng(seed)
    layers = []
    for i, (n_in, n_out) in enumerate(zip(dims[:-1], dims[1:])):
        last = i == len(dims) - 2
        layers.append(
            Dense(
                n_in,
                n_out,
                activation=None if last else "relu",
                use_bias=False,
                rng=rng,
                name=f"fc{i}",
            )
        )
    network = Network((dims[0],), layers, name=f"dist-{'x'.join(map(str, dims))}")
    return convert_to_snn(network, rng.random((12, dims[0])))


@pytest.fixture(scope="module")
def workload():
    snn = _mlp(5, (48, 24, 10))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    rng = np.random.default_rng(42)
    inputs = rng.random((13, 48))
    labels = rng.integers(0, 10, size=13)
    return snn, config, inputs, labels


@pytest.fixture(scope="module")
def single_response(workload):
    snn, config, inputs, labels = workload
    session = ChipSession(snn, config=config, timesteps=6, encoder="poisson", seed=11)
    return session.infer(InferenceRequest(inputs=inputs, labels=labels))


def _assert_responses_identical(single, other):
    np.testing.assert_array_equal(single.predictions, other.predictions)
    np.testing.assert_array_equal(single.spike_counts, other.spike_counts)
    assert single.accuracy == other.accuracy
    s, p = single.counters.as_dict(), other.counters.as_dict()
    for name in EXACT_COUNTERS:
        assert s[name] == p[name], f"counter {name}: single={s[name]} other={p[name]}"
    assert p["crossbar_device_energy_j"] == pytest.approx(
        s["crossbar_device_energy_j"], rel=ENERGY_RTOL
    )
    assert other.energy.total_j == pytest.approx(single.energy.total_j, rel=ENERGY_RTOL)
    for component, energy_j in single.energy.components.items():
        assert other.energy.components[component] == pytest.approx(
            energy_j, rel=ENERGY_RTOL, abs=1e-30
        ), f"energy component {component}"


# -- executors ----------------------------------------------------------------------


class TestExecutors:
    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_every_executor_matches_single_session(
        self, workload, single_response, executor
    ):
        snn, config, inputs, labels = workload
        with ChipPool(
            snn,
            jobs=3,
            config=config,
            timesteps=6,
            encoder="poisson",
            seed=11,
            executor=executor,
        ) as pool:
            assert pool.executor == executor
            sharded = pool.infer(InferenceRequest(inputs=inputs, labels=labels))
        assert sharded.jobs == 3
        _assert_responses_identical(single_response, sharded)

    def test_process_executor_structural_backend(self, workload):
        snn, config, inputs, labels = workload
        request = InferenceRequest(inputs=inputs[:4], labels=labels[:4])
        session = ChipSession(
            snn, config=config, timesteps=4, encoder="poisson",
            backend="structural", seed=2,
        )
        single = session.infer(request)
        with ChipPool(
            snn,
            jobs=2,
            config=config,
            timesteps=4,
            encoder="poisson",
            backend="structural",
            seed=2,
            executor="process",
        ) as pool:
            sharded = pool.infer(request)
        _assert_responses_identical(single, sharded)

    def test_process_executor_repeated_batches(self, workload, single_response):
        # Worker chips live for the pool's lifetime; the second batch must
        # not inherit state from the first (counters are per-run deltas).
        snn, config, inputs, labels = workload
        request = InferenceRequest(inputs=inputs, labels=labels)
        with ChipPool(
            snn, jobs=2, config=config, timesteps=6, encoder="poisson",
            seed=11, executor="process",
        ) as pool:
            first = pool.infer(request)
            second = pool.infer(request)
        _assert_responses_identical(single_response, first)
        _assert_responses_identical(single_response, second)

    def test_single_worker_pool_downgrades_to_inline(self, workload, single_response):
        # jobs=1 never shards, so no process worker (with its own programmed
        # chip) should be provisioned; the executor name is still validated.
        snn, config, inputs, labels = workload
        with ChipPool(
            snn, jobs=1, config=config, timesteps=6, encoder="poisson",
            seed=11, executor="process",
        ) as pool:
            assert pool.executor == "inline"
            response = pool.infer(InferenceRequest(inputs=inputs, labels=labels))
        _assert_responses_identical(single_response, response)
        with pytest.raises(ValueError, match="executor must be one of"):
            ChipPool(snn, jobs=1, config=config, executor="bogus")

    def test_unknown_executor_rejected(self, workload):
        snn, config, _, _ = workload
        with pytest.raises(ValueError, match="executor must be one of"):
            ChipPool(snn, jobs=2, config=config, executor="carrier-pigeon")
        with pytest.raises(ValueError, match="executor must be one of"):
            make_executor("quantum")

    def test_executor_instance_accepted(self, workload, single_response):
        snn, config, inputs, labels = workload
        with ChipPool(
            snn,
            jobs=2,
            config=config,
            timesteps=6,
            encoder="poisson",
            seed=11,
            executor=make_executor("inline"),
        ) as pool:
            sharded = pool.infer(InferenceRequest(inputs=inputs, labels=labels))
        _assert_responses_identical(single_response, sharded)


# -- server / client ----------------------------------------------------------------


@pytest.fixture(scope="module")
def served_pool(workload):
    snn, config, _, _ = workload
    with ChipPool(
        snn, jobs=2, config=config, timesteps=6, encoder="poisson", seed=11
    ) as pool:
        with ChipServer(pool, port=0, workload="dist-test").start() as server:
            yield server


class TestServerClient:
    def test_remote_infer_is_result_identical(
        self, served_pool, workload, single_response
    ):
        _, _, inputs, labels = workload
        with RemoteSession.connect(served_pool.endpoint) as remote:
            response = remote.infer(InferenceRequest(inputs=inputs, labels=labels))
        assert response.jobs == 2
        _assert_responses_identical(single_response, response)
        # The JSON wire round trip is lossless, so the float counters and
        # energy components are not just close — they are bit-identical.
        assert response.counters.as_dict() == pytest.approx(
            single_response.counters.as_dict(), rel=ENERGY_RTOL
        )

    def test_ping_info_and_session_surface(self, served_pool):
        with RemoteSession.connect(served_pool.endpoint) as remote:
            assert remote.ping()
            info = remote.info()
            assert info["workload"] == "dist-test"
            assert info["jobs"] == 2
            assert remote.capacity == 2
            assert remote.backend == "vectorized"
            assert remote.timesteps == 6

    def test_many_requests_on_one_connection(self, served_pool, workload):
        _, _, inputs, _ = workload
        with RemoteSession.connect(served_pool.endpoint) as remote:
            first = remote.infer(InferenceRequest(inputs=inputs[:3]))
            second = remote.infer(InferenceRequest(inputs=inputs[:3]))
        np.testing.assert_array_equal(first.predictions, second.predictions)

    def test_server_error_replies(self, served_pool):
        host, port = served_pool.address
        with socket.create_connection((host, port), timeout=10) as raw:
            stream = raw.makefile("rwb")
            for line, fragment in [
                (b"this is not json", b"malformed request line"),
                (b"[1, 2, 3]", b"must be a JSON object"),
                (b'{"op": "warp"}', b"unknown op"),
                (b'{"op": "infer"}', b"request"),
                (b'{"op": "infer", "request": {"bogus": 1}}', b"missing required"),
            ]:
                stream.write(line + b"\n")
                stream.flush()
                reply = json.loads(stream.readline())
                assert reply["ok"] is False
                assert fragment.decode() in reply["error"], reply["error"]

    def test_client_raises_remote_server_error(self, served_pool):
        with RemoteSession.connect(served_pool.endpoint) as remote:
            with pytest.raises(RemoteServerError, match="unknown op"):
                remote._call({"op": "time-travel"})

    def test_concurrent_clients_on_bare_structural_session(self, workload):
        # A bare ChipSession is not thread-safe (the structural backend
        # mutates live chip state per run); the server must serialise
        # concurrent clients so each still gets the exact single-client
        # answer.
        from concurrent.futures import ThreadPoolExecutor

        snn, config, inputs, labels = workload
        session = ChipSession(
            snn, config=config, timesteps=4, encoder="poisson",
            backend="structural", seed=6,
        )
        request = InferenceRequest(inputs=inputs[:4], labels=labels[:4])
        expected = session.infer(request)

        def one_client(_):
            with RemoteSession.connect(server.address) as remote:
                return remote.infer(request)

        with ChipServer(session, port=0, workload="structural").start() as server:
            with ThreadPoolExecutor(max_workers=4) as clients:
                responses = list(clients.map(one_client, range(4)))
        for response in responses:
            np.testing.assert_array_equal(response.predictions, expected.predictions)
            np.testing.assert_array_equal(response.spike_counts, expected.spike_counts)

    def test_shutdown_op_stops_server(self, workload):
        snn, config, inputs, _ = workload
        session = ChipSession(snn, config=config, timesteps=4, seed=0)
        server = ChipServer(session, port=0, workload="ephemeral").start()
        with RemoteSession.connect(server.address) as remote:
            response = remote.infer(InferenceRequest(inputs=inputs[:2]))
            assert response.batch_size == 2
            remote.shutdown_server()
        server.close()  # idempotent with the remote shutdown
        with pytest.raises(OSError):
            RemoteSession(*server.address)

    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:7070") == ("127.0.0.1", 7070)
        assert parse_endpoint("chips.internal:80") == ("chips.internal", 80)
        for bad, match in [
            ("nonsense", "HOST:PORT"),
            (":7070", "HOST:PORT"),
            ("host:", "must be an integer"),
            ("host:seventy", "must be an integer"),
            ("host:0", r"\[1, 65535\]"),
            ("host:99999", r"\[1, 65535\]"),
        ]:
            with pytest.raises(ValueError, match=match):
                parse_endpoint(bad)

    def test_load_benchmark_workload_rejects_cnn(self):
        with pytest.raises(ValueError, match="not an MLP"):
            load_benchmark_workload("mnist-cnn")


# -- gateway ------------------------------------------------------------------------


class TestGateway:
    def test_local_endpoints_match_single_session(self, workload, single_response):
        snn, config, inputs, labels = workload
        a = ChipSession(snn, config=config, timesteps=6, encoder="poisson", seed=11)
        b = ChipSession(snn, config=config, timesteps=6, encoder="poisson", seed=11)
        with InferenceGateway(
            [
                GatewayEndpoint(target=a, capacity=1, name="a"),
                GatewayEndpoint(target=b, capacity=3, name="b"),
            ]
        ) as gateway:
            merged = gateway.infer(InferenceRequest(inputs=inputs, labels=labels))
        _assert_responses_identical(single_response, merged)
        shards = merged.metadata["shards"]
        assert [s["endpoint"] for s in shards] == ["a", "b"]
        # capacity 1 vs 3 on 13 samples: cumulative rounding gives 3 + 10.
        assert [(s["start"], s["stop"]) for s in shards] == [(0, 3), (3, 13)]

    def test_mixed_remote_and_local_endpoints(
        self, served_pool, workload, single_response
    ):
        snn, config, inputs, labels = workload
        local = ChipSession(snn, config=config, timesteps=6, encoder="poisson", seed=11)
        with RemoteSession.connect(served_pool.endpoint) as remote:
            with InferenceGateway([remote, local]) as gateway:
                # The remote pool advertises capacity 2, the session 1.
                assert gateway.total_capacity == 3.0
                merged = gateway.infer(
                    InferenceRequest(inputs=inputs, labels=labels)
                )
        _assert_responses_identical(single_response, merged)
        assert merged.metadata["gateway"] == "gateway"

    def test_capacity_defaults_from_pool_jobs(self, workload):
        snn, config, _, _ = workload
        with ChipPool(
            snn, jobs=4, config=config, timesteps=6, encoder="poisson", seed=11
        ) as pool:
            endpoint = GatewayEndpoint(target=pool)
            assert endpoint.capacity == 4.0

    def test_shard_plan_covers_batch_exactly(self, workload):
        snn, config, _, _ = workload
        sessions = [
            ChipSession(snn, config=config, timesteps=4, seed=11) for _ in range(3)
        ]
        gateway = InferenceGateway(
            [
                GatewayEndpoint(target=s, capacity=c)
                for s, c in zip(sessions, (1.0, 2.5, 0.5))
            ]
        )
        for batch in (1, 2, 3, 7, 13, 64):
            plan = gateway.shard_plan(batch)
            assert plan[0].start == 0
            assert plan[-1].stop == batch
            for earlier, later in zip(plan, plan[1:]):
                assert earlier.stop == later.start
                assert later.stop > later.start
        gateway.close()

    def test_small_batch_skips_low_capacity_endpoints(self, workload, single_response):
        snn, config, inputs, labels = workload
        a = ChipSession(snn, config=config, timesteps=6, encoder="poisson", seed=11)
        b = ChipSession(snn, config=config, timesteps=6, encoder="poisson", seed=11)
        with InferenceGateway(
            [
                GatewayEndpoint(target=a, capacity=1, name="small"),
                GatewayEndpoint(target=b, capacity=100, name="big"),
            ]
        ) as gateway:
            response = gateway.infer(
                InferenceRequest(inputs=inputs[:2], labels=labels[:2])
            )
        np.testing.assert_array_equal(
            response.predictions, single_response.predictions[:2]
        )
        np.testing.assert_array_equal(
            response.spike_counts, single_response.spike_counts[:2]
        )

    def test_single_endpoint_response_keeps_gateway_shape(
        self, workload, single_response
    ):
        # Even a one-shard plan must produce a gateway-shaped response
        # (metadata["gateway"]/["shards"]), not the endpoint's raw response.
        snn, config, inputs, labels = workload
        session = ChipSession(snn, config=config, timesteps=6, encoder="poisson", seed=11)
        with InferenceGateway([session], name="solo") as gateway:
            response = gateway.infer(InferenceRequest(inputs=inputs, labels=labels))
        _assert_responses_identical(single_response, response)
        assert response.metadata["gateway"] == "solo"
        assert [(s["start"], s["stop"]) for s in response.metadata["shards"]] == [
            (0, 13)
        ]

    def test_gateway_validation(self, workload):
        snn, config, _, _ = workload
        session = ChipSession(snn, config=config, timesteps=4, seed=0)
        with pytest.raises(ValueError, match="at least one endpoint"):
            InferenceGateway([])
        with pytest.raises(TypeError, match="must provide infer"):
            GatewayEndpoint(target="not-a-session")
        with pytest.raises(ValueError, match="capacity must be > 0"):
            GatewayEndpoint(target=session, capacity=-1)

    def test_closed_gateway_rejects_requests(self, workload):
        snn, config, inputs, _ = workload
        session = ChipSession(snn, config=config, timesteps=4, seed=0)
        gateway = InferenceGateway([session])
        gateway.close()
        gateway.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            gateway.infer(InferenceRequest(inputs=inputs))


# -- experiment / runner integration ------------------------------------------------


class TestExperimentWiring:
    @pytest.fixture(scope="class")
    def context(self):
        from repro.experiments import ExperimentSettings, WorkloadContext

        return WorkloadContext(
            ExperimentSettings(
                timesteps=4,
                eval_samples=4,
                train_samples=16,
                test_samples=8,
                train_epochs=0,
                network_scale=0.15,
                seed=11,
            )
        )

    def test_evaluate_chip_executors_agree(self, context):
        workload = context.prepare("mnist-mlp")
        thread = context.evaluate_chip(workload, crossbar_size=32, jobs=2)
        inline = context.evaluate_chip(
            workload, crossbar_size=32, jobs=2, executor="inline"
        )
        np.testing.assert_array_equal(thread.predictions, inline.predictions)
        np.testing.assert_array_equal(thread.spike_counts, inline.spike_counts)
        assert thread.counters.as_dict() == inline.counters.as_dict()
        assert inline.energy.total_j == pytest.approx(
            thread.energy.total_j, rel=ENERGY_RTOL
        )

    def test_evaluate_chip_endpoint_roundtrip(self, context):
        # A server wrapping the *same prepared workload* must hand back the
        # exact numbers a local pooled run produces.
        prepared = context.prepare("mnist-mlp")
        local = context.evaluate_chip(prepared, jobs=2)
        from repro.core import ArchitectureConfig as AC
        from repro.utils.rng import stable_seed

        s = context.settings
        with ChipPool(
            prepared.snn,
            jobs=2,
            config=AC().with_crossbar_size(64).with_event_driven(True),
            timesteps=s.timesteps,
            encoder="poisson",
            seed=stable_seed(s.seed, "chip", prepared.name),
        ) as pool:
            with ChipServer(pool, port=0, workload="mnist-mlp").start() as server:
                remote = context.evaluate_chip(prepared, endpoint=server.endpoint)
        np.testing.assert_array_equal(local.predictions, remote.predictions)
        np.testing.assert_array_equal(local.spike_counts, remote.spike_counts)
        assert local.counters.as_dict() == remote.counters.as_dict()
        assert remote.energy.total_j == pytest.approx(
            local.energy.total_j, rel=ENERGY_RTOL
        )

    def test_evaluate_chip_endpoint_rejects_wrong_workload(self, context, workload):
        # A single-workload server cannot answer for another benchmark; the
        # mismatch must fail before any batch is sent, with a message naming
        # both workloads.
        snn, config, _, _ = workload
        prepared = context.prepare("mnist-mlp")
        session = ChipSession(snn, config=config, timesteps=4, seed=0)
        with ChipServer(session, port=0, workload="svhn-mlp").start() as server:
            with pytest.raises(ValueError, match="serves 'svhn-mlp', not 'mnist-mlp'"):
                context.evaluate_chip(prepared, endpoint=server.endpoint)

    def test_settings_validation(self):
        from repro.experiments import ExperimentSettings

        with pytest.raises(ValueError, match="chip_executor must be one of"):
            ExperimentSettings(chip_executor="smoke-signals")
        with pytest.raises(ValueError, match="HOST:PORT"):
            ExperimentSettings(chip_endpoint="not-an-endpoint")

    @pytest.mark.parametrize(
        "argv",
        [
            ["--jobs", "0"],
            ["--executor", "process"],
            ["--executor", "process", "--jobs", "1"],
            ["--endpoint", "nonsense"],
            ["--endpoint", "host:99999"],
            ["--endpoint", "host:7070", "--jobs", "2"],
            ["--endpoint", "host:7070", "--backend", "vectorized"],
        ],
    )
    def test_runner_rejects_inconsistent_arguments(self, argv):
        from repro.experiments.runner import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2  # argparse usage error, not a traceback
