"""Structural walkthrough: build a RESPARC chip and execute spikes through it.

The other examples use the analytical architecture model.  This one
instantiates the actual hierarchy — memristive crossbars inside macro
Processing Engines inside NeuroCells around a shared IO bus — programs a
small trained MLP into the crossbars, pushes spike packets through the
switches, and reports what each level of the hierarchy did (crossbar
evaluations, buffer traffic, suppressed zero packets, bus words), alongside
the classification results.

Run with:  python examples/structural_chip_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ArchitectureConfig, ChipSimulator
from repro.datasets import make_dataset
from repro.snn import Dense, Network, Trainer, convert_to_snn
from repro.utils.units import format_energy


def main() -> None:
    rng = np.random.default_rng(0)

    # A deliberately small MLP so every tile and mPE is easy to inspect.
    dataset = make_dataset("mnist", train_samples=192, test_samples=24, seed=1)
    train_x = dataset.train_images.reshape(-1, 784)[:, ::4]  # 196 inputs
    test_x = dataset.test_images.reshape(-1, 784)[:, ::4]
    network = Network(
        (196,),
        [
            Dense(196, 48, use_bias=False, rng=rng, name="hidden"),
            Dense(48, 10, activation=None, use_bias=False, rng=rng, name="output"),
        ],
        name="walkthrough-mlp",
    )
    Trainer(learning_rate=0.005, batch_size=32, rng=rng).fit(
        network, train_x, dataset.train_labels, epochs=6
    )
    snn = convert_to_snn(network, train_x[:48])

    config = ArchitectureConfig(crossbar_rows=32, crossbar_columns=32)
    simulator = ChipSimulator(config=config, timesteps=24, encoder="deterministic")
    chip = simulator.build_chip(snn)

    print("Chip organisation")
    print(f"  NeuroCells instantiated : {chip.required_neurocells()}")
    print(f"  mPEs holding tiles      : {chip.total_mpes_used}")
    print(f"  MCAs programmed         : {chip.mca_count}")
    for tile in chip.tiles:
        a = tile.assignment
        print(
            f"    layer {a.layer_index}  rows {a.row_start:>3}-{a.row_stop:<3} "
            f"cols {a.column_start:>2}-{a.column_stop:<2} -> nc{tile.neurocell_index}."
            f"mpe{tile.mpe_index}.mca{tile.mca_index}"
        )

    result = simulator.run(snn, test_x[:12], dataset.test_labels[:12], chip=chip)
    print("\nExecution (12 samples, 24 timesteps each)")
    print(f"  accuracy                : {result.accuracy:.2%}")
    print(f"  crossbar evaluations    : {int(result.counters.crossbar_evaluations)}")
    print(f"  neuron integrations     : {int(result.counters.neuron_integrations)}")
    print(f"  iBUFF/oBUFF accesses    : {int(result.counters.ibuff_accesses + result.counters.obuff_accesses)}")
    print(f"  switch hops             : {int(result.counters.switch_hops)}")
    print(f"  zero packets suppressed : {int(result.counters.suppressed_packets)}")
    print(f"  IO bus words            : {int(result.counters.io_bus_words)}")
    print(f"  energy (all samples)    : {format_energy(result.energy.total_j)}")
    print("\nEnergy breakdown")
    print(result.energy.summary())


if __name__ == "__main__":
    main()
