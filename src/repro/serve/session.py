"""Chip-owning inference sessions.

A :class:`ChipSession` is the service-layer unit of the serving API: it owns
one programmed :class:`~repro.core.resparc.ResparcChip`, the chip's compiled
fastpath program (compiled eagerly, cached for the session's lifetime) and
the encoder state, and answers :class:`~repro.serve.schema.InferenceRequest`
batches with :class:`~repro.serve.schema.InferenceResponse` results.

Two encoder regimes are supported:

* **state mode** (the serving default) — a shard-stable
  :class:`~repro.snn.encoding.EncoderState` derived from an integer seed.
  Inference is a pure function of ``(session, request)``: repeated calls
  return identical responses, and :class:`~repro.serve.pool.ChipPool` can
  split a batch across sessions without changing a single spike.
* **legacy stream mode** — an explicit :class:`numpy.random.Generator`
  whose state advances across calls, reproducing the historical
  :class:`~repro.core.simulator.ChipSimulator` semantics exactly.  The
  simulator facade delegates here, so its results are bit-identical to
  earlier releases.

This module also hosts the backend execution machinery (the structural
per-sample loop and the vectorized batch dispatch) that
:class:`~repro.core.simulator.ChipSimulator` is now a thin adapter over.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import ArchitectureConfig
from repro.core.resparc import ResparcChip
from repro.core.stats import EventCounters, counters_to_energy
from repro.crossbar.energy import CrossbarEnergyModel
from repro.energy.components import DEFAULT_LIBRARY, ComponentLibrary
from repro.energy.model import EnergyReport
from repro.serve.metrics import MetricsRegistry, get_default_registry
from repro.serve.schema import InferenceRequest, InferenceResponse
from repro.snn.conversion import SpikingNetwork
from repro.snn.encoding import DeterministicRateEncoder, EncoderState, PoissonEncoder
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive

if TYPE_CHECKING:
    from repro.fastpath.plan import PlanCache

__all__ = ["ChipSession", "CONFIG_MISMATCH_ERROR"]

#: Raised whenever a prebuilt chip is paired with a different configuration.
CONFIG_MISMATCH_ERROR = (
    "the supplied chip was built for a different ArchitectureConfig "
    "than this simulator; latency/energy accounting would mix "
    "configurations"
)


# -- backend execution machinery ----------------------------------------------------


def gather_chip_counters(chip: ResparcChip) -> EventCounters:
    """Snapshot the lifetime event counters of a structural chip's components."""
    counters = EventCounters()
    for cell in chip.neurocells:
        counters.switch_hops += cell.switch_hops
        counters.suppressed_packets += cell.suppressed_packets
        counters.zero_checks += cell.zero_checks
        for mpe in cell.mpes:
            counters.crossbar_evaluations += mpe.crossbar_evaluations
            counters.crossbar_device_energy_j += mpe.crossbar_energy_j
            counters.ibuff_accesses += sum(b.accesses for b in mpe.ibuffs)
            counters.obuff_accesses += sum(b.accesses for b in mpe.obuffs)
            counters.tbuff_accesses += mpe.tbuffer_lookups
            counters.local_control_events += mpe.control.evaluations_issued
            counters.ccu_transfers += mpe.ccu.total_transfers
            counters.neuron_integrations += mpe.neuron_integrations
    counters.io_bus_words += chip.bus.words_transferred
    counters.zero_checks += chip.bus.zero_checks
    counters.input_sram_reads += chip.input_memory.reads
    counters.input_sram_writes += chip.input_memory.writes
    if chip.global_control is not None:
        counters.global_control_events += chip.global_control.flag_updates
    return counters


def run_structural(
    chip: ResparcChip, spike_train: np.ndarray
) -> tuple[np.ndarray, np.ndarray, EventCounters]:
    """Reference path: per-sample execution through the component tree.

    Component counters accumulate for the lifetime of the chip instance, so
    the counters of this run are taken as a delta against a snapshot —
    matching the per-run semantics of the vectorized backend even when the
    same chip is reused across runs.
    """
    baseline = gather_chip_counters(chip)
    timesteps, batch, _ = spike_train.shape
    spike_counts = np.zeros((batch, chip.output_dim))
    predictions = np.zeros(batch, dtype=int)
    for sample in range(batch):
        chip.reset_state()
        for t in range(timesteps):
            out = chip.step(spike_train[t, sample])
            spike_counts[sample] += out
        final_pool = chip.neuron_pools[chip.layer_order[-1]]
        score = spike_counts[sample] + 1e-3 * final_pool.membrane.reshape(-1)
        predictions[sample] = int(np.argmax(score))
    counters = gather_chip_counters(chip).difference(baseline)
    return predictions, spike_counts, counters


def run_vectorized(
    chip: ResparcChip, spike_train: np.ndarray
) -> tuple[np.ndarray, np.ndarray, EventCounters]:
    """Fast path: compiled chip, whole-batch NumPy execution.

    The compiled program is cached per chip instance, so repeated runs on
    the same chip pay the compilation cost once.
    """
    from repro.fastpath import VectorizedChipEngine

    outcome = VectorizedChipEngine.from_chip(chip).run_batch(spike_train)
    return outcome.predictions, outcome.spike_counts, outcome.counters


_BACKEND_RUNNERS = {"structural": run_structural, "vectorized": run_vectorized}


# -- the session --------------------------------------------------------------------


class ChipSession:
    """A programmed chip plus everything needed to serve inference on it.

    Parameters
    ----------
    snn:
        The spiking network the chip executes (used for chip construction
        when no prebuilt ``chip`` is given, and for report labelling).
    chip:
        Optional prebuilt chip.  Must match ``config`` when both are given.
    config / library / timesteps / encoder / backend:
        Same meaning as on :class:`~repro.core.simulator.ChipSimulator`.
    seed:
        Seed of the session's deterministic randomness (chip programming and
        shard-stable spike encoding).  Ignored in legacy stream mode.
    rng:
        Legacy stream mode: an explicit generator consumed by chip building
        and encoding in order, exactly like ``ChipSimulator`` — spike trains
        depend on call history, so sharding would change results.
        :class:`~repro.serve.pool.ChipPool` therefore always builds its own
        state-mode sessions and never uses this mode.
    encoder_state:
        Explicit :class:`EncoderState` override (implies state mode);
        ``encoder``/``seed`` are ignored when it is given.
    """

    def __init__(
        self,
        snn: SpikingNetwork,
        *,
        chip: ResparcChip | None = None,
        config: ArchitectureConfig | None = None,
        library: ComponentLibrary | None = None,
        timesteps: int = 32,
        encoder: str = "deterministic",
        backend: str = "vectorized",
        seed: int = 0,
        rng: np.random.Generator | None = None,
        encoder_state: EncoderState | None = None,
        registry: MetricsRegistry | None = None,
    ):
        from repro.core.simulator import CHIP_BACKENDS

        check_positive("timesteps", timesteps)
        if backend not in CHIP_BACKENDS:
            raise ValueError(f"backend must be one of {CHIP_BACKENDS}, got {backend!r}")
        if encoder not in ("poisson", "deterministic"):
            raise ValueError(
                f"encoder must be 'poisson' or 'deterministic', got {encoder!r}"
            )
        if chip is not None and config is not None and chip.config != config:
            raise ValueError(CONFIG_MISMATCH_ERROR)

        self.snn = snn
        self.config = chip.config if chip is not None else (config or ArchitectureConfig())
        self.library = library or DEFAULT_LIBRARY
        self.timesteps = timesteps
        self.backend = backend
        self._rng = rng
        if rng is None:
            self.encoder_state: EncoderState | None = encoder_state or EncoderState(
                kind=encoder, seed=seed
            )
            self.encoder = self.encoder_state.kind
            build_rng = derive_rng(seed, "chip")
        else:
            self.encoder_state = None
            self.encoder = encoder
            build_rng = rng
        self.chip = chip or ResparcChip.from_spiking_network(
            snn, config=self.config, rng=build_rng
        )
        # Eager, cached compilation plus the session's plan cache: the first
        # request should not pay the lowering cost, every vectorized run
        # reuses the same program, and repeated request shapes — the common
        # case under the dynamic batcher — reuse a ready scratch arena.
        self._engine = None
        self.plan_cache: PlanCache | None = None
        if backend == "vectorized":
            from repro.fastpath import PlanCache, VectorizedChipEngine, compile_chip

            self._engine = VectorizedChipEngine(compile_chip(self.chip))
            self.plan_cache = PlanCache()
        # Session-layer instrumentation lands in the process-default
        # registry unless told otherwise (a disabled registry turns every
        # observation into an early return — the hot-path no-op mode).
        self.metrics = registry if registry is not None else get_default_registry()
        self._m_infer = self.metrics.histogram(
            "repro_session_infer_seconds", "one infer() on the chip"
        )
        self._m_samples = self.metrics.counter(
            "repro_session_samples_total", "samples inferred"
        )
        self._m_energy = self.metrics.counter(
            "repro_session_energy_joules_total", "chip energy spent"
        )
        self._m_plan_hits = self.metrics.counter(
            "repro_session_plan_cache_hits_total", "kernel plans reused from cache"
        )
        self._m_plan_misses = self.metrics.counter(
            "repro_session_plan_cache_misses_total", "kernel plans built on miss"
        )

    # -- encoding -----------------------------------------------------------------

    def _encode(self, x: np.ndarray, timesteps: int, sample_offset: int) -> np.ndarray:
        if self._rng is not None:
            if self.encoder == "poisson":
                return PoissonEncoder(rng=self._rng).encode(x, timesteps)
            return DeterministicRateEncoder().encode(x, timesteps)
        assert self.encoder_state is not None
        return self.encoder_state.shard(sample_offset).encode(x, timesteps)

    # -- energy -------------------------------------------------------------------

    def energy_for(
        self, counters: EventCounters, batch: int, timesteps: int
    ) -> EnergyReport:
        """Convert run counters into the session's energy report.

        Exposed separately from :meth:`infer` so a pool can recompute the
        energy of *merged* shard counters through the exact pipeline a
        single-session run uses, keeping sharded responses result-identical.
        """
        # A per-timestep latency of one crossbar read + integration per
        # time-multiplex stage, matching the analytical latency model.
        wall_clock_s = (
            batch
            * timesteps
            * (self.config.device.read_pulse_s + self.library.neuron_integration_latency_s)
        )
        return counters_to_energy(
            counters,
            library=self.library,
            crossbar_energy=CrossbarEnergyModel(device=self.config.device),
            label=f"resparc-{self.backend}/{self.snn.name}",
            active_mpes=self.chip.total_mpes_used,
            active_switches=sum(len(cell.switches) for cell in self.chip.neurocells),
            duration_s=wall_clock_s,
            sram_access_energy_j=self.chip.input_memory.access_energy_j(),
            sram_leakage_power_w=self.chip.input_memory.leakage_power_w(),
        )

    # -- inference ----------------------------------------------------------------

    def infer(self, request: InferenceRequest) -> InferenceResponse:
        """Run one request batch through the session's backend."""
        started = time.monotonic()
        timesteps = request.timesteps if request.timesteps is not None else self.timesteps
        x = request.batch
        spike_train = self._encode(x, timesteps, request.sample_offset)
        metadata: dict[str, object] = {}
        if self._engine is not None:
            # Vectorized fast path through the session's plan cache: a hit
            # reuses the shape's scratch arena, a miss builds (and keeps) it.
            plan_started = time.monotonic()
            plan, hit = self.plan_cache.get(
                self._engine.program, spike_train.shape[1], spike_train.shape[0]
            )
            (self._m_plan_hits if hit else self._m_plan_misses).inc()
            outcome = self._engine.run_batch(spike_train, plan=plan)
            predictions = outcome.predictions
            spike_counts = outcome.spike_counts
            counters = outcome.counters
            metadata["plan"] = {
                "cache": "hit" if hit else "miss",
                "build_s": 0.0 if hit else time.monotonic() - plan_started,
            }
        else:
            predictions, spike_counts, counters = _BACKEND_RUNNERS[self.backend](
                self.chip, spike_train
            )
        counters.neuron_spikes += float(spike_counts.sum())
        energy = self.energy_for(counters, batch=x.shape[0], timesteps=timesteps)
        accuracy = None
        if request.labels is not None:
            accuracy = float(
                np.mean(predictions == np.asarray(request.labels, dtype=int))
            )
        self._m_infer.observe(time.monotonic() - started)
        self._m_samples.inc(x.shape[0])
        self._m_energy.inc(energy.total_j)
        return InferenceResponse(
            predictions=predictions,
            spike_counts=spike_counts,
            accuracy=accuracy,
            counters=counters,
            energy=energy,
            timesteps=timesteps,
            backend=self.backend,
            batch_size=x.shape[0],
            jobs=1,
            metadata=metadata,
        )
