"""Utilisation analysis of a partitioned / mapped design.

The paper's central efficiency argument is about MCA utilisation: MLPs fill
their crossbars completely while CNNs leave cross-points unused, and the
unused fraction grows with crossbar size (Section 5.1/5.2).  These helpers
compute the utilisation aggregates that the experiments and reports quote.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mapping.partitioner import LayerPartition

__all__ = ["UtilisationSummary", "summarise_utilisation", "utilisation_by_layer"]


@dataclass(frozen=True)
class UtilisationSummary:
    """Design-level crossbar utilisation aggregates."""

    crossbar_rows: int
    crossbar_columns: int
    total_tiles: int
    total_synapses: int
    total_crosspoints: int
    mean_utilisation: float
    mean_row_utilisation: float
    mean_column_utilisation: float

    @property
    def wasted_crosspoints(self) -> int:
        """Cross-points allocated but not holding synapses."""
        return self.total_crosspoints - self.total_synapses


def summarise_utilisation(partitions: list[LayerPartition]) -> UtilisationSummary:
    """Aggregate utilisation statistics over all layers of a design."""
    if not partitions:
        raise ValueError("cannot summarise an empty partition list")
    rows = partitions[0].crossbar_rows
    columns = partitions[0].crossbar_columns
    total_tiles = sum(p.tile_count for p in partitions)
    total_synapses = sum(p.mapped_synapses for p in partitions)
    total_crosspoints = sum(p.crosspoints for p in partitions)
    tile_weighted = lambda attr: (
        sum(getattr(p, attr) * p.tile_count for p in partitions) / total_tiles
        if total_tiles
        else 0.0
    )
    return UtilisationSummary(
        crossbar_rows=rows,
        crossbar_columns=columns,
        total_tiles=total_tiles,
        total_synapses=total_synapses,
        total_crosspoints=total_crosspoints,
        mean_utilisation=(total_synapses / total_crosspoints) if total_crosspoints else 0.0,
        mean_row_utilisation=tile_weighted("row_utilisation"),
        mean_column_utilisation=tile_weighted("column_utilisation"),
    )


def utilisation_by_layer(partitions: list[LayerPartition]) -> dict[str, float]:
    """Per-layer crossbar utilisation keyed by layer name."""
    return {p.layer.name: p.utilisation for p in partitions}
