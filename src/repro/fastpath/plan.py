"""Scratch arenas and the per-session plan cache for the fused kernel.

A :class:`KernelPlan` owns every work buffer one ``(program, batch,
timesteps)`` execution shape needs — the per-layer gather blocks, stacked
partial sums, drive accumulators, membrane state, spike buffers, active-row
scratch and the event-driven chunk-count scratch.  The engine writes them
with ``out=``/in-place operations, so steady-state timesteps perform no
O(batch × width) heap allocations: the first run on a shape pays the
allocation cost once and every later run reuses the arena.

:class:`PlanCache` is a small keyed LRU over plans — ``(program, batch,
timesteps)`` — that :class:`~repro.serve.ChipSession` consults per request.
Under the server's dynamic batcher most requests repeat a handful of
shapes, so the common case is a cache hit that skips compile-and-allocate
entirely; hit/miss counts are exported so the reuse rate is observable.

A plan's buffers are mutable run state: one plan must not execute two
batches concurrently.  Sessions are driven serially (the pool gives every
worker its own session), so the per-session cache never shares a plan
across threads.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict

import numpy as np

from repro.fastpath.compiler import CompiledChip, CompiledLayer

__all__ = ["ChunkCountScratch", "KernelPlan", "PlanCache"]


class ChunkCountScratch:
    """Preallocated buffers for nonzero-chunk counting (integer-exact).

    Mirrors :func:`repro.fastpath.engine._nonzero_chunk_counts`: values are
    thresholded (``> 0``) into a zero-padded bool buffer whose width is a
    multiple of ``chunk_bits``, then reduced chunk-wise.  Only the leading
    ``n`` columns are ever rewritten, so the padding stays zero for the
    buffer's lifetime.
    """

    def __init__(self, rows: int, n: int, chunk_bits: int):
        self.rows = rows
        self.n = n
        self.chunk_bits = chunk_bits
        self.n_chunks = int(math.ceil(n / chunk_bits)) if n else 0
        self._padded = np.zeros((rows, self.n_chunks * chunk_bits), dtype=bool)
        self._any = np.zeros((rows, self.n_chunks), dtype=bool)

        # Fixed views/reshapes, so counting is a handful of C calls.
        self._target = self._padded[:, :n]
        self._chunked = self._padded.reshape(rows, self.n_chunks, chunk_bits)

    def _reduce(self, values: np.ndarray) -> np.ndarray:
        np.greater(values, 0, out=self._target)
        np.logical_or.reduce(self._chunked, axis=2, out=self._any)
        return self._any

    def count_total(self, values: np.ndarray) -> int:
        """Total nonzero-chunk count over all rows of ``values``."""
        if self.n_chunks == 0:
            return 0
        return int(self._reduce(values).sum())

    def count_per_group(self, values: np.ndarray, groups: int) -> np.ndarray:
        """Totals per leading group when rows factor as ``groups × per``."""
        if self.n_chunks == 0:
            return np.zeros(groups, dtype=np.int64)
        reduced = self._reduce(values)
        return reduced.reshape(groups, -1, self.n_chunks).sum(axis=(1, 2))


class _LayerArena:
    """All per-layer work buffers of one plan (sized by the batch).

    Every gather source, gather destination and scatter target is captured
    as a *fixed view pair* at construction: the hot loop performs plain
    ``np.copyto``/``np.add`` calls on preexisting views and never computes
    an index or creates a slice per timestep.
    """

    def __init__(self, program: CompiledChip, layer: CompiledLayer, batch: int, last: bool):
        fused = layer.fused
        n_tiles = fused.n_tiles
        geom_rows, geom_cols = fused.geometry
        self.threshold = layer.threshold
        self.scaled_in = np.zeros((batch, layer.n_in))
        # Gather blocks: tile k's rows [rows[k]:] are zero-padding that the
        # engine never rewrites, exactly like the old per-tile np.zeros.
        self.blocks = np.zeros((n_tiles, batch, geom_rows))
        self.partial = np.zeros((n_tiles, batch, geom_cols))
        self.nonzero = np.zeros((n_tiles, batch, geom_rows), dtype=bool)
        self.active = np.zeros((n_tiles, batch), dtype=np.int64)
        self.cost_index = np.zeros((n_tiles, batch), dtype=np.int64)
        self.cost = np.zeros((n_tiles, batch))
        self.drive = np.zeros((batch, layer.n_out))
        self.membrane = np.zeros((batch, layer.n_out))
        self.spike_bool = np.zeros((batch, layer.n_out), dtype=bool)
        self.spikes = np.zeros((batch, layer.n_out))
        #: ``(block_rows_view, scaled_input_view)`` per tile, placement order.
        self.gather: list[tuple[np.ndarray, np.ndarray]] = [
            (
                self.blocks[k, :, : int(fused.rows[k])],
                self.scaled_in[:, int(fused.row_starts[k]) : int(fused.row_stops[k])],
            )
            for k in range(n_tiles)
        ]
        #: ``(drive_columns_view, partial_columns_view)`` per tile, placement
        #: order — the accumulation order the parity contract fixes.
        self.scatter: list[tuple[np.ndarray, np.ndarray]] = [
            (
                self.drive[:, int(fused.col_starts[k]) : int(fused.col_stops[k])],
                self.partial[k, :, : int(fused.cols[k])],
            )
            for k in range(n_tiles)
        ]
        # Event-driven chunk counting on the layer's *output* spikes: word
        # chunks when the output crosses the bus, packet chunks when a next
        # layer consumes it as routed input.
        self.word_scratch: ChunkCountScratch | None = None
        self.packet_scratch: ChunkCountScratch | None = None
        if program.event_driven:
            if layer.needs_bus_transfer:
                self.word_scratch = ChunkCountScratch(
                    batch, layer.n_out, program.word_bits
                )
            if not last:
                self.packet_scratch = ChunkCountScratch(
                    batch, layer.n_out, program.packet_bits
                )

    def reset(self) -> None:
        self.membrane.fill(0.0)


class KernelPlan:
    """Every work buffer of one ``(program, batch, timesteps)`` execution."""

    def __init__(self, program: CompiledChip, batch: int, timesteps: int):
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        self.program = program
        self.batch = batch
        self.timesteps = timesteps
        #: Arenas aligned positionally with ``program.layers`` (no keyed
        #: lookups on the hot path).
        self.layers = [
            _LayerArena(program, layer, batch, last=index == len(program.layers) - 1)
            for index, layer in enumerate(program.layers)
        ]
        self.spike_counts = np.zeros((batch, program.output_dim))
        # Whole-train input bookkeeping: one vectorized pass over the full
        # ``(timesteps, batch, n_in)`` array instead of a per-timestep call.
        self.input_word_scratch: ChunkCountScratch | None = None
        self.input_packet_scratch: ChunkCountScratch | None = None
        if program.event_driven:
            n_in = program.input_dim
            self.input_word_scratch = ChunkCountScratch(
                timesteps * batch, n_in, program.word_bits
            )
            self.input_packet_scratch = ChunkCountScratch(
                timesteps * batch, n_in, program.packet_bits
            )

    def check(self, program: CompiledChip, batch: int, timesteps: int) -> None:
        """Raise when the plan was built for a different execution shape."""
        if program is not self.program:
            raise ValueError("plan was compiled for a different program")
        if batch != self.batch or timesteps != self.timesteps:
            raise ValueError(
                f"plan was allocated for batch={self.batch} "
                f"timesteps={self.timesteps}, got batch={batch} "
                f"timesteps={timesteps}"
            )

    def reset(self) -> None:
        """Zero the run state carried across timesteps (cheap: the gather
        padding and one-shot scratch buffers hold their invariants)."""
        for arena in self.layers:
            arena.reset()
        self.spike_counts.fill(0.0)


class PlanCache:
    """A small LRU of :class:`KernelPlan`\\ s keyed by execution shape.

    The cache retains each plan's program, so an entry's identity key can
    never be recycled while the entry lives.  ``get`` is thread-safe; the
    plans it returns are not (see the module docstring).
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._plans: OrderedDict[tuple[int, int, int], KernelPlan] = OrderedDict()
        self._lock = threading.Lock()

    def get(
        self, program: CompiledChip, batch: int, timesteps: int
    ) -> tuple[KernelPlan, bool]:
        """The cached plan for the shape (hit) or a fresh one (miss)."""
        key = (id(program), batch, timesteps)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                return plan, True
            plan = KernelPlan(program, batch, timesteps)
            self._plans[key] = plan
            self.misses += 1
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
            return plan, False

    def __len__(self) -> int:
        return len(self._plans)

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self._plans)}
