"""Utility layer shared by every RESPARC subsystem.

The helpers here are deliberately small and dependency free:

* :mod:`repro.utils.units` — engineering-unit formatting and conversion.
* :mod:`repro.utils.validation` — argument validation helpers used by the
  public constructors so user errors fail early with precise messages.
* :mod:`repro.utils.rng` — deterministic random-number management so every
  experiment in the repository is reproducible bit-for-bit.
* :mod:`repro.utils.logging` — a tiny structured run logger used by the
  experiment drivers.
"""

from repro.utils.rng import derive_rng, seeded_rng
from repro.utils.units import (
    Prefix,
    format_energy,
    format_power,
    format_time,
    from_engineering,
    to_engineering,
)
from repro.utils.validation import (
    check_in_choices,
    check_positive,
    check_probability,
    check_shape,
    check_type,
)

__all__ = [
    "Prefix",
    "format_energy",
    "format_power",
    "format_time",
    "from_engineering",
    "to_engineering",
    "check_in_choices",
    "check_positive",
    "check_probability",
    "check_shape",
    "check_type",
    "derive_rng",
    "seeded_rng",
]
