"""Elastic-fleet benchmark: autoscaling vs a static replica under a burst.

The fleet subsystem's value proposition is tail latency under load: when a
4x-oversubscribed open-loop burst lands on one replica, queue-wait grows
linearly with the backlog; an autoscaled fleet converts the same backlog
into replicas and the p95 client-observed wait drops.  This benchmark pins
that down with the same machine-independent trick as the load-shedding
bench — every replica sleeps a scripted per-dispatch latency, so the
oversubscription (and the win) does not depend on chip compute speed:

* **static** — a fleet pinned to one replica (``max_replicas=1``; the
  controller has nothing to do) absorbs the whole burst serially;
* **autoscaled** — the same burst against ``max_replicas=3``: the
  controller must scale up at least once, and the admitted p95 wait must
  beat the static baseline.

Exactness always runs: every response in both runs must match the serial
single-session answers bit-for-bit — autoscaling changes placement and
throughput, never numbers.  The load-dependent threshold (p95 win) skips
on single-core runners like the other concurrency benchmarks.

Results land in ``benchmarks/results/fleet.json`` (override with
``FLEET_BENCH_RESULTS``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import ArchitectureConfig
from repro.serve import ChipSession, InferenceRequest
from repro.serve.distributed.executors import SessionSpec
from repro.serve.fleet import ElasticFleet, FleetPolicy, ReplicaSpec
from repro.snn import Dense, Network, convert_to_snn

#: Scripted artificial latency per dispatch in every replica.
DISPATCH_DELAY_S = 0.05
#: The burst: enough requests to keep one replica busy for
#: REQUESTS * DISPATCH_DELAY_S ~ 2s — 4x what the autoscaled fleet's
#: sustained-pressure window needs to grow to its ceiling.
REQUESTS = 40
SAMPLES_PER_REQUEST = 4
MAX_REPLICAS = 3

#: Legacy per-module override; unset falls through to the shared
#: ``persist_result`` results directory (``BENCH_RESULTS_DIR``).
RESULTS_OVERRIDE = os.environ.get("FLEET_BENCH_RESULTS")


@pytest.fixture(scope="module")
def fleet_workload():
    rng = np.random.default_rng(29)
    network = Network(
        (48,),
        [
            Dense(48, 24, use_bias=False, rng=rng, name="fc1"),
            Dense(24, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="fleet-mlp",
    )
    snn = convert_to_snn(network, rng.random((16, 48)))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    requests = [
        InferenceRequest(
            inputs=rng.random((SAMPLES_PER_REQUEST, 48)),
            sample_offset=i * SAMPLES_PER_REQUEST,
        )
        for i in range(REQUESTS)
    ]
    primary = ChipSession(snn, config=config, timesteps=4, encoder="poisson", seed=13)
    assert primary.encoder_state is not None
    session_spec = SessionSpec(
        snn=snn,
        config=primary.config,
        library=None,
        timesteps=4,
        backend="vectorized",
        seed=13,
        encoder_state=primary.encoder_state,
    )
    serial = ChipSession(snn, config=config, timesteps=4, encoder="poisson", seed=13)
    expected = [serial.infer(request) for request in requests]
    return session_spec, requests, expected


def _policy(max_replicas: int) -> FleetPolicy:
    return FleetPolicy(
        min_replicas=1,
        max_replicas=max_replicas,
        interval_s=0.05,
        target_backlog=1.0,
        scale_up_stable_s=0.1,
        idle_backlog=0.25,
        scale_down_stable_s=30.0,  # no scale-down mid-burst; close() drains
        cooldown_s=0.2,
    )


def _drive_burst(session_spec, requests, expected, max_replicas: int) -> dict:
    """One open-loop burst against a fleet; returns the measured metrics."""
    spec = ReplicaSpec(
        session_spec=session_spec,
        workload=f"fleet-bench-{max_replicas}",
        dispatch_delay_s=DISPATCH_DELAY_S,
    )
    with ElasticFleet(
        spec,
        policy=_policy(max_replicas),
        name=f"bench-fleet-{max_replicas}",
        gateway_load_poll_s=0.05,
    ) as fleet:
        started = time.perf_counter()
        submitted = [
            (index, time.perf_counter(), fleet.submit(request))
            for index, request in enumerate(requests)
        ]
        waits = []
        for index, submitted_at, future in submitted:
            response = future.result(timeout=120)
            waits.append(time.perf_counter() - submitted_at)
            np.testing.assert_array_equal(
                response.predictions, expected[index].predictions
            )
            np.testing.assert_array_equal(
                response.spike_counts, expected[index].spike_counts
            )
        elapsed = time.perf_counter() - started
        status = fleet.fleet_status()
    p50, p95 = np.percentile(waits, [50, 95])
    return {
        "max_replicas": max_replicas,
        "requests": len(requests),
        "dispatch_delay_s": DISPATCH_DELAY_S,
        "elapsed_s": float(elapsed),
        "wait_p50_s": float(p50),
        "wait_p95_s": float(p95),
        "replicas_peak": max(
            int(event.get("replicas_after", 1))
            for event in status["controller"]["events"]
        )
        if status["controller"]["events"]
        else 1,
        "scale_up_actions": int(status["controller"]["actions"]["scale_up"]),
    }


def test_bench_fleet_autoscaling_beats_static_p95(fleet_workload, persist_result):
    """Autoscaled p95 queue-wait under a 4x burst beats the static replica."""
    session_spec, requests, expected = fleet_workload
    static = _drive_burst(session_spec, requests, expected, max_replicas=1)
    autoscaled = _drive_burst(
        session_spec, requests, expected, max_replicas=MAX_REPLICAS
    )
    print(
        f"\nfleet burst ({REQUESTS} requests open-loop, "
        f"{DISPATCH_DELAY_S * 1e3:.0f}ms/dispatch): "
        f"static p95 {static['wait_p95_s'] * 1e3:.0f}ms "
        f"({static['elapsed_s']:.2f}s total) vs autoscaled p95 "
        f"{autoscaled['wait_p95_s'] * 1e3:.0f}ms "
        f"({autoscaled['elapsed_s']:.2f}s total, "
        f"{autoscaled['scale_up_actions']} scale-ups, "
        f"peak {autoscaled['replicas_peak']} replicas)"
    )
    persist_result("fleet", "static", static, path=RESULTS_OVERRIDE)
    persist_result("fleet", "autoscaled", autoscaled, path=RESULTS_OVERRIDE)

    assert static["scale_up_actions"] == 0, "a max=1 fleet must never scale"
    if (os.cpu_count() or 1) < 2:
        pytest.skip("fleet speedup thresholds need >= 2 cores (replica processes)")
    assert autoscaled["scale_up_actions"] >= 1, (
        "the burst never scaled the fleet past one replica"
    )
    assert autoscaled["wait_p95_s"] < static["wait_p95_s"], (
        f"autoscaling did not improve p95 queue-wait: "
        f"{autoscaled['wait_p95_s']:.3f}s vs static {static['wait_p95_s']:.3f}s"
    )
