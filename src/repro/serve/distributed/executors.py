"""Pluggable shard executors for :class:`~repro.serve.pool.ChipPool`.

A pool splits each request batch into contiguous shards; *how* the shards
execute is this module's concern.  Every executor implements the same tiny
contract — :meth:`ShardExecutor.start` with a :class:`SessionSpec`,
:meth:`ShardExecutor.run_shards` mapping shard requests to responses, and
:meth:`ShardExecutor.close` — and every executor is **result-identical**:
predictions, spike counts and integer event counters match a single
:class:`~repro.serve.session.ChipSession` run exactly, and energies agree to
floating-point accumulation order.  That identity holds because

* encoding is shard-stable (:class:`~repro.snn.encoding.EncoderState` seeds
  spike streams per absolute sample index),
* chip programming is a pure function of ``(snn, config, seed)``, so every
  worker — thread or process — holds an identically programmed chip, and
* counters are per-run deltas that sum exactly across shards.

Three executors are provided:

* :class:`InlineExecutor` — runs shards sequentially on the caller's thread
  (the debugging/profiling baseline: sharding semantics, no concurrency).
* :class:`ThreadExecutor` — the classic pool behaviour: one worker session
  per job on a thread pool (the vectorized backend releases the GIL in its
  NumPy kernels).  Vectorized workers share the primary session's chip and
  compiled program; structural workers rebuild their own chip.
* :class:`ProcessExecutor` — ``multiprocessing`` workers, each holding its
  own programmed chip in its own interpreter.  The batch-sized arrays cross
  the process boundary through a :mod:`multiprocessing.shared_memory`
  segment (written once by the pool, read and filled in place by the
  workers), so inter-process transfer cost is O(1) in the batch size; the
  scalar-sized remainder of each request/response rides compact JSON.
* :class:`ProcessJsonExecutor` — the same process workers shipping whole
  requests and responses through the lossless JSON schema
  (:meth:`~repro.serve.schema.InferenceRequest.to_json` /
  :meth:`~repro.serve.schema.InferenceResponse.from_json`), exactly the
  bytes a JSON-carrier chip server would exchange — kept as the single-host
  proof of the text wire format (and as the comparison baseline the
  shared-memory path is benchmarked against).
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.config import ArchitectureConfig
from repro.core.resparc import ResparcChip
from repro.energy.components import ComponentLibrary
from repro.serve.schema import InferenceRequest, InferenceResponse
from repro.serve.session import ChipSession
from repro.snn.conversion import SpikingNetwork
from repro.snn.encoding import EncoderState

__all__ = [
    "SessionSpec",
    "ShardExecutor",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ProcessJsonExecutor",
    "EXECUTORS",
    "make_executor",
]


@dataclass(frozen=True)
class SessionSpec:
    """Picklable recipe for building interchangeable worker sessions.

    Everything a worker — in this process or another — needs to build a
    :class:`ChipSession` whose chip is programmed identically to the pool's
    primary session.  The spec always carries an explicit
    :class:`EncoderState` (never a legacy RNG stream), so worker encoding is
    shard-stable by construction.
    """

    snn: SpikingNetwork
    config: ArchitectureConfig
    library: ComponentLibrary | None
    timesteps: int
    backend: str
    seed: int
    encoder_state: EncoderState

    def build_session(self, chip: ResparcChip | None = None) -> ChipSession:
        """Build a worker session (optionally reusing a prebuilt chip)."""
        return ChipSession(
            self.snn,
            chip=chip,
            config=self.config,
            library=self.library,
            timesteps=self.timesteps,
            backend=self.backend,
            seed=self.seed,
            encoder_state=self.encoder_state,
        )


class ShardExecutor(ABC):
    """Executes a pool's shard requests on worker sessions."""

    #: Registry name (what ``ChipPool(executor=...)`` selects by).
    name = "abstract"

    @abstractmethod
    def start(self, spec: SessionSpec, jobs: int, primary: ChipSession) -> None:
        """Provision ``jobs`` workers from ``spec``.

        ``primary`` is the pool's already-built primary session; executors
        that run in-process may reuse it (and, on the vectorized backend,
        its chip) instead of building a redundant worker.
        """

    @abstractmethod
    def run_shards(self, shards: list[InferenceRequest]) -> list[InferenceResponse]:
        """Run the shard requests and return their responses, in order.

        ``len(shards)`` never exceeds the ``jobs`` the executor was started
        with (:meth:`~repro.serve.pool.ChipPool.infer_many` chunks larger
        coalesced dispatches into waves); the pool guarantees at most one
        call in flight at a time.
        """

    def close(self) -> None:
        """Release worker resources (idempotent)."""


class InlineExecutor(ShardExecutor):
    """Sequential execution on the calling thread.

    Shards run one after another on the primary session — valid because
    counters are per-run deltas (the structural backend resets chip state
    per sample) — so the pool's sharding semantics can be exercised and
    profiled without any concurrency in the way.
    """

    name = "inline"

    def start(self, spec: SessionSpec, jobs: int, primary: ChipSession) -> None:
        self._primary = primary

    def run_shards(self, shards: list[InferenceRequest]) -> list[InferenceResponse]:
        return [self._primary.infer(shard) for shard in shards]


class ThreadExecutor(ShardExecutor):
    """One worker session per job on a thread pool (the historical pool)."""

    name = "thread"

    def start(self, spec: SessionSpec, jobs: int, primary: ChipSession) -> None:
        # Vectorized workers share the primary's chip (and therefore its
        # cached compiled program); the engine never mutates either.  The
        # structural backend mutates live component state, so each worker
        # rebuilds its own chip from the same seed, which programs
        # identically.
        shared_chip = primary.chip if spec.backend == "vectorized" else None
        self.sessions = [primary]
        for _ in range(jobs - 1):
            self.sessions.append(spec.build_session(chip=shared_chip))
        self._threads = ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="chip-pool"
        )

    def run_shards(self, shards: list[InferenceRequest]) -> list[InferenceResponse]:
        # Shards are pinned to fixed sessions: structural workers mutate
        # their chip in place, so a session must never run two shards of the
        # same dispatch wave.  An over-capacity wave would silently drop
        # shards in the zip below — reject it loudly instead.
        if len(shards) > len(self.sessions):
            raise ValueError(
                f"thread executor holds {len(self.sessions)} worker sessions "
                f"but received {len(shards)} shards in one wave"
            )
        futures = [
            self._threads.submit(session.infer, shard)
            for session, shard in zip(self.sessions, shards)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._threads.shutdown(wait=True)


# -- process workers ---------------------------------------------------------------
#
# Worker state lives in a module global because ``multiprocessing`` worker
# functions must be importable top-level callables.  Each worker process
# builds its own session (and therefore its own programmed chip) once, in the
# pool initializer, then serves shard requests from it.

_WORKER_SESSION: ChipSession | None = None


def _process_worker_init(spec: SessionSpec) -> None:
    global _WORKER_SESSION
    _WORKER_SESSION = spec.build_session()


def _process_worker_infer(payload: str) -> str:
    if _WORKER_SESSION is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("process worker used before initialisation")
    request = InferenceRequest.from_json(payload)
    return _WORKER_SESSION.infer(request).to_json()


def _pad8(offset: int) -> int:
    """Round ``offset`` up to the next 8-byte boundary (array slot alignment)."""
    return (offset + 7) & ~7


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a pool-owned shared-memory segment without adopting it.

    Before Python 3.13, ``SharedMemory`` registers *attaches* with the
    resource tracker exactly like creations, so a worker exiting would
    unlink a segment the parent still owns; unregister immediately — only
    the creating process cleans up.
    """
    segment = shared_memory.SharedMemory(name=name)
    with contextlib.suppress(Exception):
        resource_tracker.unregister(segment._name, "shared_memory")
    return segment


def _process_worker_infer_shm(task: str) -> str:
    """Run one shard whose arrays live in a shared-memory segment.

    ``task`` is compact JSON: the segment name, the request's scalar fields,
    and the offsets of the input/label slots to read and the
    prediction/spike-count slots to fill.  The return value is the
    response's scalar remainder (counters, energy, metadata) — the arrays
    never leave the segment.
    """
    if _WORKER_SESSION is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("process worker used before initialisation")
    info = json.loads(task)
    segment = _attach_segment(info["segment"])
    try:
        return _infer_into_segment(info, segment)
    finally:
        # An exception traceback can briefly pin array views of the buffer;
        # the mapping then frees with the frames instead of failing here.
        with contextlib.suppress(BufferError):
            segment.close()


def _infer_into_segment(
    info: dict[str, object], segment: shared_memory.SharedMemory
) -> str:
    n = int(info["n"])
    features = int(info["features"])
    output_dim = int(info["output_dim"])
    data = dict(info["request"])
    data["inputs"] = np.frombuffer(
        segment.buf, dtype="<f8", count=n * features, offset=int(info["inputs_offset"])
    ).reshape(n, features)
    labels_offset = info["labels_offset"]
    data["labels"] = (
        None
        if labels_offset is None
        else np.frombuffer(
            segment.buf, dtype="<i8", count=n, offset=int(labels_offset)
        )
    )
    response = _WORKER_SESSION.infer(InferenceRequest.from_dict(data))
    wire = response.to_wire_dict()
    predictions = np.asarray(wire.pop("predictions"), dtype="<i8")
    spike_counts = np.asarray(wire.pop("spike_counts"), dtype="<f8")
    if predictions.shape != (n,) or spike_counts.shape != (n, output_dim):
        raise RuntimeError(
            f"shard produced predictions {predictions.shape} / spike counts "
            f"{spike_counts.shape}, but the pool reserved slots for "
            f"({n},) / ({n}, {output_dim})"
        )
    np.frombuffer(
        segment.buf, dtype="<i8", count=n, offset=int(info["predictions_offset"])
    )[...] = predictions
    np.frombuffer(
        segment.buf,
        dtype="<f8",
        count=n * output_dim,
        offset=int(info["spike_counts_offset"]),
    ).reshape(n, output_dim)[...] = spike_counts
    return json.dumps(wire)


class ProcessExecutor(ShardExecutor):
    """``multiprocessing`` workers, one programmed chip per process.

    The executor sidesteps the GIL entirely (useful for the structural
    backend, whose per-sample Python loop threads cannot parallelise), and
    ships each dispatch wave's arrays through one
    :mod:`multiprocessing.shared_memory` segment: the pool writes inputs
    and labels raw and reserves prediction/spike-count slots, workers
    attach by name and fill their slots in place, and only scalar-sized
    JSON (request overrides out, counters and energy back) crosses the pipe
    — inter-process transfer is O(1) in batch size.  Results are exact
    because float64/int64 arrays transfer bit-identically by construction.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"`` or ``None`` for the platform default).  All methods
        work because :class:`SessionSpec` is picklable and segments are
        attached by name.
    transport:
        ``"shm"`` (default) for the shared-memory array path, ``"json"``
        for whole-request JSON round trips (the
        :class:`ProcessJsonExecutor` baseline).
    """

    name = "process"

    def __init__(self, start_method: str | None = None, transport: str = "shm"):
        if transport not in ("shm", "json"):
            raise ValueError(f"transport must be 'shm' or 'json', got {transport!r}")
        self._start_method = start_method
        self._transport = transport
        self._pool: multiprocessing.pool.Pool | None = None
        self._output_dim = 0

    def start(self, spec: SessionSpec, jobs: int, primary: ChipSession) -> None:
        # The output slots are sized before dispatch, so the executor must
        # know the chip's output width up front; every worker builds an
        # identically-programmed chip from the same spec.
        self._output_dim = int(primary.chip.output_dim)
        context = multiprocessing.get_context(self._start_method)
        self._pool = context.Pool(
            processes=jobs, initializer=_process_worker_init, initargs=(spec,)
        )

    def run_shards(self, shards: list[InferenceRequest]) -> list[InferenceResponse]:
        if self._pool is None:
            raise RuntimeError("process executor is not started")
        if not shards:
            return []
        if self._transport == "json":
            payloads = self._pool.map(
                _process_worker_infer,
                [shard.to_json() for shard in shards],
                chunksize=1,
            )
            return [InferenceResponse.from_json(payload) for payload in payloads]
        return self._run_shards_shm(shards)

    def _run_shards_shm(
        self, shards: list[InferenceRequest]
    ) -> list[InferenceResponse]:
        # One segment per dispatch wave: lay out every shard's input/label
        # arrays plus its preallocated output slots, 8-byte aligned.
        entries = []
        size = 0
        for shard in shards:
            wire = shard.to_wire_dict()
            inputs = np.ascontiguousarray(wire.pop("inputs"), dtype="<f8")
            labels = wire.pop("labels")
            if labels is not None:
                labels = np.ascontiguousarray(labels, dtype="<i8")
            n = int(inputs.shape[0])
            inputs_offset = size
            size = _pad8(size + inputs.nbytes)
            labels_offset = None
            if labels is not None:
                labels_offset = size
                size = _pad8(size + labels.nbytes)
            predictions_offset = size
            size = _pad8(size + n * 8)
            spike_counts_offset = size
            size = _pad8(size + n * self._output_dim * 8)
            entries.append(
                (
                    wire,
                    inputs,
                    labels,
                    n,
                    inputs_offset,
                    labels_offset,
                    predictions_offset,
                    spike_counts_offset,
                )
            )
        segment = shared_memory.SharedMemory(create=True, size=max(size, 1))
        try:
            tasks = []
            for (
                wire,
                inputs,
                labels,
                n,
                inputs_offset,
                labels_offset,
                predictions_offset,
                spike_counts_offset,
            ) in entries:
                np.frombuffer(
                    segment.buf, dtype="<f8", count=inputs.size, offset=inputs_offset
                ).reshape(inputs.shape)[...] = inputs
                if labels is not None:
                    np.frombuffer(
                        segment.buf, dtype="<i8", count=n, offset=labels_offset
                    )[...] = labels
                tasks.append(
                    json.dumps(
                        {
                            "segment": segment.name,
                            "request": wire,
                            "n": n,
                            "features": int(inputs.shape[1]),
                            "output_dim": self._output_dim,
                            "inputs_offset": inputs_offset,
                            "labels_offset": labels_offset,
                            "predictions_offset": predictions_offset,
                            "spike_counts_offset": spike_counts_offset,
                        }
                    )
                )
            replies = self._pool.map(_process_worker_infer_shm, tasks, chunksize=1)
            responses = []
            for reply, entry in zip(replies, entries):
                n = entry[3]
                predictions_offset, spike_counts_offset = entry[6], entry[7]
                data = json.loads(reply)
                # Copy out before the segment dies: the responses outlive it.
                data["predictions"] = np.frombuffer(
                    segment.buf, dtype="<i8", count=n, offset=predictions_offset
                ).copy()
                data["spike_counts"] = (
                    np.frombuffer(
                        segment.buf,
                        dtype="<f8",
                        count=n * self._output_dim,
                        offset=spike_counts_offset,
                    )
                    .reshape(n, self._output_dim)
                    .copy()
                )
                responses.append(InferenceResponse.from_dict(data))
            return responses
        finally:
            # Only the creating process unlinks (workers detach without
            # registering); close() tolerates views briefly pinned by an
            # in-flight exception's traceback.
            with contextlib.suppress(BufferError):
                segment.close()
            segment.unlink()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None


class ProcessJsonExecutor(ProcessExecutor):
    """Process workers shipping whole requests/responses as JSON text.

    The pre-shared-memory transport, kept under its own registry name: it
    proves the text wire format end to end on a single host and serves as
    the baseline the shared-memory path is benchmarked against.
    """

    name = "process-json"

    def __init__(self, start_method: str | None = None):
        super().__init__(start_method, transport="json")


#: Executor registry, keyed by the names ``ChipPool(executor=...)`` accepts.
EXECUTORS: dict[str, type[ShardExecutor]] = {
    InlineExecutor.name: InlineExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
    ProcessJsonExecutor.name: ProcessJsonExecutor,
}


def make_executor(executor: str | ShardExecutor) -> ShardExecutor:
    """Resolve an executor name (or pass through an instance)."""
    if isinstance(executor, ShardExecutor):
        return executor
    if executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {sorted(EXECUTORS)} or a ShardExecutor "
            f"instance, got {executor!r}"
        )
    return EXECUTORS[executor]()
