"""Fig. 13 — effect of SNN event-drivenness on RESPARC energy.

The paper compares the per-classification energy of RESPARC with and without
its event-driven optimisations (zero-check gating of packet transfers, bus
broadcasts and crossbar evaluations) on the MNIST benchmarks, for MCA sizes
128/64/32.  The claims to reproduce:

* event-driven operation always saves energy,
* the relative savings are largest for the smallest MCA size (short spike
  packets are much more likely to be all zero than long ones),
* MLPs benefit more than CNNs (sparse background pixels give MLPs long zero
  run lengths, while CNNs observe dense foreground windows).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import ExperimentSettings, WorkloadContext

__all__ = ["Fig13Entry", "Fig13Result", "run_fig13"]

#: MCA sizes of the paper's Fig. 13 panels (left to right).
MCA_SIZES = (128, 64, 32)


@dataclass(frozen=True)
class Fig13Entry:
    """Energy with/without event-drivenness at one MCA size."""

    benchmark: str
    connectivity: str
    crossbar_size: int
    energy_with_j: float
    energy_without_j: float
    neuron_with_j: float
    crossbar_with_j: float
    peripherals_with_j: float
    peripherals_without_j: float

    @property
    def savings_fraction(self) -> float:
        """Relative energy saved by event-driven operation."""
        if self.energy_without_j == 0:
            return 0.0
        return 1.0 - self.energy_with_j / self.energy_without_j

    @property
    def peripheral_savings_fraction(self) -> float:
        """Relative peripheral energy saved (the component the paper highlights)."""
        if self.peripherals_without_j == 0:
            return 0.0
        return 1.0 - self.peripherals_with_j / self.peripherals_without_j


@dataclass
class Fig13Result:
    """All entries of the Fig. 13 reproduction."""

    entries: list[Fig13Entry] = field(default_factory=list)

    def entries_for(self, benchmark: str) -> dict[int, Fig13Entry]:
        """Entries of one benchmark keyed by MCA size."""
        return {e.crossbar_size: e for e in self.entries if e.benchmark == benchmark}

    def as_table(self) -> str:
        """Render with/without energies and savings as a table."""
        lines = [
            "Fig. 13 reproduction — event-driven energy savings",
            f"  {'benchmark':<14} {'size':>5} {'with ED (J)':>12} {'w/o ED (J)':>12} "
            f"{'savings':>9}",
        ]
        for entry in self.entries:
            lines.append(
                f"  {entry.benchmark:<14} {entry.crossbar_size:>5} {entry.energy_with_j:>12.3e} "
                f"{entry.energy_without_j:>12.3e} {entry.savings_fraction:>8.1%}"
            )
        return "\n".join(lines)


def run_fig13(
    settings: ExperimentSettings | None = None,
    context: WorkloadContext | None = None,
    benchmarks: tuple[str, ...] = ("mnist-mlp", "mnist-cnn"),
    sizes: tuple[int, ...] = MCA_SIZES,
) -> Fig13Result:
    """Reproduce Fig. 13 (MNIST MLP and CNN by default, like the paper)."""
    context = context or WorkloadContext(settings or ExperimentSettings())
    result = Fig13Result()
    for name in benchmarks:
        workload = context.prepare(name)
        for size in sizes:
            with_ed = context.evaluate_resparc(workload, crossbar_size=size, event_driven=True)
            without_ed = context.evaluate_resparc(workload, crossbar_size=size, event_driven=False)
            with_groups = with_ed.energy.grouped()
            without_groups = without_ed.energy.grouped()
            result.entries.append(
                Fig13Entry(
                    benchmark=name,
                    connectivity=workload.spec.connectivity,
                    crossbar_size=size,
                    energy_with_j=with_ed.energy_per_classification_j,
                    energy_without_j=without_ed.energy_per_classification_j,
                    neuron_with_j=with_groups.get("neuron", 0.0),
                    crossbar_with_j=with_groups.get("crossbar", 0.0),
                    peripherals_with_j=with_groups.get("peripherals", 0.0),
                    peripherals_without_j=without_groups.get("peripherals", 0.0),
                )
            )
    return result
