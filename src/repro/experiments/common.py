"""Shared infrastructure for the figure-reproduction experiments.

Every experiment needs the same pipeline: build a benchmark network,
generate its synthetic dataset, (optionally) train it, convert it to a
spiking network, run the functional simulator to obtain the activity trace,
and then evaluate RESPARC and the CMOS baseline on that trace.
:class:`WorkloadContext` performs and caches that pipeline so the per-figure
drivers stay small, and :class:`ExperimentSettings` centralises the knobs
that trade fidelity for runtime (timesteps, samples, training epochs,
network scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baseline import BaselineConfig, BaselineEvaluation, CmosBaselineModel
from repro.core import (
    CHIP_BACKENDS,
    ArchitectureConfig,
    ChipRunResult,
    ResparcEvaluation,
    ResparcModel,
)
from repro.datasets import SyntheticDataset, make_dataset
from repro.mapping import MappedNetwork, map_network
from repro.serve import ChipPool, ChipSession, InferenceRequest
from repro.snn import (
    ActivityTrace,
    ConversionSpec,
    Network,
    SpikingNetwork,
    SpikingSimulator,
    Trainer,
    convert_to_snn,
)
from repro.utils.rng import derive_rng, stable_seed
from repro.workloads import BenchmarkSpec, get_benchmark

__all__ = ["ExperimentSettings", "WorkloadContext", "PreparedWorkload"]

#: Per-request deadline for remote chip runs: a wedged server (accepts the
#: connection but never answers) must fail the run, not hang it forever.
#: Matches the historical RemoteSession socket-timeout default.
REMOTE_DEADLINE_S = 120.0


@dataclass(frozen=True)
class ExperimentSettings:
    """Runtime/fidelity knobs shared by all experiments.

    The defaults are sized so the full figure suite runs in minutes on a
    laptop; ``quick()`` returns a reduced configuration used by the pytest
    benchmarks and smoke tests.
    """

    timesteps: int = 16
    eval_samples: int = 4
    train_samples: int = 128
    test_samples: int = 32
    train_epochs: int = 0
    network_scale: float = 1.0
    seed: int = 7
    #: Chip execution backend used by structural cross-validation runs
    #: ("structural" or "vectorized"; see :mod:`repro.fastpath`).
    chip_backend: str = "vectorized"
    #: Worker sessions for chip runs: 1 runs a single legacy-seeded session,
    #: > 1 shards each batch across a :class:`repro.serve.ChipPool`.
    chip_jobs: int = 1
    #: Shard executor for pooled chip runs ("inline", "thread" or "process";
    #: see :mod:`repro.serve.distributed.executors`).  Only meaningful with
    #: ``chip_jobs > 1``.
    chip_executor: str = "thread"
    #: Optional running chip server(s): one ``host:port`` or a
    #: comma-separated list of them.  When set, chip runs are sent to those
    #: servers instead of executing locally — several endpoints fan each
    #: batch out through the async :class:`repro.serve.InferenceGateway`
    #: (every server must serve the same workload/settings for the results
    #: to be comparable).
    chip_endpoint: str | None = None
    #: Per-request deadline (seconds) for remote chip runs.  Propagated to
    #: the servers' admission control (a request queued longer is shed with
    #: a structured ``deadline_exceeded`` error) and used as the gateway
    #: result timeout.  ``None`` falls back to :data:`REMOTE_DEADLINE_S`.
    #: Only meaningful with ``chip_endpoint``.
    chip_deadline_s: float | None = None

    def __post_init__(self) -> None:
        from repro.serve.distributed import EXECUTORS, split_endpoints

        if self.chip_backend not in CHIP_BACKENDS:
            raise ValueError(
                f"chip_backend must be one of {CHIP_BACKENDS}, got {self.chip_backend!r}"
            )
        if self.chip_jobs < 1:
            raise ValueError(f"chip_jobs must be >= 1, got {self.chip_jobs}")
        if self.chip_executor not in EXECUTORS:
            raise ValueError(
                f"chip_executor must be one of {sorted(EXECUTORS)}, "
                f"got {self.chip_executor!r}"
            )
        if self.chip_deadline_s is not None and self.chip_deadline_s <= 0:
            raise ValueError(
                f"chip_deadline_s must be > 0 seconds, got {self.chip_deadline_s}"
            )
        if self.chip_endpoint is not None:
            split_endpoints(self.chip_endpoint)  # raises with an actionable message

    @staticmethod
    def quick() -> "ExperimentSettings":
        """A fast configuration for benchmarks and smoke tests."""
        return ExperimentSettings(
            timesteps=8,
            eval_samples=2,
            train_samples=32,
            test_samples=16,
            train_epochs=0,
            network_scale=1.0,
            seed=7,
        )


@dataclass
class PreparedWorkload:
    """A benchmark network prepared for architecture evaluation."""

    spec: BenchmarkSpec
    network: Network
    snn: SpikingNetwork
    dataset: SyntheticDataset
    trace: ActivityTrace
    accuracy: float | None

    @property
    def name(self) -> str:
        """Benchmark name."""
        return self.spec.name


@dataclass
class WorkloadContext:
    """Builds and caches prepared workloads and architecture evaluations."""

    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    _workloads: dict[tuple[str, int], PreparedWorkload] = field(default_factory=dict, repr=False)
    _served_workload: str | None = field(default=None, repr=False)

    # -- workload preparation -----------------------------------------------------

    def _inputs_for(self, spec: BenchmarkSpec, dataset: SyntheticDataset, split: str) -> np.ndarray:
        images = dataset.train_images if split == "train" else dataset.test_images
        if spec.is_mlp:
            return images.reshape(images.shape[0], -1)
        return images

    def prepare(
        self,
        benchmark: str,
        train_epochs: int | None = None,
        weight_bits: int | None = None,
    ) -> PreparedWorkload:
        """Prepare one benchmark: build, (train), convert and trace it.

        Results are cached per (benchmark, epochs); quantisation is applied
        downstream by the precision study rather than here.
        """
        s = self.settings
        epochs = s.train_epochs if train_epochs is None else train_epochs
        cache_key = (benchmark, epochs)
        if cache_key in self._workloads:
            return self._workloads[cache_key]

        spec = get_benchmark(benchmark)
        network = spec.build(scale=s.network_scale, seed=s.seed)
        dataset = make_dataset(
            spec.dataset,
            train_samples=s.train_samples,
            test_samples=s.test_samples,
            seed=s.seed,
        )
        train_inputs = self._inputs_for(spec, dataset, "train")
        test_inputs = self._inputs_for(spec, dataset, "test")

        if epochs > 0:
            trainer = Trainer(
                learning_rate=0.003,
                optimizer="adam",
                batch_size=32,
                rng=derive_rng(s.seed, "trainer", benchmark),
            )
            trainer.fit(network, train_inputs, dataset.train_labels, epochs=epochs)

        snn = convert_to_snn(network, train_inputs[: min(32, len(train_inputs))], ConversionSpec())
        simulator = SpikingSimulator(
            timesteps=s.timesteps,
            encoder="poisson",
            rng=derive_rng(s.seed, "sim", benchmark),
        )
        result = simulator.run(
            snn,
            test_inputs[: s.eval_samples],
            dataset.test_labels[: s.eval_samples],
        )
        prepared = PreparedWorkload(
            spec=spec,
            network=network,
            snn=snn,
            dataset=dataset,
            trace=result.trace,
            accuracy=result.accuracy,
        )
        self._workloads[cache_key] = prepared
        return prepared

    # -- remote serving -----------------------------------------------------------

    def served_workload_name(self) -> str | None:
        """Workload advertised by the ``chip_endpoint`` server (None when unset).

        Cached after the first lookup.  Experiments use this to send only
        the matching benchmark's chip runs to the server — a single-workload
        server cannot answer for the other benchmarks.  Servers advertising
        the generic ``"custom"`` name accept any workload (the operator
        vouches for the match).
        """
        if self.settings.chip_endpoint is None:
            return None
        if self._served_workload is None:
            from repro.serve.distributed import RemoteSession, split_endpoints

            first = split_endpoints(self.settings.chip_endpoint)[0]
            with RemoteSession.connect(first) as remote:
                self._served_workload = str(remote.info().get("workload", "custom"))
        return self._served_workload

    # -- architecture evaluations -----------------------------------------------------

    def map(self, workload: PreparedWorkload, crossbar_size: int) -> MappedNetwork:
        """Map a prepared workload at the given MCA size."""
        return map_network(workload.network, crossbar_size=crossbar_size)

    def evaluate_resparc(
        self,
        workload: PreparedWorkload,
        crossbar_size: int = 64,
        event_driven: bool = True,
        weight_bits: int = 4,
    ) -> ResparcEvaluation:
        """Evaluate one classification of a workload on RESPARC."""
        config = (
            ArchitectureConfig()
            .with_crossbar_size(crossbar_size)
            .with_event_driven(event_driven)
            .with_weight_bits(weight_bits)
        )
        model = ResparcModel(config=config)
        return model.evaluate(model.map(workload.network), workload.trace)

    def evaluate_chip(
        self,
        workload: PreparedWorkload,
        crossbar_size: int = 64,
        event_driven: bool = True,
        backend: str | None = None,
        samples: int | None = None,
        jobs: int | None = None,
        executor: str | None = None,
        endpoint: str | None = None,
    ) -> ChipRunResult:
        """Run a workload through the serve-layer chip sessions.

        This is the experiment-level entry to the cycle-exact chip model: it
        executes the converted SNN through a :class:`repro.serve.ChipSession`
        (or, with ``jobs > 1``, shards the batch across a
        :class:`repro.serve.ChipPool` using ``executor`` — inline, thread or
        process workers) and returns measured counters/energy, which
        cross-validates the analytical activity-based evaluation.  Only MLP
        workloads are executable on the structural chip.

        ``backend`` defaults to ``settings.chip_backend``, ``jobs`` to
        ``settings.chip_jobs``, ``executor`` to ``settings.chip_executor``
        and ``endpoint`` to ``settings.chip_endpoint``.  The single-session
        path encodes from the legacy derived-RNG stream (bit-identical to
        earlier releases); the pool path uses the shard-stable
        :class:`repro.snn.EncoderState` seeding, whose Poisson draws differ
        from the legacy stream but are identical for every ``jobs`` count
        and every executor.

        With an ``endpoint`` (one ``"host:port"`` or a comma-separated list),
        the request is routed through pipelined remote sessions and the
        async :class:`~repro.serve.InferenceGateway` to running chip servers
        instead of executing locally — multiple endpoints split each batch
        capacity-weighted so network and compute overlap.  The servers
        decide backend/jobs/seeding, so ``crossbar_size``/``backend``/
        ``jobs`` do not apply, and results match local runs only if every
        server serves the same workload with the same settings.
        """
        if not workload.spec.is_mlp:
            raise ValueError(
                f"{workload.name} is not an MLP; the chip simulator executes "
                "fully connected networks only"
            )
        s = self.settings
        n = s.eval_samples if samples is None else samples
        inputs = self._inputs_for(workload.spec, workload.dataset, "test")[:n]
        labels = workload.dataset.test_labels[:n]
        request = InferenceRequest(inputs=inputs, labels=labels)
        endpoint = s.chip_endpoint if endpoint is None else endpoint
        if endpoint is not None:
            return self._evaluate_remote(workload, request, endpoint)
        config = ArchitectureConfig().with_crossbar_size(crossbar_size).with_event_driven(
            event_driven
        )
        jobs = s.chip_jobs if jobs is None else jobs
        if jobs > 1:
            with ChipPool(
                workload.snn,
                jobs=jobs,
                config=config,
                timesteps=s.timesteps,
                encoder="poisson",
                backend=backend or s.chip_backend,
                seed=stable_seed(s.seed, "chip", workload.name),
                executor=executor or s.chip_executor,
            ) as pool:
                return pool.infer(request).as_run_result()
        session = ChipSession(
            workload.snn,
            config=config,
            timesteps=s.timesteps,
            encoder="poisson",
            backend=backend or s.chip_backend,
            rng=derive_rng(s.seed, "chip", workload.name),
        )
        return session.infer(request).as_run_result()

    def _evaluate_remote(
        self, workload: PreparedWorkload, request: InferenceRequest, endpoint: str
    ) -> ChipRunResult:
        """Send one chip run to remote server(s) through the async gateway.

        Workload mismatches fail before any batch is sent, naming both
        sides; servers advertising the generic ``"custom"`` workload accept
        anything (the operator vouches for the match).
        """
        from repro.serve.distributed import (
            GatewayEndpoint,
            InferenceGateway,
            PipelinedSession,
            split_endpoints,
        )

        endpoints = split_endpoints(endpoint)
        deadline_s = (
            self.settings.chip_deadline_s
            if self.settings.chip_deadline_s is not None
            else REMOTE_DEADLINE_S
        )
        remotes: list[PipelinedSession] = []
        gateway: InferenceGateway | None = None
        try:
            for part in endpoints:
                # The deadline bounds establishment too: wire negotiation
                # reads a handshake reply, and a wedged server (accepts,
                # never answers) must fail the run within the deadline.
                remote = PipelinedSession.connect(part, timeout=deadline_s)
                remotes.append(remote)
                served = str(
                    remote.info(timeout=deadline_s).get("workload", "custom")
                )
                if served not in ("custom", workload.name):
                    raise ValueError(
                        f"chip server at {part} serves {served!r}, not "
                        f"{workload.name!r}; start a matching server "
                        f"(python -m repro.serve.distributed serve --workload "
                        f"{workload.name}) or drop the endpoint"
                    )
            gateway = InferenceGateway(
                [
                    GatewayEndpoint(target=remote, name=part)
                    for remote, part in zip(remotes, endpoints)
                ]
            )
            # The deadline guards both ends: the servers' admission control
            # sheds the request if it queues past the deadline, and the
            # result timeout bounds the wait on a wedged server.
            return (
                gateway.submit(request, deadline_s=deadline_s)
                .result(deadline_s)
                .as_run_result()
            )
        finally:
            # Close the sessions FIRST: that fails any still-pending shard
            # futures and unblocks the gateway's worker threads, so the
            # gateway close (which joins them) cannot hang on a wedged
            # server that already blew the deadline above.
            for remote in remotes:
                remote.close()
            if gateway is not None:
                gateway.close()

    def evaluate_cmos(
        self,
        workload: PreparedWorkload,
        weight_bits: int = 4,
        event_driven: bool = True,
    ) -> BaselineEvaluation:
        """Evaluate one classification of a workload on the CMOS baseline."""
        config = BaselineConfig(event_driven=event_driven).with_weight_bits(weight_bits)
        return CmosBaselineModel(config=config).evaluate(workload.network, workload.trace)
