"""Event-driven energy savings across datasets and packet widths.

RESPARC exploits the event-driven nature of SNNs with zero-check logic in its
switches and at its input memory: all-zero spike packets are never
transferred or evaluated.  This example quantifies that mechanism from two
angles:

* data statistics — how often encoded input packets of 32/64/128 bits are all
  zero for sparse (MNIST-like) versus dense (CIFAR-like) synthetic images, and
* architecture energy — per-classification energy of the MNIST MLP and CNN
  with and without the event-driven optimisations for each MCA size
  (the paper's Fig. 13 study).

Run with:  python examples/event_driven_savings.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ArchitectureConfig, ResparcModel
from repro.datasets import dataset_spike_statistics, make_dataset
from repro.snn import SpikingSimulator, convert_to_snn
from repro.utils.units import format_energy
from repro.workloads import build_mnist_cnn, build_mnist_mlp


def data_statistics() -> None:
    print("Zero-packet probability of Poisson-encoded inputs")
    print(f"  {'dataset':<10} {'32-bit':>8} {'64-bit':>8} {'128-bit':>8}")
    for name in ("mnist", "svhn", "cifar10"):
        dataset = make_dataset(name, train_samples=16, test_samples=16, seed=0)
        stats = {s.packet_bits: s.zero_packet_fraction for s in dataset_spike_statistics(dataset)}
        print(f"  {name:<10} {stats[32]:>8.2%} {stats[64]:>8.2%} {stats[128]:>8.2%}")


def architecture_savings() -> None:
    mnist = make_dataset("mnist", train_samples=16, test_samples=16, seed=0)
    workloads = {
        "mnist-mlp": (build_mnist_mlp(), mnist.test_images.reshape(-1, 784)),
        "mnist-cnn": (build_mnist_cnn(), mnist.test_images),
    }
    print("\nRESPARC energy with / without event-driven optimisations")
    print(f"  {'benchmark':<12} {'MCA':>5} {'with':>12} {'without':>12} {'savings':>9}")
    for name, (network, inputs) in workloads.items():
        snn = convert_to_snn(network, inputs[:8])
        trace = SpikingSimulator(timesteps=16, rng=np.random.default_rng(0)).run(snn, inputs[:4]).trace
        for size in (128, 64, 32):
            base = ArchitectureConfig().with_crossbar_size(size)
            with_ed = ResparcModel(config=base.with_event_driven(True)).evaluate(network, trace)
            without_ed = ResparcModel(config=base.with_event_driven(False)).evaluate(network, trace)
            savings = 1 - with_ed.energy_per_classification_j / without_ed.energy_per_classification_j
            print(
                f"  {name:<12} {size:>5} {format_energy(with_ed.energy_per_classification_j):>12} "
                f"{format_energy(without_ed.energy_per_classification_j):>12} {savings:>8.1%}"
            )


def main() -> None:
    data_statistics()
    architecture_savings()


if __name__ == "__main__":
    main()
