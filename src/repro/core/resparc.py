"""The RESPARC chip: a pool of NeuroCells around a shared bus and input memory.

This is the structural model of the reconfigurable core (the topmost tier of
the hierarchy, Fig. 3).  :meth:`ResparcChip.from_spiking_network` builds a
chip instance for a concrete network: it maps the network, instantiates the
NeuroCells/mPEs/switches the mapping requires, and programs every weight
block into a physical MCA.  The chip then executes spike vectors layer by
layer through its components, which is how the structural and analytical
models are cross-validated.

Scope: the structural execution path supports fully connected (MLP) spiking
networks — the topology RESPARC maps as dense tiles.  Convolutional networks
are evaluated through the analytical model (:mod:`repro.core.model`), whose
event accounting the structural model validates on MLPs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.buffers import SpikePacket
from repro.core.config import ArchitectureConfig
from repro.core.control import GlobalControlUnit
from repro.core.interconnect import GlobalIOBus, InputMemory
from repro.core.mpe import TileAssignment
from repro.core.neurocell import NeuroCell
from repro.crossbar.mca import CrossbarConfig
from repro.snn.conversion import SpikingNetwork
from repro.snn.layers import Dense
from repro.snn.neuron import IFNeuronParameters, IFNeuronPool

__all__ = ["ProgrammedTile", "ResparcChip"]


@dataclass(frozen=True)
class ProgrammedTile:
    """Bookkeeping record linking a logical tile to its physical MCA."""

    layer_index: int
    neurocell_index: int
    mpe_index: int
    mca_index: int
    assignment: TileAssignment


class ResparcChip:
    """A structurally instantiated RESPARC core."""

    def __init__(self, config: ArchitectureConfig, rng: np.random.Generator | None = None):
        self.config = config
        self.rng = rng
        self.neurocells: list[NeuroCell] = []
        self.bus = GlobalIOBus(word_bits=config.word_bits, zero_check_enabled=config.event_driven)
        self.input_memory = InputMemory(
            capacity_bytes=config.input_sram_bytes, word_bits=config.word_bits
        )
        self.global_control: GlobalControlUnit | None = None
        self.tiles: list[ProgrammedTile] = []
        self.layer_order: list[int] = []
        self._layer_dims: dict[int, tuple[int, int]] = {}
        self._thresholds: dict[int, float] = {}
        self.neuron_pools: dict[int, IFNeuronPool] = {}

    # -- construction ------------------------------------------------------------------

    def _crossbar_config(self) -> CrossbarConfig:
        return CrossbarConfig(
            rows=self.config.crossbar_rows,
            columns=self.config.crossbar_columns,
            device=self.config.device,
        )

    def _new_neurocell(self) -> NeuroCell:
        cell = NeuroCell(
            cell_id=len(self.neurocells),
            crossbar_config=self._crossbar_config(),
            mpes_per_neurocell=self.config.mpes_per_neurocell,
            mcas_per_mpe=self.config.mcas_per_mpe,
            packet_bits=self.config.packet_bits,
            zero_check_enabled=self.config.event_driven,
            rng=self.rng,
        )
        self.neurocells.append(cell)
        return cell

    @classmethod
    def from_spiking_network(
        cls,
        snn: SpikingNetwork,
        config: ArchitectureConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> "ResparcChip":
        """Build and program a chip for a fully connected spiking network."""
        config = config or ArchitectureConfig()
        chip = cls(config, rng=rng)
        network = snn.network

        dense_layers = [
            (index, layer)
            for index, layer in enumerate(network.layers)
            if isinstance(layer, Dense)
        ]
        if len(dense_layers) != len(network.layers):
            raise ValueError(
                "the structural chip executes fully connected (Dense-only) networks; "
                "use the analytical model for convolutional topologies"
            )

        rows = config.crossbar_rows
        columns = config.crossbar_columns
        current_cell = chip._new_neurocell()
        for layer_index, layer in dense_layers:
            chip.layer_order.append(layer_index)
            chip._layer_dims[layer_index] = (layer.n_in, layer.n_out)
            chip._thresholds[layer_index] = snn.threshold_for(layer_index)
            weights = layer.weights
            scale = float(np.max(np.abs(weights))) or 1.0
            for row_start in range(0, layer.n_in, rows):
                row_stop = min(row_start + rows, layer.n_in)
                for col_start in range(0, layer.n_out, columns):
                    col_stop = min(col_start + columns, layer.n_out)
                    assignment = TileAssignment(
                        layer_index=layer_index,
                        row_start=row_start,
                        row_stop=row_stop,
                        column_start=col_start,
                        column_stop=col_stop,
                    )
                    mpe = current_cell.next_mpe_with_space()
                    if mpe is None:
                        current_cell = chip._new_neurocell()
                        mpe = current_cell.next_mpe_with_space()
                    mca_index = mpe.program_tile(
                        assignment,
                        weights[row_start:row_stop, col_start:col_stop],
                        targets=[f"layer{layer_index}"],
                        scale=scale,
                    )
                    chip.tiles.append(
                        ProgrammedTile(
                            layer_index=layer_index,
                            neurocell_index=current_cell.cell_id,
                            mpe_index=current_cell.mpes.index(mpe),
                            mca_index=mca_index,
                            assignment=assignment,
                        )
                    )
        chip.global_control = GlobalControlUnit(tuple(range(len(chip.neurocells))))
        return chip

    # -- introspection -----------------------------------------------------------------

    @property
    def layer_dims(self) -> dict[int, tuple[int, int]]:
        """``(n_in, n_out)`` of every mapped layer, keyed by layer index."""
        return dict(self._layer_dims)

    def dims_for(self, layer_index: int) -> tuple[int, int]:
        """``(n_in, n_out)`` of one mapped layer."""
        if layer_index not in self._layer_dims:
            raise KeyError(f"layer {layer_index} is not mapped on this chip")
        return self._layer_dims[layer_index]

    def threshold_for(self, layer_index: int) -> float:
        """IF threshold programmed for one mapped layer."""
        if layer_index not in self._thresholds:
            raise KeyError(f"layer {layer_index} is not mapped on this chip")
        return self._thresholds[layer_index]

    @property
    def input_dim(self) -> int:
        """Width of the first mapped layer's input vector."""
        if not self.layer_order:
            raise RuntimeError("chip has no mapped layers")
        return self._layer_dims[self.layer_order[0]][0]

    @property
    def output_dim(self) -> int:
        """Width of the last mapped layer's output vector."""
        if not self.layer_order:
            raise RuntimeError("chip has no mapped layers")
        return self._layer_dims[self.layer_order[-1]][1]

    # -- execution ----------------------------------------------------------------------

    def reset_state(self) -> None:
        """Reset neuron membranes/spike counts (weights stay programmed)."""
        self.neuron_pools = {
            layer_index: IFNeuronPool(
                (1, self._layer_dims[layer_index][1]),
                IFNeuronParameters(threshold=self._thresholds[layer_index]),
            )
            for layer_index in self.layer_order
        }

    def tiles_for_layer(self, layer_index: int) -> list[ProgrammedTile]:
        """Programmed tiles of one layer."""
        return [tile for tile in self.tiles if tile.layer_index == layer_index]

    def step(self, input_spikes: np.ndarray) -> np.ndarray:
        """Advance the chip by one timestep for one sample.

        ``input_spikes`` is the binary input vector of the first layer; the
        return value is the output layer's spike vector for this timestep.
        """
        if not self.neuron_pools:
            self.reset_state()
        current = np.asarray(input_spikes, dtype=float).reshape(-1)

        # Stage the input vector in the input memory and broadcast it.
        first_layer_cells = {t.neurocell_index for t in self.tiles_for_layer(self.layer_order[0])}
        self.input_memory.store_vector("input", current)
        bits, _ = self.input_memory.load_vector("input")
        self.bus.broadcast(bits, target_neurocells=max(len(first_layer_cells), 1))

        for position, layer_index in enumerate(self.layer_order):
            n_in, n_out = self._layer_dims[layer_index]
            if current.shape[0] != n_in:
                raise ValueError(
                    f"layer {layer_index} expects {n_in} inputs, got {current.shape[0]}"
                )
            drive = np.zeros(n_out)
            tiles = self.tiles_for_layer(layer_index)
            # Deliver the spike vector to every mPE holding tiles of the layer.
            destinations: dict[tuple[int, int], list[ProgrammedTile]] = {}
            for tile in tiles:
                destinations.setdefault((tile.neurocell_index, tile.mpe_index), []).append(tile)
            for (cell_index, mpe_index), mpe_tiles in destinations.items():
                cell = self.neurocells[cell_index]
                mpe = cell.mpes[mpe_index]
                cell.route_spike_vector(current, [mpe.mpe_id], source=f"layer{layer_index}.in")
                for tile in mpe_tiles:
                    a = tile.assignment
                    rows = current[a.row_start : a.row_stop]
                    mpe.deliver_packets(
                        tile.mca_index,
                        SpikePacket.from_array(rows, self.config.packet_bits, target=mpe.mpe_id),
                    )
                    partial = mpe.evaluate_tile(tile.mca_index, current)
                    drive[a.column_start : a.column_stop] += partial
                    if a.row_start > 0:
                        mpe.ccu.accept_transfer_in()

            pool = self.neuron_pools[layer_index]
            spikes = pool.step(drive.reshape(1, -1)).reshape(-1)

            # Emit output packets from one representative mPE per destination.
            for (cell_index, mpe_index), mpe_tiles in destinations.items():
                mpe = self.neurocells[cell_index].mpes[mpe_index]
                for tile in mpe_tiles:
                    a = tile.assignment
                    mpe.emit_output(tile.mca_index, spikes[a.column_start : a.column_stop])

            # Inter-layer transfer through bus/SRAM when the next layer lives
            # in a different NeuroCell.
            if position + 1 < len(self.layer_order):
                next_cells = {
                    t.neurocell_index for t in self.tiles_for_layer(self.layer_order[position + 1])
                }
                if not next_cells.issubset({t.neurocell_index for t in tiles}):
                    self.input_memory.store_vector(f"layer{layer_index}.out", spikes)
                    bits, _ = self.input_memory.load_vector(f"layer{layer_index}.out")
                    self.bus.broadcast(bits, target_neurocells=max(len(next_cells), 1))
            current = spikes

        if self.global_control is not None:
            for cell in self.neurocells:
                self.global_control.mark_complete(cell.cell_id)
        return current

    # -- aggregate statistics -----------------------------------------------------------------

    @property
    def total_mpes_used(self) -> int:
        """mPEs holding at least one programmed tile."""
        return len({(t.neurocell_index, t.mpe_index) for t in self.tiles})

    @property
    def crossbar_energy_j(self) -> float:
        """Analog crossbar energy accumulated so far."""
        return sum(cell.crossbar_energy_j for cell in self.neurocells)

    @property
    def switch_hops(self) -> int:
        """Switch-network packet hops so far."""
        return sum(cell.switch_hops for cell in self.neurocells)

    @property
    def suppressed_packets(self) -> int:
        """Zero packets suppressed so far."""
        return sum(cell.suppressed_packets for cell in self.neurocells)

    @property
    def mca_count(self) -> int:
        """Programmed MCAs."""
        return len(self.tiles)

    def required_neurocells(self) -> int:
        """NeuroCells instantiated for the mapping."""
        return len(self.neurocells)

    def effective_layer_weights(self, layer_index: int) -> np.ndarray:
        """Reassemble the signed weights realised by the programmed devices."""
        n_in, n_out = self._layer_dims[layer_index]
        weights = np.zeros((n_in, n_out))
        for tile in self.tiles_for_layer(layer_index):
            a = tile.assignment
            mpe = self.neurocells[tile.neurocell_index].mpes[tile.mpe_index]
            block = mpe.mcas[tile.mca_index].effective_weights()
            weights[a.row_start : a.row_stop, a.column_start : a.column_stop] = block[
                : a.rows, : a.columns
            ]
        return weights
