"""Wall-clock comparison of the structural and vectorized chip backends.

The vectorized backend exists for throughput: the acceptance bar is a >= 5x
speedup over the per-sample structural execution on a batch of 64 MLP
samples, while staying result-identical (the parity suite asserts the
identity; here we re-check the cheap invariants on the benchmarked runs).
Observed speedups are far above the bar — the structural path walks Python
packet objects per sample, the fast path does a handful of matmuls per
timestep for the whole batch.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import ArchitectureConfig, ChipSimulator
from repro.serve import ChipPool, ChipSession, InferenceRequest
from repro.snn import Dense, Network, convert_to_snn

BATCH = 64
TIMESTEPS = 8
SPEEDUP_FLOOR = 5.0

#: Pool benchmark: batch the issue floor (>= 64) is asserted at.
POOL_BATCH = 256
POOL_JOBS = 4


@pytest.fixture(scope="module")
def bench_workload():
    """A mid-size MLP, its programmed chip and a 64-sample input batch."""
    rng = np.random.default_rng(17)
    network = Network(
        (196,),
        [
            Dense(196, 64, use_bias=False, rng=rng, name="fc1"),
            Dense(64, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="bench-mlp",
    )
    snn = convert_to_snn(network, rng.random((24, 196)))
    config = ArchitectureConfig(crossbar_rows=32, crossbar_columns=32)
    chip = ChipSimulator(config=config).build_chip(snn)
    inputs = rng.random((BATCH, 196))
    return snn, config, chip, inputs


def _simulator(config, backend: str) -> ChipSimulator:
    return ChipSimulator(
        config=config,
        timesteps=TIMESTEPS,
        encoder="deterministic",
        backend=backend,
        rng=np.random.default_rng(0),
    )


def test_bench_structural_backend(benchmark, bench_workload):
    """Reference path: 64 samples, one at a time through the component tree."""
    snn, config, chip, inputs = bench_workload
    simulator = _simulator(config, "structural")
    result = benchmark.pedantic(
        lambda: simulator.run(snn, inputs, chip=chip), iterations=1, rounds=1
    )
    assert result.predictions.shape == (BATCH,)


def test_bench_vectorized_backend(benchmark, bench_workload):
    """Fast path: the same 64 samples as one compiled batch."""
    snn, config, chip, inputs = bench_workload
    simulator = _simulator(config, "vectorized")
    result = benchmark.pedantic(
        lambda: simulator.run(snn, inputs, chip=chip), iterations=1, rounds=3
    )
    assert result.predictions.shape == (BATCH,)


def test_vectorized_speedup_floor(bench_workload):
    """The vectorized backend must be >= 5x faster on a 64-sample batch."""
    snn, config, chip, inputs = bench_workload

    structural = _simulator(config, "structural")
    t0 = time.perf_counter()
    structural_result = structural.run(snn, inputs, chip=chip)
    structural_s = time.perf_counter() - t0

    vectorized = _simulator(config, "vectorized")
    vectorized_s = float("inf")
    for _ in range(3):  # best of three to shake out first-call overheads
        t0 = time.perf_counter()
        vectorized_result = vectorized.run(snn, inputs, chip=chip)
        vectorized_s = min(vectorized_s, time.perf_counter() - t0)

    speedup = structural_s / vectorized_s
    print(
        f"\nbackend wall-clock: structural {structural_s:.3f}s, "
        f"vectorized {vectorized_s:.3f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized backend only {speedup:.1f}x faster "
        f"({structural_s:.3f}s vs {vectorized_s:.3f}s)"
    )
    # The speed must not change the answer.
    np.testing.assert_array_equal(
        structural_result.predictions, vectorized_result.predictions
    )
    np.testing.assert_array_equal(
        structural_result.spike_counts, vectorized_result.spike_counts
    )


# -- pool throughput ----------------------------------------------------------------


@pytest.fixture(scope="module")
def pool_workload():
    """A wider MLP and a large batch, sized so per-shard work amortises threads."""
    rng = np.random.default_rng(23)
    network = Network(
        (256,),
        [
            Dense(256, 128, use_bias=False, rng=rng, name="fc1"),
            Dense(128, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="pool-mlp",
    )
    snn = convert_to_snn(network, rng.random((24, 256)))
    config = ArchitectureConfig(crossbar_rows=32, crossbar_columns=32)
    inputs = rng.random((POOL_BATCH, 256))
    return snn, config, inputs


def _pool_time(pool: ChipPool, request: InferenceRequest, rounds: int = 3):
    """Best-of-N wall clock of one pool inference, plus the last response."""
    best = float("inf")
    response = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        response = pool.infer(request)
        best = min(best, time.perf_counter() - t0)
    return best, response


def test_bench_pool_sharded_inference(benchmark, pool_workload):
    """Sharded pool inference on the vectorized backend (timing reference)."""
    snn, config, inputs = pool_workload
    request = InferenceRequest(inputs=inputs)
    with ChipPool(
        snn, jobs=POOL_JOBS, config=config, timesteps=TIMESTEPS, seed=0
    ) as pool:
        response = benchmark.pedantic(
            lambda: pool.infer(request), iterations=1, rounds=3
        )
    assert response.predictions.shape == (POOL_BATCH,)
    assert response.jobs == POOL_JOBS


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="pool sharding needs >= 2 cores to beat a single session",
)
def test_pool_throughput_beats_single_session(pool_workload, persist_result):
    """``jobs=4`` must beat ``jobs=1`` on a batch >= 64 (vectorized backend)."""
    snn, config, inputs = pool_workload
    request = InferenceRequest(inputs=inputs)
    with ChipPool(snn, jobs=1, config=config, timesteps=TIMESTEPS, seed=0) as single:
        single_s, single_response = _pool_time(single, request)
    with ChipPool(
        snn, jobs=POOL_JOBS, config=config, timesteps=TIMESTEPS, seed=0
    ) as pool:
        pool_s, pool_response = _pool_time(pool, request)

    speedup = single_s / pool_s
    print(
        f"\npool wall-clock (batch {POOL_BATCH}): jobs=1 {single_s:.3f}s, "
        f"jobs={POOL_JOBS} {pool_s:.3f}s, speedup {speedup:.2f}x"
    )
    persist_result(
        "backends",
        "pool_vs_single_session",
        {
            "batch": POOL_BATCH,
            "jobs": POOL_JOBS,
            "timesteps": TIMESTEPS,
            "single_s": single_s,
            "pool_s": pool_s,
            "speedup": speedup,
        },
    )
    assert speedup > 1.0, (
        f"jobs={POOL_JOBS} pool slower than a single session "
        f"({pool_s:.3f}s vs {single_s:.3f}s)"
    )
    # Sharding must not change the answer.
    np.testing.assert_array_equal(
        single_response.predictions, pool_response.predictions
    )
    np.testing.assert_array_equal(
        single_response.spike_counts, pool_response.spike_counts
    )


def test_pool_result_matches_session_on_bench_workload(pool_workload):
    """Cheap invariant re-check on the benchmarked shape (cores-independent)."""
    snn, config, inputs = pool_workload
    request = InferenceRequest(inputs=inputs[:96])
    session = ChipSession(snn, config=config, timesteps=TIMESTEPS, seed=0)
    single = session.infer(request)
    with ChipPool(
        snn, jobs=POOL_JOBS, config=config, timesteps=TIMESTEPS, seed=0
    ) as pool:
        sharded = pool.infer(request)
    np.testing.assert_array_equal(single.predictions, sharded.predictions)
    np.testing.assert_array_equal(single.spike_counts, sharded.spike_counts)
    assert sharded.energy.total_j == pytest.approx(single.energy.total_j, rel=1e-9)
