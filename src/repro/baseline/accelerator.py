"""Activity model of the CMOS baseline's compute core.

Counts, for one classification (``timesteps`` rate-coded steps of a given
network with a given spike-activity trace), the architectural events of the
baseline core: multiply-accumulates executed by the Neuron Units, neuron
membrane updates, and FIFO pushes/pops.  The event-driven optimisation skips
the MACs (and the corresponding FIFO traffic) of input neurons that did not
spike in a timestep — the same optimisation RESPARC gets from its zero-check
logic, so the comparison between the two architectures is fair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baseline.config import BaselineConfig
from repro.snn.functional import ActivityTrace
from repro.snn.topology import LayerConnectivity

__all__ = ["LayerActivityCounts", "BaselineActivityModel"]


@dataclass(frozen=True)
class LayerActivityCounts:
    """Per-classification event counts for one layer on the baseline core."""

    layer_index: int
    macs: float
    neuron_updates: float
    fifo_accesses: float
    compute_cycles: float

    @property
    def total_events(self) -> float:
        """All dynamic core events (used in sanity checks)."""
        return self.macs + self.neuron_updates + self.fifo_accesses


@dataclass
class BaselineActivityModel:
    """Computes core event counts from connectivity + activity statistics."""

    config: BaselineConfig

    def layer_counts(
        self,
        layer: LayerConnectivity,
        input_rate: float,
        timesteps: int,
    ) -> LayerActivityCounts:
        """Event counts for one layer over a full classification.

        Parameters
        ----------
        layer:
            Structural descriptor of the layer.
        input_rate:
            Mean input spike probability per neuron per timestep (from the
            functional activity trace).
        timesteps:
            Rate-coding window length.
        """
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        if not 0.0 <= input_rate <= 1.0:
            raise ValueError(f"input_rate must be in [0, 1], got {input_rate}")

        rate = input_rate if self.config.event_driven else 1.0
        synaptic_ops_per_step = layer.synapses * rate

        # Pooling layers do a cheap accumulate per connection rather than a
        # full MAC, but the event count is the same order; keep them as MACs
        # for simplicity (they are a tiny fraction of the total).
        macs = synaptic_ops_per_step * timesteps
        neuron_updates = float(layer.n_outputs) * timesteps
        # Each synaptic op pops one input spike bit and one weight from the
        # FIFOs; each output update pushes one result.
        fifo_accesses = (2.0 * synaptic_ops_per_step + layer.n_outputs) * timesteps
        # The NU array retires nu_count MACs per cycle.
        compute_cycles = macs / self.config.nu_count
        return LayerActivityCounts(
            layer_index=layer.index,
            macs=macs,
            neuron_updates=neuron_updates,
            fifo_accesses=fifo_accesses,
            compute_cycles=compute_cycles,
        )

    def classification_counts(
        self,
        connectivity: list[LayerConnectivity],
        trace: ActivityTrace,
    ) -> list[LayerActivityCounts]:
        """Per-layer event counts for one classification using a measured trace."""
        counts = []
        for layer in connectivity:
            activity = trace.layer(layer.index)
            counts.append(
                self.layer_counts(
                    layer=layer,
                    input_rate=activity.input_spike_rate,
                    timesteps=trace.timesteps,
                )
            )
        return counts
