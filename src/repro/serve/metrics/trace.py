"""Per-request phase spans, carried on the response ``metadata`` dict.

A request's wall time decomposes into four phases as it crosses the
serving layers:

* ``queue_wait_s`` — admitted by the server, waiting for the dispatcher;
* ``dispatch_s``  — popped by the dispatcher, waiting for compute to start
  (executor/batch handoff);
* ``compute_s``   — the chip actually running (session/pool/executor);
* ``merge_s``     — shard results folded back into one response
  (pool wave merge, gateway shard merge).

Rather than invent a side channel, the spans ride the plumbing every
request already has: the ``metadata`` dict of
:class:`~repro.serve.schema.InferenceResponse`, keyed by request id at the
layer that measured them.  Each layer *adds* to the phases it owns
(``record_phase``), so a request that crosses pool → server → gateway
accumulates one dict with all four phases, and
``phases_total(metadata)`` is comparable to the measured wall time (the
span-accounting parity test pins this).
"""

from __future__ import annotations

__all__ = [
    "PHASES_KEY",
    "PHASE_COMPUTE",
    "PHASE_DISPATCH",
    "PHASE_KEYS",
    "PHASE_MERGE",
    "PHASE_QUEUE_WAIT",
    "merge_phases",
    "phases_total",
    "read_phases",
    "record_phase",
]

PHASES_KEY = "phases"

PHASE_QUEUE_WAIT = "queue_wait_s"
PHASE_DISPATCH = "dispatch_s"
PHASE_COMPUTE = "compute_s"
PHASE_MERGE = "merge_s"

PHASE_KEYS: tuple[str, ...] = (
    PHASE_QUEUE_WAIT,
    PHASE_DISPATCH,
    PHASE_COMPUTE,
    PHASE_MERGE,
)


def record_phase(metadata: dict, phase: str, seconds: float) -> None:
    """Add ``seconds`` to ``phase`` in ``metadata``'s span dict (in place)."""
    if seconds < 0:
        seconds = 0.0
    phases = metadata.get(PHASES_KEY)
    if not isinstance(phases, dict):
        phases = {}
        metadata[PHASES_KEY] = phases
    phases[phase] = float(phases.get(phase, 0.0)) + float(seconds)


def read_phases(metadata: dict | None) -> dict[str, float]:
    """The span dict (missing phases absent), ``{}`` when never recorded."""
    if not metadata:
        return {}
    phases = metadata.get(PHASES_KEY)
    if not isinstance(phases, dict):
        return {}
    return {str(key): float(value) for key, value in phases.items()}


def phases_total(metadata: dict | None) -> float:
    """Sum of all recorded phase spans — comparable to request wall time."""
    return sum(read_phases(metadata).values())


def merge_phases(target: dict, sources: list[dict | None]) -> None:
    """Fold shard-level spans into a merged response's metadata.

    Per phase the *maximum* across shards is kept, because shards run
    concurrently: the merged request's wall clock follows the critical
    path, not the sum of parallel work.
    """
    merged: dict[str, float] = read_phases(target)
    for source in sources:
        for phase, seconds in read_phases(source).items():
            if seconds > merged.get(phase, 0.0):
                merged[phase] = seconds
    if merged:
        target[PHASES_KEY] = merged
