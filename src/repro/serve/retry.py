"""Shared retry policy for the serving stack: backoff and per-request budgets.

Every layer that re-dispatches work — :class:`RemoteSession` reconnects,
:class:`PipelinedSession` resubmits after a dead connection, the gateway's
shed/``draining`` shard retries and hedged dispatch — draws from the same
two primitives here:

* :func:`retry_backoff` — jittered exponential backoff.  Jitter decorrelates
  clients: under overload, synchronized retries arrive as a thundering herd
  and re-trigger the very shedding they are retrying around.
* :class:`RetryBudget` — a thread-safe cap on the *total* retries a single
  request may consume across shards, endpoints, and layers.  One budget
  object travels with the request (see ``InferenceRequest.retry_budget``)
  so a request fanned out over N shards cannot turn into an unbounded
  retry storm: every retry, wherever it happens, consumes from the same
  pool.  Exhaustion surfaces as :class:`RetryBudgetExhausted`, a structured
  error naming the attempts.

The module is stdlib-only so :mod:`repro.serve.schema` can depend on it
without import cycles.
"""

from __future__ import annotations

import random
import threading

__all__ = [
    "RETRY_BACKOFF_BASE_S",
    "RetryBudget",
    "RetryBudgetExhausted",
    "retry_backoff",
]

#: Default first-retry backoff. Doubles per attempt, +/-50% jitter.
RETRY_BACKOFF_BASE_S = 0.05


def retry_backoff(
    attempt: int,
    *,
    base_s: float = RETRY_BACKOFF_BASE_S,
    cap_s: float | None = None,
) -> float:
    """Jittered exponential backoff delay for retry number ``attempt`` (0-based).

    The uncapped delay is ``base_s * 2**attempt``; ``cap_s`` bounds it before
    jitter so the worst case stays ``1.5 * cap_s``.  Jitter multiplies by a
    uniform factor in ``[0.5, 1.5)`` to decorrelate concurrent retriers.
    """
    delay = base_s * (2.0 ** max(0, int(attempt)))
    if cap_s is not None:
        delay = min(delay, cap_s)
    return delay * (0.5 + random.random())


class RetryBudgetExhausted(RuntimeError):
    """A request ran out of retries. Carries the accounting that proves it."""

    def __init__(self, message: str, *, attempts: int, retries: int) -> None:
        super().__init__(message)
        #: Total tries this budget allowed (initial dispatch + retries).
        self.attempts = attempts
        #: Retries actually consumed before exhaustion.
        self.retries = retries


class RetryBudget:
    """Thread-safe retry allowance shared by every shard of one request.

    ``max_attempts`` counts total tries for any single unit of work: the
    first dispatch is free, and up to ``max_attempts - 1`` retries may be
    consumed *in total across the whole request* — a deliberate pooling, so
    wide fan-outs don't multiply retry pressure on an overloaded fleet.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        backoff_base_s: float = RETRY_BACKOFF_BASE_S,
        backoff_cap_s: float | None = 2.0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_base_s < 0:
            raise ValueError(f"backoff_base_s must be >= 0, got {backoff_base_s}")
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = None if backoff_cap_s is None else float(backoff_cap_s)
        self._lock = threading.Lock()
        self._retries_used = 0

    @property
    def retries_used(self) -> int:
        with self._lock:
            return self._retries_used

    @property
    def remaining(self) -> int:
        with self._lock:
            return max(0, self.max_attempts - 1 - self._retries_used)

    def try_consume(self) -> int | None:
        """Consume one retry; returns its 0-based ordinal, or None if exhausted."""
        with self._lock:
            if self._retries_used >= self.max_attempts - 1:
                return None
            ordinal = self._retries_used
            self._retries_used += 1
            return ordinal

    def backoff_s(self, attempt: int) -> float:
        """Backoff delay for retry ordinal ``attempt`` under this budget's policy."""
        return retry_backoff(
            attempt, base_s=self.backoff_base_s, cap_s=self.backoff_cap_s
        )

    def exhausted(self, last_error: BaseException | None = None) -> RetryBudgetExhausted:
        """Build the structured exhaustion error, chaining ``last_error`` if given."""
        retries = self.retries_used
        detail = (
            f": last error {type(last_error).__name__}: {last_error}"
            if last_error is not None
            else ""
        )
        error = RetryBudgetExhausted(
            f"retry budget exhausted after {self.max_attempts} attempt(s) "
            f"({retries} retr{'y' if retries == 1 else 'ies'} consumed){detail}",
            attempts=self.max_attempts,
            retries=retries,
        )
        error.__cause__ = last_error
        return error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryBudget(max_attempts={self.max_attempts}, "
            f"retries_used={self.retries_used})"
        )
