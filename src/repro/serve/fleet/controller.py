"""Autoscaling control loop: EWMA load signals + hysteresis policy.

:class:`FleetController` watches a duck-typed *fleet* — anything with
``replica_count()``, ``load_signals()``, ``scale_up()`` and
``scale_down()`` — and decides when to grow or shrink it.  The signal is
**pressure**: the EWMA of mean per-replica backlog plus weighted EWMAs of
the fleet-wide shed rate (sheds mean the backlog bound is already cutting
work, so they push the signal up even when queues look short) and of the
hedge rate (hedges mean some replica is straggling — the gateway is paying
duplicate compute to hide it, so the fleet is effectively short a replica).

Scaling is governed by **hysteresis**, not thresholds alone: pressure must
stay above ``target_backlog`` for ``scale_up_stable_s`` before a scale-up,
below ``idle_backlog`` for ``scale_down_stable_s`` before a scale-down, and
``cooldown_s`` must elapse between any two actions — so a bursty signal
cannot flap the fleet.  Bounds (``min_replicas`` / ``max_replicas``) are
enforced by the controller regardless of what the fleet would allow.

The loop is deterministic under injection: :meth:`FleetController.step`
takes an explicit ``now`` and performs exactly one sample/decide/act
round, so tests drive the whole policy with a scripted fleet and a fake
clock.  :meth:`FleetController.start` runs the same ``step`` on a
background thread against the real clock.  Every decision (and every
refusal) is recorded as a structured event dict, surfaced through
:meth:`FleetController.status`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import asdict, dataclass

__all__ = ["FleetController", "FleetPolicy"]

#: Most recent controller events kept for status snapshots.
EVENT_LOG_LIMIT = 256


@dataclass(frozen=True)
class FleetPolicy:
    """Hysteresis autoscaling policy (all times in seconds).

    ``target_backlog`` / ``idle_backlog`` are *per-replica* pressure
    levels: scaling keys on mean backlog per replica, so a fleet twice the
    size tolerates twice the total queue before growing again.
    """

    min_replicas: int = 1
    max_replicas: int = 4
    #: Sampling interval of the background loop.
    interval_s: float = 0.5
    #: Scale up once EWMA pressure stays above this per-replica level...
    target_backlog: float = 2.0
    #: ...for this long.
    scale_up_stable_s: float = 1.0
    #: Scale down once EWMA pressure stays below this per-replica level...
    idle_backlog: float = 0.25
    #: ...for this long.
    scale_down_stable_s: float = 5.0
    #: Minimum time between any two scale actions.
    cooldown_s: float = 2.0
    #: EWMA smoothing factor in (0, 1]; 1 = no smoothing.
    ewma_alpha: float = 0.5
    #: How many backlog units one shed-per-interval is worth in pressure.
    shed_weight: float = 1.0
    #: How many backlog units one hedge-per-interval is worth in pressure
    #: (hedges signal a straggling replica burning duplicate compute).
    hedge_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError(f"min_replicas must be >= 1, got {self.min_replicas}")
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas ({self.max_replicas}) must be >= min_replicas "
                f"({self.min_replicas})"
            )
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.idle_backlog > self.target_backlog:
            raise ValueError(
                f"idle_backlog ({self.idle_backlog}) must be <= target_backlog "
                f"({self.target_backlog})"
            )


class FleetController:
    """Sample a fleet's load and apply the hysteresis scaling policy.

    ``fleet`` is duck-typed:

    * ``replica_count() -> int`` — current fleet size;
    * ``load_signals() -> list[dict]`` — one ``{"backlog": float, "shed":
      int, "hedges": int}`` per reachable replica (``shed`` / ``hedges``
      cumulative; the controller differences them — ``hedges`` optional
      for older fleets);
    * ``scale_up() -> bool`` / ``scale_down() -> bool`` — perform one
      action, returning whether it happened.

    ``clock`` defaults to :func:`time.monotonic`; tests inject a fake (or
    pass explicit ``now`` values straight to :meth:`step`).
    """

    def __init__(self, fleet, policy: FleetPolicy, *, clock=time.monotonic):
        self.fleet = fleet
        self.policy = policy
        self.clock = clock
        self.events: deque[dict[str, object]] = deque(maxlen=EVENT_LOG_LIMIT)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # EWMA state (None until the first sample seeds it).
        self._ewma_backlog: float | None = None
        self._ewma_shed_rate: float | None = None
        self._ewma_hedge_rate: float | None = None
        self._last_shed_total: int | None = None
        self._last_hedge_total: int | None = None
        # Hysteresis state: when the signal first crossed each line.
        self._above_since: float | None = None
        self._idle_since: float | None = None
        self._last_action_at: float | None = None
        self._actions = {"scale_up": 0, "scale_down": 0}

    # -- signals ------------------------------------------------------------------

    def _ewma(self, previous: float | None, sample: float) -> float:
        if previous is None:
            return float(sample)
        alpha = self.policy.ewma_alpha
        return alpha * float(sample) + (1.0 - alpha) * previous

    def _sample(self) -> dict[str, float]:
        """One load sample: mean per-replica backlog + fleet shed delta."""
        signals = list(self.fleet.load_signals())
        replicas = max(1, self.fleet.replica_count())
        if signals:
            backlog = sum(float(s.get("backlog", 0.0)) for s in signals) / len(
                signals
            )
        else:
            backlog = 0.0
        shed_total = int(sum(int(s.get("shed", 0)) for s in signals))
        hedge_total = int(sum(int(s.get("hedges", 0)) for s in signals))
        if self._last_shed_total is None:
            shed_delta = 0
        else:
            # Cumulative counters can step back when a replica retires;
            # pressure must not go negative because capacity left.
            shed_delta = max(0, shed_total - self._last_shed_total)
        self._last_shed_total = shed_total
        if self._last_hedge_total is None:
            hedge_delta = 0
        else:
            hedge_delta = max(0, hedge_total - self._last_hedge_total)
        self._last_hedge_total = hedge_total
        shed_rate = shed_delta / replicas
        hedge_rate = hedge_delta / replicas
        self._ewma_backlog = self._ewma(self._ewma_backlog, backlog)
        self._ewma_shed_rate = self._ewma(self._ewma_shed_rate, shed_rate)
        self._ewma_hedge_rate = self._ewma(self._ewma_hedge_rate, hedge_rate)
        pressure = (
            self._ewma_backlog
            + self.policy.shed_weight * self._ewma_shed_rate
            + self.policy.hedge_weight * self._ewma_hedge_rate
        )
        return {
            "backlog": backlog,
            "shed_delta": float(shed_delta),
            "hedge_delta": float(hedge_delta),
            "ewma_backlog": self._ewma_backlog,
            "ewma_shed_rate": self._ewma_shed_rate,
            "ewma_hedge_rate": self._ewma_hedge_rate,
            "pressure": pressure,
        }

    def _record(self, event: str, now: float, **details: object) -> None:
        self.events.append({"event": event, "at": float(now), **details})

    # -- the control step ---------------------------------------------------------

    def step(self, now: float | None = None) -> dict[str, object] | None:
        """One sample/decide/act round; returns the action event (or None).

        Deterministic: with an injected ``now`` and a scripted fleet the
        same call sequence always makes the same decisions.
        """
        with self._lock:
            if now is None:
                now = self.clock()
            sample = self._sample()
            pressure = sample["pressure"]
            policy = self.policy
            replicas = self.fleet.replica_count()

            # Track how long the signal has been on either side.  Explicit
            # None checks: a crossing timestamp of 0.0 (injected clocks) is
            # a real crossing, not an unset one.
            if pressure > policy.target_backlog:
                if self._above_since is None:
                    self._above_since = now
            else:
                self._above_since = None
            if pressure < policy.idle_backlog:
                if self._idle_since is None:
                    self._idle_since = now
            else:
                self._idle_since = None

            in_cooldown = (
                self._last_action_at is not None
                and now - self._last_action_at < policy.cooldown_s
            )

            action: str | None = None
            if (
                self._above_since is not None
                and now - self._above_since >= policy.scale_up_stable_s
                and replicas < policy.max_replicas
                and not in_cooldown
            ):
                action = "scale_up"
            elif (
                self._idle_since is not None
                and now - self._idle_since >= policy.scale_down_stable_s
                and replicas > policy.min_replicas
                and not in_cooldown
            ):
                action = "scale_down"
            if action is None:
                return None

            done = bool(
                self.fleet.scale_up()
                if action == "scale_up"
                else self.fleet.scale_down()
            )
            if not done:
                self._record(f"{action}_refused", now, replicas=replicas, **sample)
                return None
            # Re-arm the hysteresis: another action needs a fresh sustained
            # window on the post-action signal.
            self._above_since = None
            self._idle_since = None
            self._last_action_at = now
            self._actions[action] += 1
            event = {
                "event": action,
                "at": float(now),
                "replicas_before": replicas,
                "replicas_after": self.fleet.replica_count(),
                **sample,
            }
            self.events.append(event)
            return event

    # -- background loop ----------------------------------------------------------

    def start(self) -> "FleetController":
        """Run :meth:`step` on a background thread every ``interval_s``."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="fleet-controller", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.policy.interval_s):
            try:
                self.step()
            except Exception:  # noqa: BLE001 - one bad sample must not kill the loop
                # A scaling action that races teardown (or a replica dying
                # mid-poll) surfaces in fleet health, not by silencing the
                # controller forever.
                continue

    def close(self) -> None:
        """Stop and join the background loop (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    # -- introspection ------------------------------------------------------------

    def status(self) -> dict[str, object]:
        """Structured snapshot: policy, EWMA state, action counts, events.

        Lock-free on purpose: a status read must not block behind a scale
        action in progress (replica boots take seconds), and every field
        read here is a single atomic reference.
        """
        return {
            "policy": asdict(self.policy),
            "replicas": self.fleet.replica_count(),
            "ewma_backlog": self._ewma_backlog,
            "ewma_shed_rate": self._ewma_shed_rate,
            "ewma_hedge_rate": self._ewma_hedge_rate,
            "pressure": (
                None
                if self._ewma_backlog is None
                else self._ewma_backlog
                + self.policy.shed_weight * (self._ewma_shed_rate or 0.0)
                + self.policy.hedge_weight * (self._ewma_hedge_rate or 0.0)
            ),
            "actions": dict(self._actions),
            "events": list(self.events),
        }
