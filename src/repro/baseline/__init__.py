"""The optimised CMOS digital baseline accelerator (Section 4.1 of the paper).

* :mod:`repro.baseline.config` — micro-architectural parameters (Fig. 9).
* :mod:`repro.baseline.memory` — weight/activation SRAM sizing and energies.
* :mod:`repro.baseline.accelerator` — compute-core activity model.
* :mod:`repro.baseline.simulator` — per-classification energy/latency model.
"""

from repro.baseline.accelerator import BaselineActivityModel, LayerActivityCounts
from repro.baseline.config import BaselineConfig
from repro.baseline.memory import BaselineMemorySystem
from repro.baseline.simulator import BaselineEvaluation, CmosBaselineModel

__all__ = [
    "BaselineActivityModel",
    "LayerActivityCounts",
    "BaselineConfig",
    "BaselineMemorySystem",
    "BaselineEvaluation",
    "CmosBaselineModel",
]
