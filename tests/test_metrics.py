"""The observability plane: registry math, tracing parity, wire identity.

Four layers of guarantees:

* **histogram bucket math** (hypothesis properties): bucket counts stay
  consistent with observation totals, percentiles are monotone and bounded
  by the bucket edges, and merging histograms is associative and exact —
  the fixed-bucket design makes merge an elementwise add, so these are
  hard invariants, not approximations;
* **span accounting parity**: the per-request phase spans the serving
  layers attach to response metadata must sum to approximately the wall
  time the client observed — the decomposition may not invent or lose
  time;
* **wire identity**: the ``metrics`` op, the Prometheus endpoint, and the
  legacy ``info`` counters are three views over one registry and must
  agree exactly;
* **drain snapshot**: a draining server's final counters ride the drain
  ack, and the fleet's :class:`ReplicaManager` folds them into
  ``retired_stats`` so scale-down never loses served-request history.
"""

from __future__ import annotations

import time
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ArchitectureConfig
from repro.serve import ChipSession, InferenceRequest
from repro.serve.distributed import ChipServer, PipelinedSession
from repro.serve.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    phases_total,
    read_phases,
    render_prometheus,
)
from repro.serve.metrics.registry import Histogram
from repro.snn import Dense, Network, convert_to_snn

# -- strategies ---------------------------------------------------------------------

_edges = st.lists(
    st.floats(
        min_value=1e-6,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=12,
    unique=True,
).map(sorted)

_observations = st.lists(
    st.floats(min_value=0.0, max_value=2e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=64,
)


def _histogram(edges, values) -> Histogram:
    registry = MetricsRegistry(enabled=True)
    child = registry.histogram(
        "prop_seconds", "property-test series", buckets=tuple(edges)
    ).labels()
    for value in values:
        child.observe(value)
    return child


# -- histogram bucket math (hypothesis) ---------------------------------------------


class TestHistogramProperties:
    @given(edges=_edges, values=_observations)
    @settings(max_examples=60, deadline=None)
    def test_bucket_counts_partition_observations(self, edges, values):
        """Bucket counts (with the +Inf bucket) sum to the observation count."""
        h = _histogram(edges, values)
        assert sum(h.bucket_counts) == len(values) == h.count
        assert h.sum == pytest.approx(sum(values))
        # Bucket i holds exactly the observations in (edges[i-1], edges[i]];
        # the final slot catches everything past the last finite edge.
        bounds = [float("-inf")] + list(edges)
        for i, edge in enumerate(edges):
            expected = sum(1 for v in values if bounds[i] < v <= edge)
            assert h.bucket_counts[i] == expected, f"bucket le={edge}"
        assert h.bucket_counts[-1] == sum(1 for v in values if v > edges[-1])

    @given(edges=_edges, values=_observations)
    @settings(max_examples=60, deadline=None)
    def test_percentiles_monotone_and_bounded(self, edges, values):
        """p50 <= p95 <= p99, all within [0, last finite edge]."""
        h = _histogram(edges, values)
        qs = h.percentiles()
        assert 0.0 <= qs["p50"] <= qs["p95"] <= qs["p99"] <= edges[-1]

    @given(edges=_edges, a=_observations, b=_observations, c=_observations)
    @settings(max_examples=40, deadline=None)
    def test_merge_exact_and_associative(self, edges, a, b, c):
        """(A+B)+C == A+(B+C) == one histogram fed every observation."""
        ha, hb, hc = (_histogram(edges, v) for v in (a, b, c))
        left = _histogram(edges, [])
        left.merge(ha)
        left.merge(hb)
        left.merge(hc)
        right = _histogram(edges, [])
        right.merge(hc)
        right.merge(hb)
        right.merge(ha)
        everything = _histogram(edges, list(a) + list(b) + list(c))
        for merged in (left, right):
            assert merged.bucket_counts == everything.bucket_counts
            assert merged.count == everything.count
            assert merged.sum == pytest.approx(everything.sum)

    def test_merge_rejects_mismatched_edges(self):
        a = _histogram([1.0, 2.0], [0.5])
        b = _histogram([1.0, 3.0], [0.5])
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b)

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(set(DEFAULT_LATENCY_BUCKETS))


# -- registry basics ----------------------------------------------------------------


class TestRegistry:
    def test_counters_gauges_and_snapshot_round_trip(self):
        registry = MetricsRegistry(enabled=True)
        requests = registry.counter("demo_requests_total", "requests")
        requests.inc()
        requests.inc(4)
        depth = registry.gauge("demo_depth", "queue depth")
        depth.set(3)
        depth.set_max(2)  # lower: no change
        latency = registry.histogram("demo_latency_seconds", "latency")
        latency.observe(0.002)
        snapshot = registry.snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["families"]["demo_requests_total"]["series"][0]["value"] == 5
        assert snapshot["families"]["demo_depth"]["series"][0]["value"] == 3
        assert snapshot["families"]["demo_latency_seconds"]["series"][0]["count"] == 1
        text = render_prometheus(snapshot)
        assert "# TYPE demo_requests_total counter" in text
        assert "demo_requests_total 5" in text
        assert 'demo_latency_seconds_bucket{le="+Inf"} 1' in text

    def test_disabled_registry_is_inert(self):
        counter = NULL_REGISTRY.counter("noop_total", "ignored")
        counter.inc(10)
        histogram = NULL_REGISTRY.histogram("noop_seconds", "ignored")
        histogram.observe(1.0)
        assert counter.value == 0
        assert histogram.count == 0
        assert NULL_REGISTRY.snapshot()["enabled"] is False

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            registry.counter("neg_total", "x").inc(-1)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("shape_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("shape_total", "x")


# -- the served observability surface -----------------------------------------------


def _workload():
    rng = np.random.default_rng(9)
    network = Network(
        (32,),
        [
            Dense(32, 16, use_bias=False, rng=rng, name="fc1"),
            Dense(16, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="metrics-mlp",
    )
    snn = convert_to_snn(network, rng.random((8, 32)))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    inputs = rng.random((8, 32))
    return snn, config, inputs


@pytest.fixture(scope="module")
def served():
    snn, config, inputs = _workload()
    session = ChipSession(snn, config=config, timesteps=4, seed=3)
    server = ChipServer(
        session, port=0, workload="metrics-test", metrics_port=0
    ).start()
    client = PipelinedSession.connect(server.address, connections=1)
    yield server, client, inputs
    client.close()
    server.close()


class TestServedMetrics:
    def test_phase_spans_cover_request_wall_time(self, served):
        """Span accounting parity: recorded phases ~ client-observed wall."""
        server, client, inputs = served
        started = time.monotonic()
        response = client.infer(InferenceRequest(inputs=inputs))
        wall = time.monotonic() - started
        phases = read_phases(response.metadata)
        assert set(phases) >= {"queue_wait_s", "dispatch_s", "compute_s"}
        assert all(v >= 0.0 for v in phases.values())
        total = phases_total(response.metadata)
        # The spans cover server-side time only; the client adds wire and
        # scheduling overhead, so the decomposition must stay under the
        # wall and account for a meaningful part of it.
        assert total <= wall + 0.05
        assert total > 0.0

    def test_metrics_op_matches_prometheus_endpoint(self, served):
        """The wire op and the HTTP endpoint serve identical text."""
        server, client, inputs = served
        client.infer(InferenceRequest(inputs=inputs))
        payload = client.metrics()
        assert payload["schema_version"] == 1
        assert payload["replica_id"] == server.replica_id
        host, port = server.metrics_address
        scraped = (
            urllib.request.urlopen(f"http://{host}:{port}/metrics", timeout=10)
            .read()
            .decode()
        )
        # Counters could advance between the two reads; re-render the op's
        # snapshot and compare against a fresh scrape of the same instant.
        fresh = client.metrics()
        scraped = (
            urllib.request.urlopen(f"http://{host}:{port}/metrics", timeout=10)
            .read()
            .decode()
        )
        assert fresh["text"] == scraped
        assert "repro_server_requests_total" in scraped
        assert "repro_request_queue_wait_seconds_bucket" in scraped

    def test_info_counters_are_a_view_over_the_registry(self, served):
        """Legacy ``info`` stats equal the registry's counters exactly."""
        server, client, inputs = served
        client.infer(InferenceRequest(inputs=inputs))
        info = client.info(refresh=True)
        snapshot = server.metrics.snapshot()
        families = snapshot["families"]
        assert (
            info["stats"]["requests"]
            == families["repro_server_requests_total"]["series"][0]["value"]
        )
        assert (
            info["stats"]["batches"]
            == families["repro_server_batches_total"]["series"][0]["value"]
        )
        assert info["metrics_endpoint"] == "%s:%d" % server.metrics_address


class TestDrainSnapshot:
    def test_drain_ack_carries_final_counters(self):
        snn, config, inputs = _workload()
        session = ChipSession(snn, config=config, timesteps=4, seed=3)
        server = ChipServer(session, port=0, workload="drain-metrics").start()
        try:
            with PipelinedSession.connect(server.address, connections=1) as client:
                client.infer(InferenceRequest(inputs=inputs))
                ack = client.drain_server()
            assert ack["stats"]["requests"] == 1
            families = ack["metrics"]["families"]
            assert (
                families["repro_server_requests_total"]["series"][0]["value"] == 1
            )
        finally:
            server.close()

    def test_replica_manager_records_retired_stats(self):
        from repro.serve.distributed.executors import SessionSpec
        from repro.serve.fleet import ReplicaManager, ReplicaSpec

        snn, config, inputs = _workload()
        primary = ChipSession(snn, config=config, timesteps=4, seed=3)
        assert primary.encoder_state is not None
        spec = ReplicaSpec(
            session_spec=SessionSpec(
                snn=snn,
                config=primary.config,
                library=None,
                timesteps=4,
                backend="vectorized",
                seed=3,
                encoder_state=primary.encoder_state,
            ),
            workload="retire-test",
        )
        manager = ReplicaManager(spec, boot_timeout_s=120.0)
        replica = manager.start_replica()
        try:
            replica.client.infer(InferenceRequest(inputs=inputs))
            replica.client.infer(InferenceRequest(inputs=inputs))
        finally:
            manager.drain_replica(replica)
        assert replica.final_stats is not None
        assert replica.final_stats["requests"] == 2
        assert manager.retired_stats["requests"] == 2
        assert isinstance(replica.final_metrics, dict)
