"""Multi-endpoint inference gateway: capacity-weighted sharding, streaming merge.

:class:`InferenceGateway` fans one request batch out across several
endpoints — local :class:`~repro.serve.ChipSession`\\ s and
:class:`~repro.serve.ChipPool`\\ s, remote
:class:`~repro.serve.distributed.client.RemoteSession`\\ s /
:class:`~repro.serve.distributed.client.PipelinedSession`\\ s, anything with
the ``infer`` contract — and merges the shard responses into one exact
result.

Sharding is *capacity-weighted and load-aware*: an endpoint with capacity 3
(say, a remote pool with ``jobs=3``) receives three times the samples of a
capacity-1 session, via cumulative rounding so the contiguous shard sizes
always sum to the batch exactly — but the static weight is discounted by the
endpoint's observed backlog (gateway shards planned onto it and not yet
finished, plus the server's last-polled ``queue_depth``/``inflight``), so a
congested server receives less of each new batch instead of stretching its
queue further.  Server backlog is polled by a **background refresher
thread**, never on the submit path: ``submit()`` reads only cached hints, so
a wedged endpoint's ``info`` can never stall dispatch.  A shard that an
overloaded or draining server *sheds* (structured ``overloaded`` /
``draining`` error) is retried once on the least-loaded sibling endpoint,
and per-request deadlines propagate to every endpoint that understands
them.  Because every
shard carries its absolute ``sample_offset`` and every endpoint derives
spike trains from the same shard-stable
:class:`~repro.snn.encoding.EncoderState` seeding, the merged response is
result-identical to running the whole batch on any single endpoint — any
placement the load feedback picks yields the same numbers — provided the
endpoints serve the *same workload* (same SNN, config, seed, encoder and
timesteps), which is the operator's contract.

The gateway is **non-blocking**: :meth:`InferenceGateway.submit` dispatches
every shard concurrently and returns a :class:`concurrent.futures.Future`
immediately.  Shard completions stream into the merged result as they
arrive — the big per-sample arrays are written straight into their
preallocated slots — and the first shard failure resolves the future with
an error naming the endpoint instead of hanging the merge on the survivors.
Multiple batches may be in flight at once; a per-endpoint lock keeps each
endpoint serving one shard at a time (endpoints own their internal
concurrency), so successive batches pipeline across endpoints instead of
running lock-step.

Membership is **dynamic**: :meth:`InferenceGateway.add_endpoint`,
:meth:`~InferenceGateway.drain_endpoint` and
:meth:`~InferenceGateway.remove_endpoint` change the fleet while batches are
in flight.  A shard plan holds direct references to its endpoints, so
in-flight batches always complete against the endpoints they were planned
on; the next ``submit()`` sees the updated membership.  Draining endpoints
are skipped by the planner (and by shed-retry) but keep serving the shards
already placed on them — exactly the handshake a fleet controller needs to
retire a replica without failing work.

The merge is exact: predictions and spike counts concatenate per-sample,
event counters sum, and the energy report is the component-wise sum of the
shard reports (every component is linear in its counters and in the shard's
batch-duration, so the sum equals the full-batch report to floating-point
accumulation order).  Counters and energy are reduced in shard-plan order
regardless of completion order, so the merged numbers are deterministic.
"""

from __future__ import annotations

import inspect
import threading
import time
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.serve.distributed.client import RemoteServerError
from repro.serve.metrics import (
    PHASE_MERGE,
    MetricsRegistry,
    get_default_registry,
    merge_phases,
    record_phase,
)
from repro.serve.schema import (
    ERROR_DRAINING,
    ERROR_OVERLOADED,
    InferenceRequest,
    InferenceResponse,
)

__all__ = ["GatewayEndpoint", "InferenceGateway"]

#: Hard bound on one endpoint load poll.  Polls run on the background
#: refresher thread (never the submit path), but one wedged endpoint must
#: not starve the refresh of its healthy siblings for longer than this.
LOAD_POLL_TIMEOUT_S = 1.0

#: Structured server errors that make a shard eligible for one retry on a
#: sibling endpoint (the server refused the work without starting it).
_SHED_RETRY_CODES = frozenset({ERROR_OVERLOADED, ERROR_DRAINING})


@dataclass
class GatewayEndpoint:
    """One inference target behind the gateway, with its sharding weight.

    ``capacity`` defaults to the target's own ``capacity`` attribute (a
    :class:`RemoteSession` reports its server's worker count), then to its
    ``jobs`` attribute (a local pool), then to 1.  An explicit capacity must
    be positive — a zero-capacity endpoint could never receive a shard.

    The gateway additionally tracks per-endpoint *load*: how many of its own
    shards are currently on the endpoint (``inflight``) plus the endpoint's
    last-polled server backlog (``load_hint``), which together discount the
    static capacity during adaptive sharding.
    """

    target: object
    capacity: float | None = None
    name: str = ""
    #: Serialises this endpoint's shards across in-flight gateway batches.
    lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )
    #: Gateway shards planned onto this endpoint and not yet finished
    #: (queued behind the endpoint lock, executing, or mid-retry).
    inflight: int = field(default=0, init=False, repr=False, compare=False)
    #: Last polled remote backlog (server queue depth + inflight).
    load_hint: float = field(default=0.0, init=False, repr=False, compare=False)
    #: ``time.monotonic()`` of the last backlog poll.
    load_polled_at: float = field(default=0.0, init=False, repr=False, compare=False)
    #: Last polled ``info`` envelope (refresher-populated; what a fleet
    #: controller reads for shed counters and lifecycle state).
    info_hint: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: Draining (graceful retirement): the planner and shed-retry skip this
    #: endpoint, but shards already placed on it run to completion.
    draining: bool = field(default=False, init=False, repr=False, compare=False)
    #: Whether ``target.infer`` accepts a ``deadline_s`` keyword (remote
    #: sessions do; local sessions execute immediately, so there is nothing
    #: for a deadline to shed).
    supports_deadline: bool = field(
        default=False, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not hasattr(self.target, "infer"):
            raise TypeError(
                f"gateway endpoint target must provide infer(); got "
                f"{type(self.target).__name__}"
            )
        if self.capacity is None:
            self.capacity = float(
                getattr(self.target, "capacity", 0)
                or getattr(self.target, "jobs", 0)
                or 1
            )
        self.capacity = float(self.capacity)
        if self.capacity <= 0:
            raise ValueError(f"endpoint capacity must be > 0, got {self.capacity}")
        if not self.name:
            self.name = f"{type(self.target).__name__.lower()}"
        try:
            self.supports_deadline = (
                "deadline_s" in inspect.signature(self.target.infer).parameters
            )
        except (TypeError, ValueError):  # builtins / exotic callables
            self.supports_deadline = False


@dataclass
class _ShardPlan:
    endpoint: GatewayEndpoint
    start: int
    stop: int
    response: InferenceResponse | None = field(default=None, repr=False)
    #: Name of the endpoint originally planned, when the shard was shed
    #: there and re-ran on ``endpoint`` instead.
    retried_from: str | None = None


class _MergeState:
    """Accumulates streaming shard completions into one merged response."""

    def __init__(
        self,
        gateway: "InferenceGateway",
        request: InferenceRequest,
        plan: list[_ShardPlan],
        result: Future,
    ):
        self.gateway = gateway
        self.request = request
        self.plan = plan
        self.result = result
        self.lock = threading.Lock()
        self.remaining = len(plan)
        self.resolved = False
        self.predictions: np.ndarray | None = None
        self.spike_counts: np.ndarray | None = None
        self.shard_futures: list[Future] = []

    def shard_done(self, shard: _ShardPlan, future: Future) -> None:
        try:
            self._absorb(shard, future)
        except Exception as exc:  # noqa: BLE001 - the caller only sees the future
            # A merge failure (say, endpoints serving different output
            # widths) must surface on the result, never vanish into the
            # callback machinery and leave the caller hanging.
            with self.lock:
                self.resolved = True
            try:
                self.result.set_exception(exc)
            except InvalidStateError:
                pass

    def _absorb(self, shard: _ShardPlan, future: Future) -> None:
        if future.cancelled():
            return
        exc = future.exception()
        if exc is not None:
            # First failure wins: surface it now, cancel what has not
            # started, and let the in-flight survivors finish idle.
            with self.lock:
                if self.resolved:
                    return
                self.resolved = True
                siblings = [f for f in self.shard_futures if f is not future]
            # Outside the lock: cancelling a pending future runs its
            # done-callback (this method, for the sibling shard) inline on
            # this very thread, which must not find the lock held.
            for other in siblings:
                other.cancel()
            self.result.set_exception(
                RuntimeError(
                    f"gateway endpoint {shard.endpoint.name!r} failed on "
                    f"shard [{shard.start}:{shard.stop}): "
                    f"{type(exc).__name__}: {exc}"
                )
            )
            return
        response: InferenceResponse = future.result()
        with self.lock:
            if self.resolved:
                return
            shard.response = response
            # Stream the per-sample arrays straight into the merged slots.
            batch = self.request.batch_size
            if self.predictions is None:
                self.predictions = np.zeros(batch, dtype=response.predictions.dtype)
                self.spike_counts = np.zeros(
                    (batch, response.spike_counts.shape[1]),
                    dtype=response.spike_counts.dtype,
                )
            self.predictions[shard.start : shard.stop] = response.predictions
            self.spike_counts[shard.start : shard.stop] = response.spike_counts
            self.remaining -= 1
            if self.remaining > 0:
                return
            self.resolved = True
        self._finalise()

    def _finalise(self) -> None:
        merge_started = time.monotonic()
        plan, request = self.plan, self.request
        responses = [shard.response for shard in plan]
        # Deterministic reduction: counters and energy merge in plan order,
        # whatever order the shards completed in.
        counters = responses[0].counters
        energy = responses[0].energy
        for shard_response in responses[1:]:
            counters = counters.merge(shard_response.counters)
            energy = energy.merged_with(shard_response.energy)
        accuracy = None
        if request.labels is not None:
            accuracy = float(
                np.mean(self.predictions == np.asarray(request.labels, dtype=int))
            )
        backends = {r.backend for r in responses}
        metadata: dict[str, object] = {
            "gateway": self.gateway.name,
            "shards": [
                {
                    "endpoint": shard.endpoint.name,
                    "start": shard.start,
                    "stop": shard.stop,
                    "jobs": shard.response.jobs,
                    **(
                        {"retried_from": shard.retried_from}
                        if shard.retried_from is not None
                        else {}
                    ),
                }
                for shard in plan
            ],
        }
        # Shards ran concurrently, so the merged request's phase spans
        # follow the critical path: per phase, the slowest shard's span.
        # The gateway's own merge work is then added on top.
        merge_phases(metadata, [r.metadata for r in responses])
        merge_s = time.monotonic() - merge_started
        record_phase(metadata, PHASE_MERGE, merge_s)
        self.gateway._m_merge.observe(merge_s)
        self.result.set_result(
            InferenceResponse(
                predictions=self.predictions,
                spike_counts=self.spike_counts,
                accuracy=accuracy,
                counters=counters,
                energy=energy,
                timesteps=responses[0].timesteps,
                backend=backends.pop() if len(backends) == 1 else "mixed",
                batch_size=request.batch_size,
                jobs=int(sum(r.jobs for r in responses)),
                metadata=metadata,
            )
        )


class InferenceGateway:
    """Fan batches out across endpoints and merge the responses exactly.

    Parameters
    ----------
    adaptive:
        When True (default), sharding weights are the endpoints' *effective*
        capacities — the static weight discounted by the observed backlog
        (gateway shards already on the endpoint plus the server's polled
        queue depth): ``capacity / (1 + backlog)``.  Idle endpoints keep
        their static weights exactly, so a quiet gateway plans the same
        shards the static planner did.  Any shard split is result-identical
        (sharding is exact), so adaptivity changes placement, never numbers.
    load_poll_s:
        Interval of the background load refresher (seconds).  The refresher
        thread polls every endpoint's backlog on this cadence and caches
        the hints; ``submit()`` only ever reads the cache.  Only pipelined
        remotes (thread-safe ``info``, live ``queue_depth`` / ``inflight``
        fields) are polled, each poll bounded by
        :data:`LOAD_POLL_TIMEOUT_S`; other targets may export a ``load()``
        method returning their backlog from local state, and everything
        else contributes only the gateway's own planned-shard count.
        :meth:`refresh_load_hints` forces one synchronous sweep (what the
        refresher runs; handy in tests and controllers).
    """

    def __init__(
        self,
        endpoints: Sequence[GatewayEndpoint | object],
        *,
        name: str = "gateway",
        adaptive: bool = True,
        load_poll_s: float = 0.25,
        registry: MetricsRegistry | None = None,
    ):
        if not endpoints:
            raise ValueError("gateway needs at least one endpoint")
        if load_poll_s < 0:
            raise ValueError(f"load_poll_s must be >= 0, got {load_poll_s}")
        self.name = name
        self.adaptive = adaptive
        self.load_poll_s = load_poll_s
        self.metrics = registry if registry is not None else get_default_registry()
        self._m_requests = self.metrics.counter(
            "repro_gateway_requests_total", "batches submitted"
        )
        self._m_shards = self.metrics.counter(
            "repro_gateway_shards_total", "shards planned"
        )
        self._m_retries = self.metrics.counter(
            "repro_gateway_retries_total", "shards retried on a sibling"
        )
        self._m_merge = self.metrics.histogram(
            "repro_gateway_merge_seconds", "shard merge wall per request"
        )
        self._endpoints = [
            e if isinstance(e, GatewayEndpoint) else GatewayEndpoint(target=e)
            for e in endpoints
        ]
        # Guards membership changes (add/remove/drain) against concurrent
        # planners; planners work on snapshots, so holding it is brief.
        self._membership_lock = threading.Lock()
        # Guards the per-endpoint inflight counters and load hints (the
        # endpoint `lock` is held for whole inferences — too coarse here).
        self._load_lock = threading.Lock()
        # Sized for several batches in flight: shards of batch k+1 queue up
        # behind the per-endpoint locks while batch k still computes.
        self._threads = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(self._endpoints)),
            thread_name_prefix="gateway",
        )
        self._closed = False
        # Background load refresher: the ONLY place endpoint `info` is
        # polled, so submit() can never block on a wedged endpoint.  It
        # waits a full interval before the first sweep (an idle start plans
        # exactly like the static planner anyway), and close() joins it.
        self._refresh_stop = threading.Event()
        self._refresher: threading.Thread | None = None
        if self.adaptive:
            self._refresher = threading.Thread(
                target=self._refresh_loop,
                name=f"{self.name}-load-refresh",
                daemon=True,
            )
            self._refresher.start()

    # -- lifecycle ----------------------------------------------------------------

    def close(self, *, close_endpoints: bool = False) -> None:
        """Shut down the refresher + dispatch threads; optionally endpoints too."""
        if not self._closed:
            self._closed = True
            self._refresh_stop.set()
            if self._refresher is not None:
                self._refresher.join(timeout=10.0)
            self._threads.shutdown(wait=True)
        if close_endpoints:
            for endpoint in self.endpoints:
                closer = getattr(endpoint.target, "close", None)
                if callable(closer):
                    closer()

    def __enter__(self) -> "InferenceGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- membership ---------------------------------------------------------------

    @property
    def endpoints(self) -> list[GatewayEndpoint]:
        """Snapshot of the current membership (copy; mutation-safe)."""
        with self._membership_lock:
            return list(self._endpoints)

    def add_endpoint(
        self,
        target: GatewayEndpoint | object,
        *,
        capacity: float | None = None,
        name: str | None = None,
    ) -> GatewayEndpoint:
        """Join an endpoint to the fleet; the next ``submit()`` can use it.

        In-flight batches are untouched (their plans hold endpoint
        references).  Endpoint names must be unique — they are what
        :meth:`drain_endpoint` / :meth:`remove_endpoint` address.
        """
        endpoint = (
            target
            if isinstance(target, GatewayEndpoint)
            else GatewayEndpoint(target=target, capacity=capacity, name=name or "")
        )
        with self._membership_lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            if any(e.name == endpoint.name for e in self._endpoints):
                raise ValueError(
                    f"gateway already has an endpoint named {endpoint.name!r}"
                )
            self._endpoints.append(endpoint)
            # Keep ~2 dispatch threads available per endpoint.  stdlib pools
            # have no public resize; raising the cap is how they grow (the
            # attribute is stable across supported CPythons).
            self._threads._max_workers = max(
                self._threads._max_workers, 4, 2 * len(self._endpoints)
            )
        return endpoint

    def drain_endpoint(self, name: str) -> GatewayEndpoint:
        """Stop planning new shards onto ``name`` (in-flight work finishes).

        The scale-down handshake: drain here first, then drain the server
        (it answers everything already admitted), then
        :meth:`remove_endpoint` once it exits.
        """
        with self._membership_lock:
            for endpoint in self._endpoints:
                if endpoint.name == name:
                    endpoint.draining = True
                    return endpoint
        raise KeyError(f"gateway has no endpoint named {name!r}")

    def remove_endpoint(self, name: str) -> GatewayEndpoint:
        """Leave the fleet.  In-flight plans still complete against it."""
        with self._membership_lock:
            for index, endpoint in enumerate(self._endpoints):
                if endpoint.name == name:
                    del self._endpoints[index]
                    return endpoint
        raise KeyError(f"gateway has no endpoint named {name!r}")

    def _serving_endpoints(self) -> list[GatewayEndpoint]:
        """Endpoints new shards may be planned onto (non-draining)."""
        with self._membership_lock:
            return [e for e in self._endpoints if not e.draining]

    # -- load tracking ------------------------------------------------------------

    def _refresh_loop(self) -> None:
        # Clamp the busy-loop floor: load_poll_s=0 means "as fresh as
        # possible", not "spin a core".
        interval = max(self.load_poll_s, 0.05)
        while not self._refresh_stop.wait(interval):
            self.refresh_load_hints()

    def refresh_load_hints(self) -> None:
        """One synchronous backlog sweep over the current membership.

        This is the refresher thread's body, exposed so tests and fleet
        controllers can force a fresh sample instead of waiting out the
        poll interval.  ``submit()`` itself never calls it.
        """
        for endpoint in self.endpoints:
            self._poll_backlog(endpoint)

    def _poll_backlog(self, endpoint: GatewayEndpoint) -> float:
        """Refresh and return the endpoint's remote backlog hint.

        Two duck-typed sources, both optional: a ``load()`` method on the
        target (a local-state read), else a thread-safe ``info`` poll (only
        pipelined remotes expose both ``submit`` and ``info`` — a plain
        :class:`RemoteSession` serialises its one connection, so probing it
        concurrently with an in-flight shard would corrupt the framing).
        The info poll is bounded by :data:`LOAD_POLL_TIMEOUT_S` so one
        wedged endpoint cannot starve its siblings' refresh.  Poll failures
        (including timeouts) keep the previous hint: a dying endpoint's
        shard will fail loudly on its own.
        """
        target = endpoint.target
        hint: float | None = None
        info: dict | None = None
        loader = getattr(target, "load", None)
        if callable(loader):
            try:
                hint = float(loader())
            except Exception:  # noqa: BLE001 - load probes must never fail a plan
                hint = None
        elif hasattr(target, "submit") and callable(getattr(target, "info", None)):
            try:
                info = target.info(refresh=True, timeout=LOAD_POLL_TIMEOUT_S)
                hint = float(info.get("queue_depth", 0)) + float(
                    info.get("inflight", 0)
                )
            except Exception:  # noqa: BLE001 - load probes must never fail a plan
                hint = None
                info = None
        with self._load_lock:
            endpoint.load_polled_at = time.monotonic()
            if hint is not None:
                endpoint.load_hint = max(0.0, hint)
            if info is not None:
                endpoint.info_hint = dict(info)
            return endpoint.load_hint

    def _backlog_of(self, endpoint: GatewayEndpoint) -> float:
        """Observed backlog: planned-but-unfinished shards + cached hint.

        A pure cached read — no I/O — so every caller on the submit path
        (planning, shed-retry fallback selection) stays non-blocking.
        """
        with self._load_lock:
            return float(endpoint.inflight) + float(endpoint.load_hint)

    def endpoint_loads(self) -> dict[str, dict[str, object]]:
        """Per-endpoint load snapshot (cached; safe to call from anywhere).

        What a fleet controller samples: the gateway-side planned-shard
        count, the refresher's last server hint and ``info`` envelope, and
        the draining flag.
        """
        snapshot = self.endpoints
        loads: dict[str, dict[str, object]] = {}
        with self._load_lock:
            for endpoint in snapshot:
                loads[endpoint.name] = {
                    "backlog": float(endpoint.inflight) + float(endpoint.load_hint),
                    "inflight": int(endpoint.inflight),
                    "load_hint": float(endpoint.load_hint),
                    "draining": bool(endpoint.draining),
                    "info": dict(endpoint.info_hint),
                }
        return loads

    def _effective_capacity(self, endpoint: GatewayEndpoint) -> float:
        """Static weight discounted by backlog (equal to it when idle)."""
        if not self.adaptive:
            return float(endpoint.capacity)
        return float(endpoint.capacity) / (1.0 + self._backlog_of(endpoint))

    # -- sharding -----------------------------------------------------------------

    @property
    def total_capacity(self) -> float:
        """Sum of the static capacities of the serving (non-draining) fleet."""
        return float(sum(e.capacity for e in self._serving_endpoints()))

    def shard_plan(self, batch: int) -> list[_ShardPlan]:
        """Load-aware contiguous shards covering ``[0, batch)`` exactly.

        Weights are the endpoints' effective capacities (static capacity
        discounted by cached backlog; see the class docstring) — on idle
        endpoints this is exactly the historical static capacity plan.
        Cumulative rounding keeps the boundaries monotone and the final
        boundary equal to ``batch``; endpoints whose rounded share is empty
        (small batches, heavy backlog) are skipped rather than sent
        degenerate requests.  Draining endpoints never appear in a new
        plan.  A single-endpoint plan degenerates to one whole-batch shard
        — no splitting, just the dispatch/merge envelope.
        """
        endpoints = self._serving_endpoints()
        if not endpoints:
            raise RuntimeError(
                f"gateway {self.name!r} has no serving endpoints (every "
                f"endpoint was removed or is draining)"
            )
        if len(endpoints) == 1:
            weights = [1.0]
        else:
            weights = [self._effective_capacity(e) for e in endpoints]
        total = sum(weights)
        plan: list[_ShardPlan] = []
        start = 0
        cumulative = 0.0
        for endpoint, weight in zip(endpoints, weights):
            cumulative += weight
            stop = round(batch * cumulative / total)
            if stop > start:
                plan.append(_ShardPlan(endpoint=endpoint, start=start, stop=stop))
                start = stop
        return plan

    # -- inference ----------------------------------------------------------------

    def _infer_on(
        self,
        endpoint: GatewayEndpoint,
        sub_request: InferenceRequest,
        deadline_s: float | None,
    ) -> InferenceResponse:
        # One shard at a time per endpoint: endpoints own their internal
        # concurrency (pools shard further, pipelined remotes pipeline),
        # and most targets' infer() is not reentrant.  The inflight counter
        # is maintained by submit()/the shard done-callback (plan-time
        # accounting), not here, so queued-but-unstarted shards count too.
        with endpoint.lock:
            if deadline_s is not None and endpoint.supports_deadline:
                return endpoint.target.infer(sub_request, deadline_s=deadline_s)
            return endpoint.target.infer(sub_request)

    def _fallback_for(self, shed: GatewayEndpoint) -> GatewayEndpoint | None:
        """The least-backlogged *other* serving endpoint, or None when alone."""
        candidates = [e for e in self._serving_endpoints() if e is not shed]
        if not candidates:
            return None
        # Least backlog first; static capacity breaks ties (deterministic:
        # min() keeps the earliest endpoint on full ties).
        return min(candidates, key=lambda e: (self._backlog_of(e), -e.capacity))

    def _run_shard(
        self,
        shard: _ShardPlan,
        sub_request: InferenceRequest,
        deadline_s: float | None,
    ) -> InferenceResponse:
        try:
            return self._infer_on(shard.endpoint, sub_request, deadline_s)
        except RemoteServerError as exc:
            if exc.code not in _SHED_RETRY_CODES:
                raise
            # The endpoint refused this shard (overloaded, or draining
            # under a racing scale-down); one retry on the least-loaded
            # sibling (the shard is idempotent and carries its absolute
            # sample_offset, so re-running elsewhere is exact).
            fallback = self._fallback_for(shard.endpoint)
            if fallback is None:
                raise
            # Move the planned-shard accounting with the shard.
            with self._load_lock:
                shard.endpoint.inflight -= 1
                fallback.inflight += 1
            shard.retried_from = shard.endpoint.name
            shard.endpoint = fallback
            self._m_retries.inc()
            return self._infer_on(fallback, sub_request, deadline_s)

    def submit(
        self, request: InferenceRequest, *, deadline_s: float | None = None
    ) -> Future:
        """Dispatch one batch without blocking.

        Returns a future resolving to the merged
        :class:`InferenceResponse`.  All endpoint shards go out
        concurrently; completions merge as they stream in, and a shard
        failure resolves the future immediately with an error naming the
        endpoint.  A shard shed by an overloaded endpoint is retried once
        on the least-loaded sibling before failing.  ``deadline_s``
        propagates to every endpoint whose ``infer`` accepts it (remote
        sessions pass it to the server's admission control).  Safe to call
        again before earlier batches resolve — batches pipeline across the
        endpoints.
        """
        if self._closed:
            raise RuntimeError("gateway is closed")
        plan = self.shard_plan(request.batch_size)
        self._m_requests.inc()
        self._m_shards.inc(len(plan))
        result: Future = Future()
        state = _MergeState(self, request, plan, result)
        # Plan-time load accounting: the shard counts against its endpoint
        # from the moment it is planned (queued work is backlog too), and
        # the done-callback releases it however the shard ends — completed,
        # failed, or cancelled before it ever ran.
        with self._load_lock:
            for shard in plan:
                shard.endpoint.inflight += 1

        def _release(done: Future, shard: _ShardPlan) -> None:
            with self._load_lock:
                shard.endpoint.inflight -= 1

        for shard in plan:
            future = self._threads.submit(
                self._run_shard,
                shard,
                request.shard(shard.start, shard.stop),
                deadline_s,
            )
            state.shard_futures.append(future)
        for shard, future in zip(plan, state.shard_futures):
            future.add_done_callback(
                lambda done, shard=shard: _release(done, shard)
            )
            future.add_done_callback(
                lambda done, shard=shard: state.shard_done(shard, done)
            )
        return result

    def infer(
        self, request: InferenceRequest, *, deadline_s: float | None = None
    ) -> InferenceResponse:
        """Shard one request across the endpoints and merge the responses."""
        return self.submit(request, deadline_s=deadline_s).result()

    def infer_many(
        self,
        requests: list[InferenceRequest],
        *,
        deadline_s: float | None = None,
    ) -> list[InferenceResponse]:
        """Pipeline several batches through the endpoints at once.

        The first failure cancels every outstanding future instead of
        abandoning the remaining work in flight on the endpoints.
        """
        futures = [
            self.submit(request, deadline_s=deadline_s) for request in requests
        ]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                if not future.done():
                    future.cancel()
            raise
