"""Architectural event counters and their translation into energy.

Both the analytical RESPARC model and the structural chip simulator count the
same architectural events (crossbar reads, neuron integrations, buffer
accesses, switch hops, bus words, ...).  :class:`EventCounters` is the shared
container; :func:`counters_to_energy` converts a counter set into an
:class:`~repro.energy.model.EnergyReport` using the component library, which
guarantees the two models charge identical per-event energies.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.crossbar.energy import CrossbarEnergyModel
from repro.energy.components import ComponentLibrary
from repro.energy.model import RESPARC_GROUPS, EnergyReport

__all__ = ["EventCounters", "counters_to_energy"]


@dataclass
class EventCounters:
    """Dynamic event counts accumulated during one classification."""

    #: MCA evaluations, and the row-activations/column-senses they involved.
    crossbar_evaluations: float = 0.0
    crossbar_active_row_reads: float = 0.0
    crossbar_column_senses: float = 0.0
    #: Raw crossbar device energy (computed where geometry/utilisation is known).
    crossbar_device_energy_j: float = 0.0
    #: Neuron events.
    neuron_integrations: float = 0.0
    neuron_spikes: float = 0.0
    #: mPE peripheral events.
    ibuff_accesses: float = 0.0
    obuff_accesses: float = 0.0
    tbuff_accesses: float = 0.0
    local_control_events: float = 0.0
    ccu_transfers: float = 0.0
    #: NeuroCell switch network events.
    switch_hops: float = 0.0
    zero_checks: float = 0.0
    suppressed_packets: float = 0.0
    #: Global interconnect events.
    io_bus_words: float = 0.0
    global_control_events: float = 0.0
    input_sram_reads: float = 0.0
    input_sram_writes: float = 0.0

    def merge(self, other: "EventCounters") -> "EventCounters":
        """Return element-wise sum of two counter sets."""
        merged = EventCounters()
        for f in fields(EventCounters):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged

    def difference(self, baseline: "EventCounters") -> "EventCounters":
        """Return element-wise ``self - baseline`` (events since a snapshot)."""
        delta = EventCounters()
        for f in fields(EventCounters):
            setattr(delta, f.name, getattr(self, f.name) - getattr(baseline, f.name))
        return delta

    def as_dict(self) -> dict[str, float]:
        """Counter values keyed by name."""
        return {f.name: getattr(self, f.name) for f in fields(EventCounters)}

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "EventCounters":
        """Rebuild a counter set from :meth:`as_dict` output (JSON-safe).

        Unknown keys are rejected rather than dropped, so schema drift
        between serializer and deserializer fails loudly.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown counter fields: {sorted(unknown)}")
        return cls(**{name: float(value) for name, value in data.items()})

    @property
    def total_events(self) -> float:
        """Sum of all counters (sanity-check aid)."""
        return float(sum(self.as_dict().values()))


@dataclass(frozen=True)
class _StaticContext:
    """Static-power context needed to close the energy accounting."""

    active_mpes: int = 0
    active_switches: int = 0
    duration_s: float = 0.0
    sram_access_energy_j: float = 0.0
    sram_leakage_power_w: float = 0.0


def counters_to_energy(
    counters: EventCounters,
    library: ComponentLibrary,
    crossbar_energy: CrossbarEnergyModel,
    label: str,
    active_mpes: int = 0,
    active_switches: int = 0,
    duration_s: float = 0.0,
    sram_access_energy_j: float | None = None,
    sram_leakage_power_w: float = 0.0,
) -> EnergyReport:
    """Convert event counters into an energy report.

    Parameters
    ----------
    counters:
        Dynamic event counts for one classification.
    library:
        Per-event energy constants.
    crossbar_energy:
        Crossbar energy model (used for driver/sense energy of the counted
        row activations / column senses; the device energy itself is carried
        in ``counters.crossbar_device_energy_j``).
    label:
        Report label.
    active_mpes, active_switches, duration_s:
        Static-power context: how much hardware is powered and for how long.
    sram_access_energy_j:
        Energy per input-SRAM word access (defaults to the IO-bus word energy
        when not provided).
    sram_leakage_power_w:
        Leakage power of the input SRAM.
    """
    report = EnergyReport(label=label, group_map=RESPARC_GROUPS)
    report.add("crossbar_read", counters.crossbar_device_energy_j)
    report.add(
        "crossbar_read",
        counters.crossbar_active_row_reads * crossbar_energy.driver_energy_per_row_j
        + counters.crossbar_column_senses * crossbar_energy.sense_energy_per_column_j,
    )
    report.add("neuron_integration", counters.neuron_integrations * library.neuron_integration_energy_j)
    report.add("neuron_spiking", counters.neuron_spikes * library.neuron_spike_energy_j)
    report.add("buffer", (counters.ibuff_accesses + counters.obuff_accesses) * library.buffer_access_energy_j)
    report.add("target_buffer", counters.tbuff_accesses * library.tbuffer_access_energy_j)
    report.add("local_control", counters.local_control_events * library.local_control_energy_j)
    report.add("ccu_transfer", counters.ccu_transfers * library.ccu_transfer_energy_j)
    report.add("switch", counters.switch_hops * library.switch_hop_energy_j)
    report.add("zero_check", counters.zero_checks * library.zero_check_energy_j)
    report.add("io_bus", counters.io_bus_words * library.io_bus_energy_per_word_j)
    report.add("global_control", counters.global_control_events * library.global_control_energy_j)
    sram_energy = sram_access_energy_j if sram_access_energy_j is not None else library.io_bus_energy_per_word_j
    report.add(
        "input_sram_access",
        (counters.input_sram_reads + counters.input_sram_writes) * sram_energy,
    )
    report.add("input_sram_leakage", sram_leakage_power_w * duration_s)
    static_power = (
        active_mpes * library.mpe_static_power_w + active_switches * library.switch_static_power_w
    )
    report.add("static", static_power * duration_s)
    return report
