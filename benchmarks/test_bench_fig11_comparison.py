"""Fig. 11 — RESPARC vs CMOS energy benefit and speedup per classification.

Regenerates both panels of Fig. 11 (MLP and CNN families) on the full-size
benchmark networks and checks the paper's qualitative claims: RESPARC wins on
energy and latency for every benchmark, and MLP benefits exceed CNN benefits
by more than an order of magnitude.
"""

from __future__ import annotations

from repro.experiments import run_fig11


def test_fig11_energy_and_speedup(benchmark, context):
    """Regenerate Fig. 11 for all six benchmarks (MCA-64, 4-bit weights)."""
    result = benchmark.pedantic(lambda: run_fig11(context=context), iterations=1, rounds=1)
    print("\n" + result.as_table())

    for row in result.rows:
        assert row.energy_benefit > 1.0, row.benchmark
        assert row.speedup > 1.0, row.benchmark

    mlp_energy = result.mean_energy_benefit("MLP")
    cnn_energy = result.mean_energy_benefit("CNN")
    mlp_speedup = result.mean_speedup("MLP")
    cnn_speedup = result.mean_speedup("CNN")

    # Shape checks against the published bands (paper: MLP ~513x energy /
    # ~382x speedup; CNN ~12x energy / ~60x speedup).
    assert mlp_energy > 10 * cnn_energy
    assert mlp_speedup > 2 * cnn_speedup
    assert 100 <= mlp_energy <= 1500
    assert 5 <= cnn_energy <= 40
    assert 100 <= mlp_speedup <= 1000
    assert 10 <= cnn_speedup <= 150
