"""Fig. 14 — effect of memristor bit-discretisation.

Two sub-studies:

* **Fig. 14(a)** — normalised classification accuracy versus weight
  precision (1/2/4/8 bits) for the three datasets.  The paper's claim:
  accuracy improves with precision and saturates by 4 bits (which is why
  4-bit weights are used everywhere else).
* **Fig. 14(b)** — normalised energy versus weight precision for RESPARC and
  the CMOS baseline.  The paper's claim: RESPARC's energy is essentially
  independent of the precision (a memristor stores more levels in the same
  device), while the CMOS baseline's energy grows with precision (wider
  memories, buffers and compute units).

The accuracy study uses width-scaled benchmark networks trained on the
synthetic datasets so it runs in seconds; accuracies are reported normalised
to the 8-bit point, exactly as the paper plots them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crossbar import QuantizationSpec, quantize_network_weights
from repro.datasets import make_dataset
from repro.experiments.common import ExperimentSettings, WorkloadContext
from repro.snn import SpikingSimulator, Trainer, convert_to_snn
from repro.utils.rng import derive_rng
from repro.workloads import get_benchmark

__all__ = ["AccuracyPoint", "EnergyPoint", "Fig14Result", "run_fig14_accuracy", "run_fig14_energy", "run_fig14"]

#: Bit precisions swept by the paper.
BIT_SWEEP = (1, 2, 4, 8)


@dataclass(frozen=True)
class AccuracyPoint:
    """SNN accuracy at one weight precision."""

    dataset: str
    bits: int
    accuracy: float
    normalised_accuracy: float


@dataclass(frozen=True)
class EnergyPoint:
    """RESPARC / CMOS energy at one weight precision."""

    benchmark: str
    bits: int
    resparc_energy_j: float
    cmos_energy_j: float
    resparc_normalised: float
    cmos_normalised: float


@dataclass
class Fig14Result:
    """Accuracy and energy sweeps of the Fig. 14 reproduction."""

    accuracy_points: list[AccuracyPoint] = field(default_factory=list)
    energy_points: list[EnergyPoint] = field(default_factory=list)

    def accuracy_for(self, dataset: str) -> dict[int, AccuracyPoint]:
        """Accuracy points of one dataset keyed by bit precision."""
        return {p.bits: p for p in self.accuracy_points if p.dataset == dataset}

    def energy_for(self, benchmark: str) -> dict[int, EnergyPoint]:
        """Energy points of one benchmark keyed by bit precision."""
        return {p.bits: p for p in self.energy_points if p.benchmark == benchmark}

    def as_table(self) -> str:
        """Render both sweeps as tables."""
        lines = ["Fig. 14(a) reproduction — normalised accuracy vs bit precision"]
        for point in self.accuracy_points:
            lines.append(
                f"  {point.dataset:<10} {point.bits:>2} bits  acc={point.accuracy:.3f}  "
                f"norm={point.normalised_accuracy:.3f}"
            )
        lines.append("Fig. 14(b) reproduction — normalised energy vs bit precision")
        for point in self.energy_points:
            lines.append(
                f"  {point.benchmark:<12} {point.bits:>2} bits  "
                f"RESPARC={point.resparc_normalised:.3f}  CMOS={point.cmos_normalised:.3f}"
            )
        return "\n".join(lines)


def run_fig14_accuracy(
    datasets: tuple[str, ...] = ("mnist", "svhn", "cifar10"),
    bits: tuple[int, ...] = BIT_SWEEP,
    network_scale: float = 0.25,
    train_epochs: int = 4,
    timesteps: int = 24,
    samples: int = 48,
    seed: int = 7,
) -> list[AccuracyPoint]:
    """Accuracy-vs-precision sweep on width-scaled MLP benchmarks.

    Width-scaled networks keep the study fast while preserving the trend the
    paper reports (and the paper itself only shows normalised accuracy).
    """
    points: list[AccuracyPoint] = []
    for dataset_name in datasets:
        spec = get_benchmark(f"{dataset_name}-mlp")
        dataset = make_dataset(dataset_name, train_samples=240, test_samples=samples, seed=seed)
        network = spec.build(scale=network_scale, seed=seed)
        train_inputs = dataset.train_images.reshape(dataset.train_images.shape[0], -1)
        test_inputs = dataset.test_images.reshape(dataset.test_images.shape[0], -1)
        trainer = Trainer(
            learning_rate=0.005,
            optimizer="adam",
            batch_size=32,
            rng=derive_rng(seed, "fig14-train", dataset_name),
        )
        trainer.fit(network, train_inputs, dataset.train_labels, epochs=train_epochs)

        accuracies: dict[int, float] = {}
        for bit in bits:
            quantised = quantize_network_weights(network, QuantizationSpec(bits=bit))
            snn = convert_to_snn(quantised, train_inputs[:32])
            simulator = SpikingSimulator(
                timesteps=timesteps, rng=derive_rng(seed, "fig14-sim", dataset_name, bit)
            )
            result = simulator.run(snn, test_inputs[:samples], dataset.test_labels[:samples])
            accuracies[bit] = float(result.accuracy or 0.0)
        reference = max(accuracies[max(bits)], 1e-9)
        for bit in bits:
            points.append(
                AccuracyPoint(
                    dataset=dataset_name,
                    bits=bit,
                    accuracy=accuracies[bit],
                    normalised_accuracy=accuracies[bit] / reference,
                )
            )
    return points


def run_fig14_energy(
    settings: ExperimentSettings | None = None,
    context: WorkloadContext | None = None,
    benchmark: str = "mnist-mlp",
    bits: tuple[int, ...] = BIT_SWEEP,
    crossbar_size: int = 64,
) -> list[EnergyPoint]:
    """Energy-vs-precision sweep for RESPARC and the CMOS baseline."""
    context = context or WorkloadContext(settings or ExperimentSettings())
    workload = context.prepare(benchmark)
    raw: dict[int, tuple[float, float]] = {}
    for bit in bits:
        resparc = context.evaluate_resparc(workload, crossbar_size=crossbar_size, weight_bits=bit)
        cmos = context.evaluate_cmos(workload, weight_bits=bit)
        raw[bit] = (resparc.energy_per_classification_j, cmos.energy_per_classification_j)
    reference_bits = 4 if 4 in raw else bits[0]
    resparc_ref, cmos_ref = raw[reference_bits]
    return [
        EnergyPoint(
            benchmark=benchmark,
            bits=bit,
            resparc_energy_j=resparc_j,
            cmos_energy_j=cmos_j,
            resparc_normalised=resparc_j / resparc_ref,
            cmos_normalised=cmos_j / cmos_ref,
        )
        for bit, (resparc_j, cmos_j) in raw.items()
    ]


def run_fig14(
    settings: ExperimentSettings | None = None,
    context: WorkloadContext | None = None,
    include_accuracy: bool = True,
) -> Fig14Result:
    """Run both halves of the Fig. 14 reproduction."""
    result = Fig14Result()
    if include_accuracy:
        result.accuracy_points = run_fig14_accuracy()
    result.energy_points = run_fig14_energy(settings=settings, context=context)
    return result
