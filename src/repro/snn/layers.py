"""Neural-network layers.

The layer classes double as (a) a small NumPy deep-learning framework used to
train the benchmark networks offline (the paper trains its SNNs offline with
a supervised algorithm and only evaluates inference), and (b) the structural
description that the RESPARC mapping compiler consumes (fan-in, connectivity
kind, weight tensors).

Layout conventions
------------------
* Dense activations: ``(batch, features)``; weights ``(n_in, n_out)``.
* Convolutional activations: ``(batch, height, width, channels)`` (NHWC);
  weights ``(kh, kw, c_in, c_out)``, stride 1, padding ``"valid"`` or
  ``"same"``.
* All layers implement ``forward`` and ``backward`` (for training) and
  ``linear`` (the weighted-sum-only transform used by the spiking
  simulator, i.e. the forward pass without the nonlinearity).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "AvgPool2D",
    "Flatten",
    "im2col",
    "col2im",
]


# ---------------------------------------------------------------------------
# im2col helpers (stride-1 convolutions)
# ---------------------------------------------------------------------------


def _pad_amounts(kernel: int, padding: str) -> tuple[int, int]:
    """Return (before, after) zero-padding for one spatial axis."""
    if padding == "valid":
        return 0, 0
    if padding == "same":
        total = kernel - 1
        return total // 2, total - total // 2
    raise ValueError(f"padding must be 'valid' or 'same', got {padding!r}")


def im2col(x: np.ndarray, kh: int, kw: int, padding: str) -> tuple[np.ndarray, tuple[int, int]]:
    """Rearrange image patches into rows for matrix-multiply convolution.

    Parameters
    ----------
    x:
        Input of shape ``(batch, height, width, channels)``.
    kh, kw:
        Kernel height and width.
    padding:
        ``"valid"`` or ``"same"`` (stride is always 1).

    Returns
    -------
    (cols, (out_h, out_w))
        ``cols`` has shape ``(batch * out_h * out_w, kh * kw * channels)``.
    """
    batch, height, width, channels = x.shape
    ph = _pad_amounts(kh, padding)
    pw = _pad_amounts(kw, padding)
    padded = np.pad(x, ((0, 0), ph, pw, (0, 0)))
    out_h = padded.shape[1] - kh + 1
    out_w = padded.shape[2] - kw + 1
    strides = padded.strides
    view = np.lib.stride_tricks.as_strided(
        padded,
        shape=(batch, out_h, out_w, kh, kw, channels),
        strides=(strides[0], strides[1], strides[2], strides[1], strides[2], strides[3]),
        writeable=False,
    )
    cols = view.reshape(batch * out_h * out_w, kh * kw * channels)
    return cols, (out_h, out_w)


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    padding: str,
) -> np.ndarray:
    """Inverse of :func:`im2col` for gradient propagation (scatter-add)."""
    batch, height, width, channels = input_shape
    ph = _pad_amounts(kh, padding)
    pw = _pad_amounts(kw, padding)
    padded_h = height + ph[0] + ph[1]
    padded_w = width + pw[0] + pw[1]
    out_h = padded_h - kh + 1
    out_w = padded_w - kw + 1
    grad_padded = np.zeros((batch, padded_h, padded_w, channels))
    cols = cols.reshape(batch, out_h, out_w, kh, kw, channels)
    for i in range(kh):
        for j in range(kw):
            grad_padded[:, i : i + out_h, j : j + out_w, :] += cols[:, :, :, i, j, :]
    return grad_padded[:, ph[0] : ph[0] + height, pw[0] : pw[0] + width, :]


# ---------------------------------------------------------------------------
# Layer base class
# ---------------------------------------------------------------------------


def _apply_activation(z: np.ndarray, activation: str | None) -> np.ndarray:
    if activation is None or activation == "linear":
        return z
    if activation == "relu":
        return np.maximum(z, 0.0)
    raise ValueError(f"unsupported activation {activation!r}")


def _activation_gradient(z: np.ndarray, activation: str | None) -> np.ndarray:
    if activation is None or activation == "linear":
        return np.ones_like(z)
    if activation == "relu":
        return (z > 0).astype(float)
    raise ValueError(f"unsupported activation {activation!r}")


class Layer(ABC):
    """Base class for all layers."""

    name: str

    @abstractmethod
    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Shape of the per-sample output given the per-sample input shape."""

    @abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Full forward pass (weighted sum + activation where applicable)."""

    @abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and cache parameter gradients."""

    def linear(self, x: np.ndarray) -> np.ndarray:
        """Weighted-sum-only transform (defaults to :meth:`forward`)."""
        return self.forward(x)

    # Parameter access — layers without parameters return empty dicts.

    def parameters(self) -> dict[str, np.ndarray]:
        """Trainable parameters by name."""
        return {}

    def gradients(self) -> dict[str, np.ndarray]:
        """Gradients of the trainable parameters (after ``backward``)."""
        return {}

    @property
    def parameter_count(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(p.size for p in self.parameters().values()))


# ---------------------------------------------------------------------------
# Dense
# ---------------------------------------------------------------------------


class Dense(Layer):
    """Fully connected layer: ``y = activation(x W + b)``.

    Parameters
    ----------
    n_in, n_out:
        Input and output feature counts.
    activation:
        ``"relu"`` (default, the activation used for ANN→SNN conversion) or
        ``None`` for a linear output layer.
    use_bias:
        Biases are supported for training but are typically folded away (or
        disabled) before mapping onto crossbars.
    rng:
        Generator used for He-uniform weight initialisation.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        activation: str | None = "relu",
        use_bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ):
        if n_in <= 0 or n_out <= 0:
            raise ValueError(f"n_in and n_out must be positive, got {n_in}, {n_out}")
        rng = rng or np.random.default_rng(0)
        limit = float(np.sqrt(6.0 / n_in))
        self.n_in = n_in
        self.n_out = n_out
        self.activation = activation
        self.use_bias = use_bias
        self.weights = rng.uniform(-limit, limit, size=(n_in, n_out))
        self.bias = np.zeros(n_out) if use_bias else None
        self.name = name or f"dense_{n_in}x{n_out}"
        self._cache: dict[str, np.ndarray] = {}
        self._grads: dict[str, np.ndarray] = {}

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        flat = int(np.prod(input_shape))
        if flat != self.n_in:
            raise ValueError(
                f"{self.name}: input shape {input_shape} has {flat} features, expected {self.n_in}"
            )
        return (self.n_out,)

    def _preactivation(self, x: np.ndarray) -> np.ndarray:
        x2d = x.reshape(x.shape[0], -1)
        z = x2d @ self.weights
        if self.bias is not None:
            z = z + self.bias
        return z

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        z = self._preactivation(x)
        if training:
            self._cache = {"x": x.reshape(x.shape[0], -1), "z": z}
        return _apply_activation(z, self.activation)

    def linear(self, x: np.ndarray) -> np.ndarray:
        """Weighted sums without bias or activation (crossbar semantics)."""
        return x.reshape(x.shape[0], -1) @ self.weights

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        x, z = self._cache["x"], self._cache["z"]
        grad_z = grad_output * _activation_gradient(z, self.activation)
        self._grads = {"weights": x.T @ grad_z}
        if self.bias is not None:
            self._grads["bias"] = grad_z.sum(axis=0)
        return grad_z @ self.weights.T

    def parameters(self) -> dict[str, np.ndarray]:
        params = {"weights": self.weights}
        if self.bias is not None:
            params["bias"] = self.bias
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        return self._grads


# ---------------------------------------------------------------------------
# Conv2D
# ---------------------------------------------------------------------------


class Conv2D(Layer):
    """2-D convolution (stride 1) with NHWC layout.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel side length.
    padding:
        ``"valid"`` (default) or ``"same"``.
    in_channel_limit:
        When set, each output channel connects to only this many input
        channels (a LeNet-style sparse connection table, assigned round
        robin).  This is how the paper-scale CNN benchmarks keep their
        per-neuron fan-in and synapse counts at the published values.
        ``None`` (default) connects every output channel to every input
        channel.
    activation, use_bias, rng, name:
        As for :class:`Dense`.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 5,
        padding: str = "valid",
        in_channel_limit: int | None = None,
        activation: str | None = "relu",
        use_bias: bool = True,
        rng: np.random.Generator | None = None,
        name: str | None = None,
    ):
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError("in_channels, out_channels and kernel_size must be positive")
        _pad_amounts(kernel_size, padding)  # validates padding
        if in_channel_limit is not None and not 1 <= in_channel_limit <= in_channels:
            raise ValueError(
                f"in_channel_limit must be in [1, {in_channels}], got {in_channel_limit}"
            )
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.padding = padding
        self.in_channel_limit = in_channel_limit
        self.activation = activation
        self.use_bias = use_bias
        self.connection_mask = self._build_connection_mask()
        limit = float(np.sqrt(6.0 / self.fan_in))
        self.weights = rng.uniform(
            -limit, limit, size=(kernel_size, kernel_size, in_channels, out_channels)
        )
        self.weights *= self.connection_mask
        self.bias = np.zeros(out_channels) if use_bias else None
        self.name = name or f"conv_{kernel_size}x{kernel_size}x{in_channels}to{out_channels}"
        self._cache: dict[str, object] = {}
        self._grads: dict[str, np.ndarray] = {}

    def _build_connection_mask(self) -> np.ndarray:
        """Boolean (as float) mask selecting which input channels feed each output."""
        mask = np.ones((self.kernel_size, self.kernel_size, self.in_channels, self.out_channels))
        if self.in_channel_limit is None or self.in_channel_limit == self.in_channels:
            return mask
        mask[:] = 0.0
        for out_ch in range(self.out_channels):
            selected = [
                (out_ch + offset) % self.in_channels for offset in range(self.in_channel_limit)
            ]
            mask[:, :, selected, out_ch] = 1.0
        return mask

    @property
    def connected_in_channels(self) -> int:
        """Input channels each output channel actually connects to."""
        return self.in_channel_limit or self.in_channels

    @property
    def fan_in(self) -> int:
        """Inputs per output neuron."""
        return self.kernel_size * self.kernel_size * self.connected_in_channels

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(
                f"{self.name}: expects (height, width, channels) input, got {input_shape}"
            )
        height, width, channels = input_shape
        if channels != self.in_channels:
            raise ValueError(
                f"{self.name}: input has {channels} channels, expected {self.in_channels}"
            )
        ph = sum(_pad_amounts(self.kernel_size, self.padding))
        out_h = height + ph - self.kernel_size + 1
        out_w = width + ph - self.kernel_size + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(f"{self.name}: input {input_shape} too small for the kernel")
        return (out_h, out_w, self.out_channels)

    def _forward_impl(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray, tuple[int, int]]:
        cols, (out_h, out_w) = im2col(x, self.kernel_size, self.kernel_size, self.padding)
        w_flat = self.weights.reshape(-1, self.out_channels)
        z = cols @ w_flat
        if self.bias is not None:
            z = z + self.bias
        z = z.reshape(x.shape[0], out_h, out_w, self.out_channels)
        return z, cols, (out_h, out_w)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        z, cols, _ = self._forward_impl(x)
        if training:
            self._cache = {"cols": cols, "z": z, "x_shape": x.shape}
        return _apply_activation(z, self.activation)

    def linear(self, x: np.ndarray) -> np.ndarray:
        """Weighted sums without bias or activation (crossbar semantics)."""
        cols, (out_h, out_w) = im2col(x, self.kernel_size, self.kernel_size, self.padding)
        z = cols @ self.weights.reshape(-1, self.out_channels)
        return z.reshape(x.shape[0], out_h, out_w, self.out_channels)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        cols: np.ndarray = self._cache["cols"]  # type: ignore[assignment]
        z: np.ndarray = self._cache["z"]  # type: ignore[assignment]
        x_shape: tuple[int, int, int, int] = self._cache["x_shape"]  # type: ignore[assignment]
        grad_z = grad_output * _activation_gradient(z, self.activation)
        grad_z_flat = grad_z.reshape(-1, self.out_channels)
        self._grads = {
            # Masked connections stay at exactly zero throughout training.
            "weights": (cols.T @ grad_z_flat).reshape(self.weights.shape) * self.connection_mask,
        }
        if self.bias is not None:
            self._grads["bias"] = grad_z_flat.sum(axis=0)
        grad_cols = grad_z_flat @ self.weights.reshape(-1, self.out_channels).T
        return col2im(grad_cols, x_shape, self.kernel_size, self.kernel_size, self.padding)

    def parameters(self) -> dict[str, np.ndarray]:
        params = {"weights": self.weights}
        if self.bias is not None:
            params["bias"] = self.bias
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        return self._grads

    @property
    def parameter_count(self) -> int:
        """Trainable scalars, excluding masked-out connections."""
        count = int(self.connection_mask.sum())
        if self.bias is not None:
            count += self.bias.size
        return count


# ---------------------------------------------------------------------------
# AvgPool2D
# ---------------------------------------------------------------------------


class AvgPool2D(Layer):
    """Non-overlapping average pooling (the sub-sampling layer of the paper's CNNs).

    Average pooling is the standard choice for converted SNNs because the
    averaging can be realised with fixed positive weights (``1/k^2``) on a
    crossbar, unlike max pooling.
    """

    def __init__(self, pool_size: int = 2, name: str | None = None):
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = pool_size
        self.name = name or f"avgpool_{pool_size}"
        self._cache: dict[str, object] = {}

    @property
    def fan_in(self) -> int:
        """Inputs per output neuron."""
        return self.pool_size * self.pool_size

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(f"{self.name}: expects (height, width, channels), got {input_shape}")
        height, width, channels = input_shape
        if height % self.pool_size or width % self.pool_size:
            raise ValueError(
                f"{self.name}: spatial dims {height}x{width} not divisible by {self.pool_size}"
            )
        return (height // self.pool_size, width // self.pool_size, channels)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        batch, height, width, channels = x.shape
        k = self.pool_size
        out = x.reshape(batch, height // k, k, width // k, k, channels).mean(axis=(2, 4))
        if training:
            self._cache = {"x_shape": x.shape}
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        x_shape: tuple[int, int, int, int] = self._cache["x_shape"]  # type: ignore[assignment]
        k = self.pool_size
        grad = grad_output / (k * k)
        grad = np.repeat(np.repeat(grad, k, axis=1), k, axis=2)
        return grad.reshape(x_shape)


# ---------------------------------------------------------------------------
# Flatten
# ---------------------------------------------------------------------------


class Flatten(Layer):
    """Flattens spatial activations into a feature vector (no parameters)."""

    def __init__(self, name: str | None = None):
        self.name = name or "flatten"
        self._cache: dict[str, object] = {}

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._cache = {"x_shape": x.shape}
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError(f"{self.name}: backward called before a training forward pass")
        x_shape: tuple[int, ...] = self._cache["x_shape"]  # type: ignore[assignment]
        return grad_output.reshape(x_shape)
