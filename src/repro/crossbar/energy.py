"""Crossbar energy and latency model.

The crossbar itself is the cheapest part of the system: each read dissipates
``V^2 * G * t`` in every device along the active rows.  What makes or breaks
the architecture is how often crossbars fire and how much peripheral energy
each firing drags along — which is accounted elsewhere
(:mod:`repro.energy.components`).  This module provides the per-read energy
and latency of one MCA evaluation given the programmed conductances and the
input activity, which both the detailed :class:`repro.crossbar.mca.CrossbarArray`
and the analytical architecture model use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crossbar.device import DeviceParameters

__all__ = ["CrossbarEnergyModel", "CrossbarReadCost"]


@dataclass(frozen=True)
class CrossbarReadCost:
    """Energy and latency of one crossbar evaluation."""

    energy_j: float
    latency_s: float
    active_rows: int
    active_columns: int


@dataclass
class CrossbarEnergyModel:
    """Computes the energy/latency of crossbar read operations.

    Parameters
    ----------
    device:
        The device parameters (voltage, pulse width, conductance range).
    driver_energy_per_row_j:
        Energy of driving one active row (word-line driver + DAC-free spike
        driver).  RESPARC avoids full DACs because SNN inputs are binary
        spikes; the driver is a simple pulse driver.
    sense_energy_per_column_j:
        Energy of the per-column current integration into the neuron sample
        capacitor.  RESPARC avoids explicit ADCs — integration happens in the
        analog neuron — so this is small compared to ISAAC/PRIME-style ADCs.
    unselected_bias_fraction:
        Fraction of the read voltage seen by devices on unselected (silent)
        rows in the half-select biasing scheme.  Those devices dissipate
        ``(fraction * V)^2 * G * t`` per read, which is the physical cost of
        allocating crossbar area that is not utilised — the effect behind the
        paper's observation that very large MCAs hurt sparsely connected
        (CNN) layers.
    """

    device: DeviceParameters = field(default_factory=DeviceParameters)
    driver_energy_per_row_j: float = 15e-15
    sense_energy_per_column_j: float = 30e-15
    unselected_bias_fraction: float = 0.45

    def mean_device_conductance_s(self, utilisation: float = 1.0) -> float:
        """Mean device conductance assuming uniformly distributed weights.

        Unused (unprogrammed) devices sit at ``g_off``; ``utilisation`` is
        the fraction of cross-points holding real synapses.
        """
        g_mid = 0.5 * (self.device.g_on_s + self.device.g_off_s)
        return utilisation * g_mid + (1.0 - utilisation) * self.device.g_off_s

    def read_cost(
        self,
        rows: int,
        columns: int,
        active_rows: int | None = None,
        utilisation: float = 1.0,
        differential: bool = True,
    ) -> CrossbarReadCost:
        """Energy/latency of one evaluation of an ``rows x columns`` crossbar.

        Parameters
        ----------
        rows, columns:
            Physical crossbar geometry.
        active_rows:
            Number of rows receiving a spike this evaluation (defaults to all
            rows).  Event-driven operation means inactive rows draw no read
            energy.
        utilisation:
            Fraction of cross-points that hold mapped synapses; the rest sit
            at ``g_off`` but still dissipate leakage when their row fires.
        differential:
            When true, each logical column is a positive/negative device pair
            and device energy doubles.
        """
        if rows <= 0 or columns <= 0:
            raise ValueError("rows and columns must be positive")
        if active_rows is None:
            active_rows = rows
        active_rows = int(np.clip(active_rows, 0, rows))
        if not 0.0 <= utilisation <= 1.0:
            raise ValueError(f"utilisation must be in [0, 1], got {utilisation}")

        pair_factor = 2.0 if differential else 1.0
        g_mean = self.mean_device_conductance_s(utilisation)
        device_energy = (
            active_rows
            * columns
            * pair_factor
            * g_mean
            * self.device.read_voltage_v**2
            * self.device.read_pulse_s
        )
        # Half-select disturbance: devices on silent rows still see a fraction
        # of the read voltage and leak during the pulse.
        unselected_energy = (
            (rows - active_rows)
            * columns
            * pair_factor
            * g_mean
            * (self.unselected_bias_fraction * self.device.read_voltage_v) ** 2
            * self.device.read_pulse_s
        )
        driver_energy = active_rows * self.driver_energy_per_row_j
        sense_energy = columns * self.sense_energy_per_column_j
        energy = device_energy + unselected_energy + driver_energy + sense_energy
        return CrossbarReadCost(
            energy_j=float(energy),
            latency_s=self.device.read_pulse_s,
            active_rows=active_rows,
            active_columns=columns,
        )

    def idle_leakage_w(self, rows: int, columns: int) -> float:
        """Standby leakage of an idle crossbar (W).

        Memristive crossbars are non-volatile and draw essentially no standby
        power; a tiny per-device figure is kept so the number is not exactly
        zero in reports.
        """
        return rows * columns * 1e-12
