"""Fig. 11 — energy savings and performance speedup of RESPARC vs CMOS.

The paper's headline result: per-classification energy benefits and speedups
of RESPARC (64x64 MCAs, 4-bit weights) over the optimised CMOS baseline for
the six benchmarks, reported separately for CNNs (Fig. 11 a, c) and MLPs
(Fig. 11 b, d).  The paper's numbers: CNNs see 10x-15x energy benefits at
33x-95x speedup; MLPs see 331x-659x energy benefits at 360x-415x speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import ExperimentSettings, WorkloadContext
from repro.workloads import list_benchmarks

__all__ = ["Fig11Row", "Fig11Result", "run_fig11", "PAPER_FIG11"]

#: Published energy-benefit / speedup values (Fig. 11), for comparison tables.
PAPER_FIG11: dict[str, dict[str, float]] = {
    "mnist-cnn": {"energy_benefit": 15.0, "speedup": 33.0},
    "svhn-cnn": {"energy_benefit": 10.0, "speedup": 52.0},
    "cifar10-cnn": {"energy_benefit": 11.0, "speedup": 95.0},
    "mnist-mlp": {"energy_benefit": 331.0, "speedup": 360.0},
    "svhn-mlp": {"energy_benefit": 659.0, "speedup": 371.0},
    "cifar10-mlp": {"energy_benefit": 549.0, "speedup": 415.0},
}


@dataclass(frozen=True)
class Fig11Row:
    """One benchmark's comparison row."""

    benchmark: str
    connectivity: str
    cmos_energy_j: float
    resparc_energy_j: float
    cmos_latency_s: float
    resparc_latency_s: float
    paper_energy_benefit: float
    paper_speedup: float
    #: Per-classification energy measured on the executed chip model (MLPs
    #: only, when chip validation is requested) and the backend that ran it.
    chip_energy_j: float | None = None
    chip_backend: str | None = None

    @property
    def energy_benefit(self) -> float:
        """Measured CMOS / RESPARC energy ratio."""
        return self.cmos_energy_j / self.resparc_energy_j

    @property
    def speedup(self) -> float:
        """Measured CMOS / RESPARC latency ratio."""
        return self.cmos_latency_s / self.resparc_latency_s


@dataclass
class Fig11Result:
    """All rows of the Fig. 11 reproduction."""

    crossbar_size: int
    rows: list[Fig11Row] = field(default_factory=list)

    def rows_for(self, connectivity: str) -> list[Fig11Row]:
        """Rows of one topology family ("MLP" or "CNN")."""
        return [r for r in self.rows if r.connectivity == connectivity.upper()]

    def mean_energy_benefit(self, connectivity: str) -> float:
        """Average energy benefit over a topology family (NaN when empty)."""
        rows = self.rows_for(connectivity)
        if not rows:
            return float("nan")
        return sum(r.energy_benefit for r in rows) / len(rows)

    def mean_speedup(self, connectivity: str) -> float:
        """Average speedup over a topology family (NaN when empty)."""
        rows = self.rows_for(connectivity)
        if not rows:
            return float("nan")
        return sum(r.speedup for r in rows) / len(rows)

    def as_table(self) -> str:
        """Render the comparison as a fixed-width table."""
        lines = [
            f"Fig. 11 reproduction (MCA size {self.crossbar_size}, 4-bit weights)",
            f"  {'benchmark':<14} {'type':<5} {'energy benefit':>15} {'paper':>8} "
            f"{'speedup':>10} {'paper':>8}",
        ]
        for row in self.rows:
            lines.append(
                f"  {row.benchmark:<14} {row.connectivity:<5} {row.energy_benefit:>14.1f}x "
                f"{row.paper_energy_benefit:>7.0f}x {row.speedup:>9.1f}x "
                f"{row.paper_speedup:>7.0f}x"
            )
        if self.rows_for("MLP"):
            lines.append(
                f"  mean MLP: {self.mean_energy_benefit('MLP'):.0f}x energy, "
                f"{self.mean_speedup('MLP'):.0f}x speedup (paper ~513x / ~382x)"
            )
        if self.rows_for("CNN"):
            lines.append(
                f"  mean CNN: {self.mean_energy_benefit('CNN'):.0f}x energy, "
                f"{self.mean_speedup('CNN'):.0f}x speedup (paper ~12x / ~60x)"
            )
        validated = [r for r in self.rows if r.chip_energy_j is not None]
        if validated:
            lines.append("  chip cross-validation (executed chip / analytical model):")
            for row in validated:
                ratio = row.chip_energy_j / row.resparc_energy_j
                lines.append(
                    f"    {row.benchmark:<14} {row.chip_backend:<10} "
                    f"{row.chip_energy_j:>10.3e} J  ({ratio:>6.2f}x model)"
                )
        return "\n".join(lines)


def run_fig11(
    settings: ExperimentSettings | None = None,
    context: WorkloadContext | None = None,
    crossbar_size: int = 64,
    benchmarks: list[str] | None = None,
    validate_chip: bool = False,
    jobs: int | None = None,
) -> Fig11Result:
    """Reproduce Fig. 11 for the requested benchmarks (default: all six).

    With ``validate_chip`` the MLP rows are additionally executed on the
    chip simulator (backend chosen by ``settings.chip_backend``) and the
    measured per-classification energy is reported next to the analytical
    number — the cross-model check the structural hierarchy exists for.
    ``jobs > 1`` shards each chip-validation batch across a
    :class:`repro.serve.ChipPool` (default: ``settings.chip_jobs``).
    """
    context = context or WorkloadContext(settings or ExperimentSettings())
    names = benchmarks or [spec.name for spec in list_benchmarks()]
    result = Fig11Result(crossbar_size=crossbar_size)
    for name in names:
        workload = context.prepare(name)
        resparc = context.evaluate_resparc(workload, crossbar_size=crossbar_size)
        cmos = context.evaluate_cmos(workload)
        paper = PAPER_FIG11.get(name, {"energy_benefit": float("nan"), "speedup": float("nan")})
        chip_energy_j = None
        chip_backend = None
        if validate_chip and workload.spec.is_mlp:
            # A remote chip server answers for one workload only; restrict
            # the validation pass to the benchmark it advertises
            # (``"custom"`` servers accept anything).  Checked only when a
            # chip run is actually requested, so analytical-only runs never
            # touch the network.
            served = context.served_workload_name()
            if served in (None, "custom", name):
                chip = context.evaluate_chip(
                    workload, crossbar_size=crossbar_size, jobs=jobs
                )
                samples = max(len(chip.predictions), 1)
                chip_energy_j = chip.energy.total_j / samples
                chip_backend = chip.backend
        result.rows.append(
            Fig11Row(
                benchmark=name,
                connectivity=workload.spec.connectivity,
                cmos_energy_j=cmos.energy_per_classification_j,
                resparc_energy_j=resparc.energy_per_classification_j,
                cmos_latency_s=cmos.latency_per_classification_s,
                resparc_latency_s=resparc.latency_per_classification_s,
                paper_energy_benefit=paper["energy_benefit"],
                paper_speedup=paper["speedup"],
                chip_energy_j=chip_energy_j,
                chip_backend=chip_backend,
            )
        )
    return result
