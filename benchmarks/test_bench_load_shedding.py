"""Open-loop load-shedding benchmark: queue-wait percentiles and shed rate.

A bounded-queue chip server under a 4x-oversubscribed open loop (clients
submit without waiting for replies) must degrade *gracefully*: excess
requests come back immediately as structured ``overloaded`` errors instead
of stretching the queue, every admitted request still returns the exact
serial answer, and the queue-wait of admitted requests stays bounded by the
queue depth — not by the offered load.

The server target sleeps a scripted per-dispatch latency so oversubscription
is machine-independent: with a ``max_queue`` of 4 and 16 requests arriving
at once, roughly one is in dispatch, four wait, and the rest shed.  The
recorded metrics are the client-observed wait (submit -> result) of admitted
requests (p50/p95) and the shed rate; the exactness assertions always run,
while the load-dependent thresholds skip on single-core runners like the
other concurrency benchmarks.

Results land in ``benchmarks/results/load_shedding.json`` (override with
``LOAD_SHED_BENCH_RESULTS``) so the perf trajectory across PRs is
inspectable next to the wire-overhead numbers.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import ArchitectureConfig
from repro.serve import ChipSession, InferenceRequest
from repro.serve.distributed import ChipServer, PipelinedSession, RemoteServerError
from repro.serve.schema import ERROR_OVERLOADED
from repro.snn import Dense, Network, convert_to_snn

#: Server queue bound N; the open loop offers OVERSUBSCRIPTION * N requests.
MAX_QUEUE = 4
OVERSUBSCRIPTION = 4
#: Scripted artificial latency per dispatch (keeps the flood machine-independent).
DISPATCH_DELAY_S = 0.02
SAMPLES_PER_REQUEST = 6

#: Admitted requests wait behind at most the queue bound, so their p95 wait
#: is bounded by ~(1 + MAX_QUEUE) dispatches; the generous factor absorbs
#: chip compute and scheduler jitter on busy CI runners.
P95_WAIT_CEILING_S = 40 * DISPATCH_DELAY_S * (1 + MAX_QUEUE)

#: Legacy per-module override; unset falls through to the shared
#: ``persist_result`` results directory (``BENCH_RESULTS_DIR``).
RESULTS_OVERRIDE = os.environ.get("LOAD_SHED_BENCH_RESULTS")


class _SlowTarget:
    """A chip session behind a fixed artificial per-dispatch latency."""

    def __init__(self, session: ChipSession, delay_s: float):
        self._session = session
        self._delay_s = delay_s

    @property
    def backend(self) -> str:
        return self._session.backend

    @property
    def timesteps(self) -> int:
        return self._session.timesteps

    def infer(self, request: InferenceRequest):
        time.sleep(self._delay_s)
        return self._session.infer(request)


@pytest.fixture(scope="module")
def shed_workload():
    rng = np.random.default_rng(41)
    network = Network(
        (48,),
        [
            Dense(48, 24, use_bias=False, rng=rng, name="fc1"),
            Dense(24, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="shedding-mlp",
    )
    snn = convert_to_snn(network, rng.random((16, 48)))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    total = OVERSUBSCRIPTION * MAX_QUEUE
    requests = [
        InferenceRequest(
            inputs=rng.random((SAMPLES_PER_REQUEST, 48)),
            sample_offset=i * SAMPLES_PER_REQUEST,
        )
        for i in range(total)
    ]
    return snn, config, requests


def _session(snn, config) -> ChipSession:
    return ChipSession(snn, config=config, timesteps=4, encoder="poisson", seed=13)


def test_bench_load_shedding_open_loop(shed_workload, persist_result):
    """4x-oversubscribed flood: bounded queue, structured sheds, exact survivors."""
    snn, config, requests = shed_workload
    serial = _session(snn, config)
    expected = [serial.infer(request) for request in requests]
    slow = _SlowTarget(_session(snn, config), DISPATCH_DELAY_S)
    with ChipServer(
        slow, port=0, workload="flood", max_queue=MAX_QUEUE
    ).start() as server:
        with PipelinedSession.connect(server.address, connections=1) as client:
            # Open loop: every request goes out before any reply is read.
            submitted = [
                (index, time.perf_counter(), client.submit(request))
                for index, request in enumerate(requests)
            ]
            waits, sheds = [], 0
            for index, submitted_at, future in submitted:
                try:
                    response = future.result(timeout=60)
                except RemoteServerError as exc:
                    assert exc.code == ERROR_OVERLOADED, (
                        f"shed reply without the structured code: {exc}"
                    )
                    sheds += 1
                else:
                    waits.append(time.perf_counter() - submitted_at)
                    np.testing.assert_array_equal(
                        response.predictions, expected[index].predictions
                    )
                    np.testing.assert_array_equal(
                        response.spike_counts, expected[index].spike_counts
                    )
            info = client.info(refresh=True)
    total = len(requests)
    admitted = len(waits)
    assert admitted + sheds == total
    assert info["stats"]["shed"] == sheds, "server shed count disagrees with client"
    assert info["stats"]["requests"] == admitted
    assert info["queue_depth"] == 0, "queue not drained after the flood"
    shed_rate = sheds / total
    p50, p95 = (np.percentile(waits, [50, 95]) if waits else (0.0, 0.0))
    print(
        f"\nload shedding ({total} requests open-loop, max_queue={MAX_QUEUE}, "
        f"{DISPATCH_DELAY_S * 1e3:.0f}ms/dispatch): {admitted} admitted, "
        f"{sheds} shed (rate {shed_rate:.0%}), queue-wait p50 {p50 * 1e3:.1f}ms, "
        f"p95 {p95 * 1e3:.1f}ms"
    )
    # Persist before the load-dependent thresholds: the numbers are worth
    # keeping even on runners where the assertions skip.
    persist_result(
        "load_shedding",
        "open_loop",
        {
            "requests": total,
            "max_queue": MAX_QUEUE,
            "oversubscription": OVERSUBSCRIPTION,
            "dispatch_delay_s": DISPATCH_DELAY_S,
            "admitted": admitted,
            "shed": sheds,
            "shed_rate": shed_rate,
            "wait_p50_s": float(p50),
            "wait_p95_s": float(p95),
            "p95_wait_ceiling_s": P95_WAIT_CEILING_S,
        },
        path=RESULTS_OVERRIDE,
    )

    if (os.cpu_count() or 1) < 2:
        pytest.skip("load-shedding thresholds need >= 2 cores (open loop vs server)")
    assert sheds > 0, "4x oversubscription never tripped the queue bound"
    assert p95 < P95_WAIT_CEILING_S, (
        f"admitted p95 wait {p95:.3f}s exceeds the bounded-queue ceiling "
        f"{P95_WAIT_CEILING_S:.3f}s — the queue bound is not limiting latency"
    )
