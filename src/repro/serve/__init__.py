"""Service-layer inference API.

The serving subsystem wraps the chip models behind the session/pool shape a
server, queue worker or sweep harness can sit on:

* :class:`~repro.serve.schema.InferenceRequest` /
  :class:`~repro.serve.schema.InferenceResponse` — the serializable request
  and result schema (lossless JSON round trip, including event counters and
  the energy report).
* :class:`~repro.serve.session.ChipSession` — one programmed chip plus its
  compiled fastpath program and encoder state, serving ``infer`` requests
  with per-request batch/labels/timesteps overrides.
* :class:`~repro.serve.pool.ChipPool` — N workers sharding a large batch
  behind a pluggable executor (``inline`` / ``thread`` / ``process``),
  merging shard responses into one result identical to a single-session
  run.
* :mod:`repro.serve.distributed` — the multi-host layer: the executor
  registry, a socket chip server plus :class:`RemoteSession` client, and a
  capacity-weighted multi-endpoint :class:`InferenceGateway`.

Quickstart::

    from repro.serve import ChipPool, ChipSession, InferenceRequest

    session = ChipSession(snn, timesteps=16, encoder="poisson", seed=7)
    response = session.infer(InferenceRequest(inputs=images, labels=labels))

    with ChipPool(snn, jobs=4, timesteps=16, encoder="poisson", seed=7) as pool:
        sharded = pool.infer(InferenceRequest(inputs=images, labels=labels))

    payload = sharded.to_json()  # ships across a process boundary
"""

from repro.serve.distributed import (
    ChipServer,
    GatewayEndpoint,
    InferenceGateway,
    PipelinedSession,
    RemoteSession,
)
from repro.serve.pool import ChipPool
from repro.serve.retry import (
    RetryBudget,
    RetryBudgetExhausted,
    retry_backoff,
)
from repro.serve.schema import (
    FRAME_MAGIC,
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    InferenceRequest,
    InferenceResponse,
    decode_frame,
    encode_frame,
)
from repro.serve.session import ChipSession

__all__ = [
    "FRAME_MAGIC",
    "PROTOCOL_VERSION",
    "SCHEMA_VERSION",
    "decode_frame",
    "encode_frame",
    "ChipPool",
    "ChipServer",
    "ChipSession",
    "GatewayEndpoint",
    "InferenceGateway",
    "InferenceRequest",
    "InferenceResponse",
    "PipelinedSession",
    "RemoteSession",
    "RetryBudget",
    "RetryBudgetExhausted",
    "retry_backoff",
]
