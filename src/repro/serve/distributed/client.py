"""Remote chip clients: the ``ChipSession`` surface over a socket.

Two client shapes speak the chip server's newline-delimited JSON protocol
(see :mod:`repro.serve.schema` for the envelope):

* :class:`RemoteSession` — one connection, strict request/reply, the same
  ``infer(InferenceRequest) -> InferenceResponse`` contract as a local
  :class:`~repro.serve.ChipSession`.  Idempotent ops (``ping`` / ``info`` /
  ``infer`` — inference is a pure function of the request) transparently
  reconnect and retry once when the server restarts under the session.
* :class:`PipelinedSession` — the async/pipelined mode: a small pool of
  connections, each carrying many tagged requests in flight at once.
  :meth:`PipelinedSession.submit` returns a
  :class:`concurrent.futures.Future` immediately, so callers overlap
  network and compute (and give the server's dynamic batcher something to
  coalesce); the blocking :meth:`PipelinedSession.infer` /
  :meth:`PipelinedSession.infer_many` adapters sit on top.

Both clients are drop-in gateway endpoints (they expose ``capacity`` /
``backend`` / ``timesteps`` from the server's ``info``), and both return
responses bit-identical to a local run — the wire round trip is lossless.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import socket
import threading
import time
from concurrent.futures import Future, InvalidStateError

from repro.serve.schema import (
    InferenceRequest,
    InferenceResponse,
    request_envelope,
)

__all__ = [
    "CancellableFuture",
    "PipelinedSession",
    "RemoteServerError",
    "RemoteSession",
    "parse_endpoint",
    "split_endpoints",
]


class RemoteServerError(RuntimeError):
    """The server answered a request with ``ok: false``.

    ``code`` carries the server's structured error code when it supplied
    one — ``"overloaded"`` (request shed by admission control),
    ``"deadline_exceeded"`` (deadline expired before dispatch) or
    ``"cancelled"`` — and is ``None`` for unstructured errors, so callers
    can branch on the failure class without parsing the message text.
    """

    def __init__(self, message: str, code: str | None = None):
        super().__init__(message)
        self.code = code


def _error_from_reply(reply: dict) -> RemoteServerError:
    """Build the client-side error for an ``ok: false`` reply envelope."""
    code = reply.get("code")
    return RemoteServerError(
        str(reply.get("error", "unknown server error")),
        code=code if isinstance(code, str) else None,
    )


def parse_endpoint(endpoint: str) -> tuple[str, int]:
    """Parse ``"host:port"`` into ``(host, port)`` with actionable errors.

    Every rejection names the offending endpoint string: a bad port buried
    in a comma-separated ``--endpoint`` list must be identifiable from the
    message alone.
    """
    text = str(endpoint).strip()
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"endpoint must look like HOST:PORT (for example 127.0.0.1:7070), "
            f"got {endpoint!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"endpoint port must be an integer, got {port_text!r} in {endpoint!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise ValueError(
            f"endpoint port must be in [1, 65535], got {port} in {endpoint!r}"
        )
    return host, port


def split_endpoints(endpoints: str) -> list[str]:
    """Split a (possibly comma-separated) endpoint option, validating each part."""
    parts = [part.strip() for part in str(endpoints).split(",") if part.strip()]
    if not parts:
        raise ValueError(
            f"endpoint must look like HOST:PORT (or a comma-separated list of "
            f"them), got {endpoints!r}"
        )
    for part in parts:
        parse_endpoint(part)  # raises with an actionable message
    return parts


def _connect_with_wait(factory, wait: float):
    """Retry ``factory()`` on connection errors for up to ``wait`` seconds."""
    deadline = time.monotonic() + wait
    while True:
        try:
            return factory()
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


class RemoteSession:
    """A chip session served by a remote :class:`ChipServer`.

    Parameters
    ----------
    host, port:
        Server address.
    timeout:
        Per-request socket timeout in seconds (inference on a large batch is
        slow; size accordingly).
    retries:
        Reconnect-and-resend attempts for idempotent ops after a connection
        failure (a server restart leaves the session holding a dead socket;
        one retry rides out a reboot).  ``0`` disables the resilience.

    The session holds one persistent connection; requests are serialised on
    it (one line out, one line in).  Use one ``RemoteSession`` per thread —
    or :class:`PipelinedSession` — for concurrent callers.
    """

    def __init__(
        self, host: str, port: int, *, timeout: float = 120.0, retries: int = 1
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self._socket: socket.socket | None = None
        self._file = None
        self._ids = itertools.count(1)
        self._info: dict[str, object] | None = None
        self._closed = False
        self._connect()

    @classmethod
    def connect(
        cls,
        endpoint: str | tuple[str, int],
        *,
        timeout: float = 120.0,
        retries: int = 1,
        wait: float = 0.0,
    ) -> "RemoteSession":
        """Connect to ``"host:port"`` (or a ``(host, port)`` tuple).

        ``wait`` keeps retrying for up to that many seconds while the server
        boots (0 means a single attempt).
        """
        host, port = (
            parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
        )
        return _connect_with_wait(
            lambda: cls(host, port, timeout=timeout, retries=retries), wait
        )

    # -- connection management ----------------------------------------------------

    def _connect(self) -> None:
        self._socket = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._socket.makefile("rwb")

    def _drop_connection(self) -> None:
        file, sock = self._file, self._socket
        self._file = self._socket = None
        try:
            if file is not None:
                file.close()
        except OSError:
            pass
        finally:
            if sock is not None:
                sock.close()

    # -- protocol -----------------------------------------------------------------

    def _call(
        self, message: dict[str, object], *, idempotent: bool = True
    ) -> dict[str, object]:
        """One request/reply round trip, reconnecting on a dead connection.

        Idempotent ops are resent once per configured retry after a
        connection-level failure (server restart, dead socket); a
        :class:`RemoteServerError` is a *successful* round trip and is never
        retried.
        """
        if self._closed:
            raise RuntimeError("remote session is closed")
        attempts = 1 + (self.retries if idempotent else 0)
        last_error: Exception | None = None
        for _ in range(attempts):
            try:
                if self._file is None:
                    self._connect()
                request_id = next(self._ids)
                payload = dict(message)
                payload["id"] = request_id
                self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
                self._file.flush()
                line = self._file.readline()
                if not line:
                    raise ConnectionError(
                        f"chip server at {self.host}:{self.port} closed the connection"
                    )
                reply = json.loads(line.decode("utf-8"))
                if reply.get("id") not in (None, request_id):
                    raise ConnectionError(
                        f"chip server at {self.host}:{self.port} answered request "
                        f"{request_id} with id {reply.get('id')!r} (desynchronised "
                        f"connection)"
                    )
                if not reply.get("ok"):
                    raise _error_from_reply(reply)
                return reply
            except TimeoutError:
                # A slow server is not a dead one: resending would duplicate
                # the work and mask the real problem.  The connection is
                # desynchronised (the late reply is still coming), so drop
                # it, but surface the timeout as-is.
                self._drop_connection()
                raise
            except (ConnectionError, OSError) as exc:
                self._drop_connection()
                last_error = exc
        assert last_error is not None
        raise ConnectionError(
            f"chip server at {self.host}:{self.port} unreachable after "
            f"{attempts} attempt(s): {last_error}"
        ) from last_error

    # -- the session surface ------------------------------------------------------

    def ping(self) -> bool:
        """Round-trip a no-op message."""
        return bool(self._call(request_envelope("ping")).get("pong"))

    def info(self, refresh: bool = False) -> dict[str, object]:
        """Server metadata: workload, backend, timesteps, jobs, capacity."""
        if self._info is None or refresh:
            self._info = dict(self._call(request_envelope("info"))["info"])
        return self._info

    @property
    def capacity(self) -> int:
        """Worker count of the remote pool (gateway sharding weight)."""
        return int(self.info().get("capacity", 1))

    @property
    def backend(self) -> str:
        """Execution backend of the remote chip."""
        return str(self.info().get("backend", "unknown"))

    @property
    def timesteps(self) -> int:
        """Default rate-coding window of the remote session."""
        return int(self.info().get("timesteps", 0))

    def infer(
        self, request: InferenceRequest, *, deadline_s: float | None = None
    ) -> InferenceResponse:
        """Run one batch on the remote chip (same contract as ChipSession).

        ``deadline_s`` rides the envelope to the server, which sheds the
        request with a structured ``deadline_exceeded`` error if that much
        time passes before dispatch (see :class:`RemoteServerError.code`).
        """
        fields: dict[str, object] = {"request": request.to_dict()}
        if deadline_s is not None:
            fields["deadline_s"] = float(deadline_s)
        reply = self._call(request_envelope("infer", **fields))
        return InferenceResponse.from_dict(reply["response"])

    def shutdown_server(self) -> None:
        """Ask the server process to stop serving (clean remote teardown).

        Never retried: a connection that drops after the send most likely
        means the shutdown worked.
        """
        self._call(request_envelope("shutdown"), idempotent=False)

    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._closed = True
        self._drop_connection()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- pipelined client ---------------------------------------------------------------


class _PipelinedConnection:
    """One socket carrying many tagged requests; a reader thread routes replies."""

    def __init__(self, host: str, port: int, timeout: float):
        self.host = host
        self.port = port
        self._socket = socket.create_connection((host, port), timeout=timeout)
        # The timeout above governs connection establishment only.  The
        # reader must block indefinitely between replies: a pipelined
        # connection is legitimately idle for long stretches, and a read
        # timeout firing then would wrongly kill every in-flight request.
        # Per-request deadlines belong to future.result(timeout=...).
        self._socket.settimeout(None)
        self._file = self._socket.makefile("rwb")
        self._lock = threading.Lock()
        self._pending: dict[object, Future] = {}
        self._dead = False
        self._reader = threading.Thread(
            target=self._read_loop, name="chip-client-reader", daemon=True
        )
        self._reader.start()

    @property
    def dead(self) -> bool:
        return self._dead

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._pending)

    def send(self, message: dict[str, object], future: Future) -> None:
        """Register ``future`` under the message id and put the line on the wire."""
        request_id = message["id"]
        with self._lock:
            if self._dead:
                raise ConnectionError(
                    f"connection to {self.host}:{self.port} is down"
                )
            self._pending[request_id] = future
            try:
                self._file.write(json.dumps(message).encode("utf-8") + b"\n")
                self._file.flush()
            except (OSError, ValueError) as exc:
                del self._pending[request_id]
                raise ConnectionError(
                    f"connection to {self.host}:{self.port} failed mid-send: {exc}"
                ) from exc

    def _read_loop(self) -> None:
        try:
            while True:
                line = self._file.readline()
                if not line:
                    break
                reply = json.loads(line.decode("utf-8"))
                with self._lock:
                    future = self._pending.pop(reply.get("id"), None)
                if future is None:
                    continue  # untagged or stale reply; nothing to route
                # A locally-cancelled future may already be done when its
                # (cancelled-error) reply arrives; dropping it is correct.
                with contextlib.suppress(InvalidStateError):
                    if reply.get("ok"):
                        future.set_result(reply)
                    else:
                        future.set_exception(_error_from_reply(reply))
        except (OSError, ValueError):
            pass
        finally:
            self._fail_pending(
                ConnectionError(
                    f"chip server at {self.host}:{self.port} closed the connection"
                )
            )

    def abandon(self, request_id: object) -> None:
        """Forget a pending request (a bounded wait gave up on its reply).

        Without this, every timed-out poll of a wedged-but-connected server
        would leave its future in the routing table forever, inflating
        ``in_flight`` and steering connection selection off real load.  A
        reply that does arrive later is dropped as stale.
        """
        with self._lock:
            self._pending.pop(request_id, None)

    def _fail_pending(self, exc: Exception) -> None:
        with self._lock:
            self._dead = True
            pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    def close(self) -> None:
        with self._lock:
            self._dead = True
        # Unblock the reader first: closing the buffered file while the
        # reader thread sits in readline() would deadlock on the buffer's
        # internal lock until the socket timeout.  shutdown() delivers EOF.
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        if threading.current_thread() is not self._reader:
            self._reader.join(timeout=5.0)
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            self._socket.close()


class CancellableFuture(Future):
    """A result future whose :meth:`cancel` also revokes the remote work.

    :meth:`PipelinedSession.submit` returns these: the future is never in
    the executor sense "running" (replies resolve it from the reader
    thread), so ``cancel()`` succeeds whenever the result has not arrived —
    and on success additionally fires the attached canceller, which sends a
    ``cancel`` op so the server drops the still-queued request instead of
    computing an answer nobody will read.  Waiters see the standard
    :class:`concurrent.futures.CancelledError`.
    """

    _canceller = None

    def cancel(self) -> bool:
        cancelled = super().cancel()
        if cancelled and self._canceller is not None:
            # Best effort: the remote side may already be dispatching (the
            # server then simply completes the work) or the connection may
            # be gone; local cancellation stands either way.
            with contextlib.suppress(Exception):
                self._canceller()
        return cancelled


class PipelinedSession:
    """Pipelined chip client: many requests in flight over a connection pool.

    Parameters
    ----------
    host, port:
        Server address.
    connections:
        Size of the connection pool (requests are spread across the least
        loaded live connections; one is plenty for pure pipelining, two or
        three overlap TCP flow control on large batches).
    timeout:
        Connection-establishment timeout in seconds.  Established
        connections wait indefinitely for replies (they are legitimately
        idle between batches); put per-request deadlines on
        ``future.result(timeout=...)``.

    :meth:`submit` returns a :class:`CancellableFuture` resolving to the
    :class:`InferenceResponse` — cancelling it also sends a ``cancel`` op so
    the server drops the still-queued work — and accepts a per-request
    ``deadline_s`` that the server enforces before dispatch; requests
    already on a connection that dies are transparently resubmitted once on
    a fresh connection (inference is idempotent — a pure function of the
    request).  The blocking :meth:`infer` / :meth:`infer_many` adapters
    mirror the ``ChipSession`` surface, so a pipelined remote is also a
    valid gateway endpoint.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connections: int = 2,
        timeout: float = 120.0,
    ):
        if connections < 1:
            raise ValueError(f"connections must be >= 1, got {connections}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._info: dict[str, object] | None = None
        self._closed = False
        # Fail fast like RemoteSession: the first connection opens eagerly.
        self._connections: list[_PipelinedConnection | None] = [
            _PipelinedConnection(host, port, timeout)
        ] + [None] * (connections - 1)

    @classmethod
    def connect(
        cls,
        endpoint: str | tuple[str, int],
        *,
        connections: int = 2,
        timeout: float = 120.0,
        wait: float = 0.0,
    ) -> "PipelinedSession":
        """Connect to ``"host:port"`` (or a tuple), waiting out a server boot."""
        host, port = (
            parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
        )
        return _connect_with_wait(
            lambda: cls(host, port, connections=connections, timeout=timeout), wait
        )

    # -- connection pool ----------------------------------------------------------

    def _pick_connection(self) -> _PipelinedConnection:
        """The least-loaded live connection, (re)opening slots as needed."""
        with self._lock:
            if self._closed:
                raise RuntimeError("pipelined session is closed")
            best: _PipelinedConnection | None = None
            best_load = 0
            open_slot: int | None = None
            for index, connection in enumerate(self._connections):
                if connection is None or connection.dead:
                    if open_slot is None:
                        open_slot = index
                    continue
                load = connection.in_flight
                if best is None or load < best_load:
                    best, best_load = connection, load
            # An idle live connection (or no free slot) means no reconnect.
            if best is not None and (best_load == 0 or open_slot is None):
                return best
            if open_slot is None:
                raise ConnectionError(
                    f"no usable connection to {self.host}:{self.port}"
                )  # pragma: no cover - slots always exist
        # Prefer opening the idle slot over queueing behind live traffic —
        # but connect OUTSIDE the session lock: establishment can block for
        # the whole timeout and must not stall submits that could ride the
        # healthy connections.
        fresh = _PipelinedConnection(self.host, self.port, self.timeout)
        with self._lock:
            if self._closed:
                fresh.close()
                raise RuntimeError("pipelined session is closed")
            current = self._connections[open_slot]
            if current is not None and not current.dead:
                # Another thread reconnected this slot first; use theirs.
                fresh.close()
                return current
            self._connections[open_slot] = fresh
        return fresh

    # -- protocol -----------------------------------------------------------------

    def _submit_op(
        self,
        op: str,
        *,
        retry: bool = True,
        sent: dict[str, object] | None = None,
        **fields: object,
    ) -> Future:
        """Send one envelope, returning a future for its reply envelope.

        ``sent`` (when given) is updated in place with the connection and
        request id of the most recent wire attempt, which is what a later
        ``cancel`` op must target.
        """
        outer: Future = Future()
        self._attempt(op, fields, outer, retries_left=1 if retry else 0, sent=sent)
        return outer

    def _attempt(
        self,
        op: str,
        fields: dict[str, object],
        outer: Future,
        retries_left: int,
        sent: dict[str, object] | None = None,
    ) -> None:
        request_id = next(self._ids)
        message = request_envelope(op, request_id=request_id, **fields)
        inner: Future = Future()

        def relay(done: Future) -> None:
            if outer.done():  # locally cancelled while in flight
                return
            exc = done.exception()
            if isinstance(exc, ConnectionError) and retries_left > 0:
                # The connection died with this request in flight; resend on
                # a fresh one (idempotent ops only reach this path).
                try:
                    self._attempt(op, fields, outer, retries_left - 1, sent=sent)
                except Exception as retry_exc:  # noqa: BLE001 - into the future
                    with contextlib.suppress(InvalidStateError):
                        outer.set_exception(retry_exc)
            else:
                with contextlib.suppress(InvalidStateError):
                    if exc is not None:
                        outer.set_exception(exc)
                    else:
                        outer.set_result(done.result())

        inner.add_done_callback(relay)
        try:
            connection = self._pick_connection()
            connection.send(message, inner)
            if sent is not None:
                sent["connection"] = connection
                sent["id"] = request_id
        except ConnectionError as exc:
            if retries_left > 0:
                self._attempt(op, fields, outer, retries_left - 1, sent=sent)
            elif not outer.done():
                with contextlib.suppress(InvalidStateError):
                    outer.set_exception(exc)
        except RuntimeError as exc:  # session closed while retrying
            if not outer.done():
                with contextlib.suppress(InvalidStateError):
                    outer.set_exception(exc)

    # -- the pipelined surface ----------------------------------------------------

    def submit(
        self, request: InferenceRequest, *, deadline_s: float | None = None
    ) -> CancellableFuture:
        """Queue one inference; the future resolves to its InferenceResponse.

        ``deadline_s`` rides the envelope: the server sheds the request with
        a structured ``deadline_exceeded`` error if that much time passes
        before dispatch.  The returned :class:`CancellableFuture`'s
        ``cancel()`` additionally sends a ``cancel`` op, so the server drops
        the still-queued work rather than computing an orphaned answer.
        """
        outer = CancellableFuture()
        fields: dict[str, object] = {"request": request.to_dict()}
        if deadline_s is not None:
            fields["deadline_s"] = float(deadline_s)
        sent: dict[str, object] = {}
        raw = self._submit_op("infer", sent=sent, **fields)

        def cancel_remote() -> None:
            connection = sent.get("connection")
            request_id = sent.get("id")
            if (
                not isinstance(connection, _PipelinedConnection)
                or connection.dead
                or request_id is None
            ):
                return
            # Fire and forget: the reply (routed by its own fresh id) lands
            # on a throwaway future nobody waits for.
            connection.send(
                request_envelope(
                    "cancel", request_id=next(self._ids), target=request_id
                ),
                Future(),
            )

        outer._canceller = cancel_remote

        def convert(done: Future) -> None:
            if outer.done():  # locally cancelled; the late reply is noise
                return
            try:
                response = InferenceResponse.from_dict(done.result()["response"])
            except Exception as exc:  # noqa: BLE001 - routed into the future
                with contextlib.suppress(InvalidStateError):
                    outer.set_exception(exc)
                return
            with contextlib.suppress(InvalidStateError):
                outer.set_result(response)

        raw.add_done_callback(convert)
        return outer

    def infer(
        self, request: InferenceRequest, *, deadline_s: float | None = None
    ) -> InferenceResponse:
        """Blocking single inference (the ``ChipSession`` contract)."""
        return self.submit(request, deadline_s=deadline_s).result()

    def infer_many(
        self,
        requests: list[InferenceRequest],
        *,
        deadline_s: float | None = None,
    ) -> list[InferenceResponse]:
        """Submit every request before collecting any reply (full pipelining)."""
        futures = [
            self.submit(request, deadline_s=deadline_s) for request in requests
        ]
        return [future.result() for future in futures]

    def _bounded_reply(
        self, op: str, timeout: float | None, **fields: object
    ) -> dict[str, object]:
        """One op round trip whose bounded wait cleans up after itself.

        On timeout the pending entry is abandoned on its connection, so a
        wedged-but-connected server cannot inflate ``in_flight`` one leaked
        future per poll.
        """
        sent: dict[str, object] = {}
        raw = self._submit_op(op, sent=sent, **fields)
        try:
            return raw.result(timeout)
        except TimeoutError:
            connection = sent.get("connection")
            if isinstance(connection, _PipelinedConnection):
                connection.abandon(sent.get("id"))
            raise

    def ping(self, timeout: float | None = None) -> bool:
        """Round-trip a no-op message (optionally bounded by ``timeout``)."""
        return bool(self._bounded_reply("ping", timeout).get("pong"))

    def info(
        self, refresh: bool = False, *, timeout: float | None = None
    ) -> dict[str, object]:
        """Server metadata: workload, backend, timesteps, jobs, capacity."""
        if self._info is None or refresh:
            self._info = dict(self._bounded_reply("info", timeout)["info"])
        return self._info

    @property
    def capacity(self) -> int:
        """Worker count of the remote pool (gateway sharding weight)."""
        return int(self.info().get("capacity", 1))

    @property
    def backend(self) -> str:
        """Execution backend of the remote chip."""
        return str(self.info().get("backend", "unknown"))

    @property
    def timesteps(self) -> int:
        """Default rate-coding window of the remote session."""
        return int(self.info().get("timesteps", 0))

    def shutdown_server(self) -> None:
        """Ask the server process to stop serving (never retried)."""
        self._submit_op("shutdown", retry=False).result()

    def close(self) -> None:
        """Close every connection (idempotent); in-flight requests fail."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections, self._connections = self._connections, []
        for connection in connections:
            if connection is not None:
                connection.close()

    def __enter__(self) -> "PipelinedSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
