"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline import CmosBaselineModel
from repro.core import ArchitectureConfig, ResparcModel
from repro.datasets import make_dataset
from repro.mapping import map_network, mapping_report
from repro.snn import SpikingSimulator, Trainer, convert_to_snn
from repro.workloads import build_mnist_mlp


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def pipeline(self):
        """Train a reduced MNIST MLP, convert it, and evaluate both architectures."""
        rng_seed = 11
        network = build_mnist_mlp(scale=0.2, seed=rng_seed)
        dataset = make_dataset("mnist", train_samples=160, test_samples=40, seed=rng_seed)
        train_x = dataset.train_images.reshape(160, -1)
        test_x = dataset.test_images.reshape(40, -1)
        trainer = Trainer(learning_rate=0.005, batch_size=32, rng=np.random.default_rng(rng_seed))
        trainer.fit(network, train_x, dataset.train_labels, epochs=4)
        snn = convert_to_snn(network, train_x[:32])
        simulator = SpikingSimulator(timesteps=24, rng=np.random.default_rng(rng_seed))
        result = simulator.run(snn, test_x[:16], dataset.test_labels[:16])
        return network, snn, result

    def test_trained_snn_beats_chance(self, pipeline):
        _, _, result = pipeline
        assert result.accuracy is not None
        assert result.accuracy > 0.3  # chance is 0.1 on ten classes

    def test_full_stack_energy_comparison(self, pipeline):
        network, _, result = pipeline
        resparc = ResparcModel().evaluate(network, result.trace)
        cmos = CmosBaselineModel().evaluate(network, result.trace)
        benefit = cmos.energy_per_classification_j / resparc.energy_per_classification_j
        speedup = cmos.latency_per_classification_s / resparc.latency_per_classification_s
        assert benefit > 10
        assert speedup > 10

    def test_mapping_report_is_consistent_with_model(self, pipeline):
        network, _, result = pipeline
        mapped = map_network(network, crossbar_size=64)
        report = mapping_report(mapped)
        assert str(mapped.total_tiles) in report
        evaluation = ResparcModel().evaluate(mapped, result.trace)
        # Every tile fires at most once per timestep per sample.
        max_evals = mapped.total_tiles * result.trace.timesteps
        assert evaluation.counters.crossbar_evaluations <= max_evals + 1e-9

    def test_event_driven_consistency_across_models(self, pipeline):
        network, _, result = pipeline
        for event_driven in (True, False):
            config = ArchitectureConfig(event_driven=event_driven)
            evaluation = ResparcModel(config=config).evaluate(network, result.trace)
            assert evaluation.energy_per_classification_j > 0

    def test_technology_aware_size_selection_runs(self, pipeline):
        network, _, result = pipeline
        energies = {}
        for size in (32, 64, 128):
            config = ArchitectureConfig().with_crossbar_size(size)
            energies[size] = ResparcModel(config=config).evaluate(network, result.trace).energy_per_classification_j
        # For an MLP the largest permissible crossbar is the most efficient.
        assert energies[128] < energies[32]
