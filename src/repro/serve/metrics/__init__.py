"""Dependency-free metrics plane for the serving stack.

Three ideas, kept deliberately small:

* :class:`MetricsRegistry` — a process-local family store for counters,
  gauges and fixed-bucket histograms.  Every serving layer records into a
  registry; the :class:`~repro.serve.distributed.ChipServer` owns one per
  instance (so two servers in one test process never share counters) and
  exposes it over the ``metrics`` wire op and a Prometheus text endpoint.
* **No-op mode** — a registry can be constructed (or flipped) disabled, at
  which point every ``inc``/``set``/``observe`` returns before touching a
  lock.  The hot-path overhead benchmark pins instrumentation cost against
  this mode.
* **Phase spans** (:mod:`repro.serve.metrics.trace`) — per-request
  ``queue_wait``/``dispatch``/``compute``/``merge`` timings ride the
  response ``metadata`` dict on the existing request-id plumbing, so any
  client (and the load lab) can read where a request's wall time went.

The registry is thread-safe and has zero third-party dependencies; the
Prometheus rendering is plain text-format 0.0.4.
"""

from repro.serve.metrics.exposition import render_prometheus
from repro.serve.metrics.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    REGISTRY,
    get_default_registry,
    set_default_enabled,
)
from repro.serve.metrics.trace import (
    PHASE_COMPUTE,
    PHASE_DISPATCH,
    PHASE_KEYS,
    PHASE_MERGE,
    PHASE_QUEUE_WAIT,
    PHASES_KEY,
    merge_phases,
    phases_total,
    read_phases,
    record_phase,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "PHASES_KEY",
    "PHASE_COMPUTE",
    "PHASE_DISPATCH",
    "PHASE_KEYS",
    "PHASE_MERGE",
    "PHASE_QUEUE_WAIT",
    "REGISTRY",
    "get_default_registry",
    "merge_phases",
    "phases_total",
    "read_phases",
    "record_phase",
    "render_prometheus",
    "set_default_enabled",
]
