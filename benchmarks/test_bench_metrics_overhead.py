"""Metrics-instrumentation overhead on the batched hot path.

The observability plane records a handful of counter increments, histogram
observations and phase spans per coalesced dispatch.  That cost must stay
in the noise floor of chip compute: this benchmark drives the same
coalesced ``infer_many`` hot path — the exact path the async server's
dynamic batcher drains through — once with a live
:class:`~repro.serve.metrics.MetricsRegistry` and once with the disabled
``NULL_REGISTRY`` (every record call short-circuits), and holds the
instrumented run to under 5% overhead.

Best-of-N wall times on a multi-request dispatch keep the comparison
stable on shared runners; the acceptance bar is generous precisely because
the expected overhead is orders of magnitude below it (microseconds of
bookkeeping against milliseconds of spiking simulation).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import ArchitectureConfig
from repro.serve import ChipPool, InferenceRequest
from repro.serve.metrics import NULL_REGISTRY, MetricsRegistry
from repro.snn import Dense, Network, convert_to_snn

BATCH = 32
REQUESTS = 8
FEATURES = 64
TIMESTEPS = 6
JOBS = 2
ROUNDS = 7

#: The instrumented hot path may cost at most this fraction extra.
OVERHEAD_CEILING = 0.05


@pytest.fixture(scope="module")
def overhead_workload():
    rng = np.random.default_rng(47)
    network = Network(
        (FEATURES,),
        [
            Dense(FEATURES, 32, use_bias=False, rng=rng, name="fc1"),
            Dense(32, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="metrics-overhead-mlp",
    )
    snn = convert_to_snn(network, rng.random((16, FEATURES)))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    requests = [
        InferenceRequest(
            inputs=rng.random((BATCH, FEATURES)), sample_offset=i * BATCH
        )
        for i in range(REQUESTS)
    ]
    return snn, config, requests


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="sub-5% overhead comparison is unreliable on a single busy core",
)
def test_bench_metrics_overhead_on_batched_hot_path(
    overhead_workload, persist_result
):
    """Live registry vs no-op registry on the coalesced dispatch path.

    The rounds interleave between the two pools, so a machine-load drift
    during the benchmark biases both sides equally instead of whichever
    registry happened to run second.
    """
    snn, config, requests = overhead_workload

    def pool_for(registry: MetricsRegistry) -> ChipPool:
        return ChipPool(
            snn,
            jobs=JOBS,
            config=config,
            timesteps=TIMESTEPS,
            seed=0,
            registry=registry,
        )

    disabled_s = float("inf")
    enabled_s = float("inf")
    with pool_for(NULL_REGISTRY) as disabled_pool, pool_for(
        MetricsRegistry(enabled=True)
    ) as enabled_pool:
        # Warm both paths (plan arenas, executor threads) before timing.
        disabled_pool.infer_many(requests)
        enabled_pool.infer_many(requests)
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            disabled_pool.infer_many(requests)
            disabled_s = min(disabled_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            enabled_pool.infer_many(requests)
            enabled_s = min(enabled_s, time.perf_counter() - t0)
    overhead = enabled_s / disabled_s - 1.0
    print(
        f"\nmetrics overhead ({REQUESTS}x{BATCH} coalesced, jobs={JOBS}): "
        f"disabled {disabled_s * 1e3:.2f}ms, enabled {enabled_s * 1e3:.2f}ms, "
        f"overhead {overhead:+.2%}"
    )
    persist_result(
        "metrics_overhead",
        "batched_hot_path",
        {
            "requests": REQUESTS,
            "batch": BATCH,
            "jobs": JOBS,
            "timesteps": TIMESTEPS,
            "disabled_s": disabled_s,
            "enabled_s": enabled_s,
            "overhead_fraction": overhead,
            "ceiling": OVERHEAD_CEILING,
        },
    )
    assert overhead < OVERHEAD_CEILING, (
        f"metrics instrumentation costs {overhead:.2%} on the batched hot "
        f"path — above the {OVERHEAD_CEILING:.0%} ceiling"
    )
