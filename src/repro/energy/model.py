"""Energy accounting containers.

Both hardware models (RESPARC and the CMOS baseline) report their results as
an :class:`EnergyReport`: a breakdown of the per-classification energy into
named components.  The container knows how to

* aggregate and normalise breakdowns (the paper's figures are all normalised),
* group raw components into the coarse categories used by Fig. 12
  (neuron / crossbar / peripherals for RESPARC, core / memory access /
  memory leakage for the CMOS baseline), and
* combine with a latency to produce energy-delay products for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.utils.units import format_energy

__all__ = ["EnergyReport", "RESPARC_GROUPS", "CMOS_GROUPS"]


#: Component → group mapping for RESPARC breakdowns (Fig. 12 a/c).
RESPARC_GROUPS: dict[str, str] = {
    "neuron_integration": "neuron",
    "neuron_spiking": "neuron",
    "crossbar_read": "crossbar",
    "buffer": "peripherals",
    "target_buffer": "peripherals",
    "local_control": "peripherals",
    "ccu_transfer": "peripherals",
    "switch": "peripherals",
    "zero_check": "peripherals",
    "io_bus": "peripherals",
    "global_control": "peripherals",
    "input_sram_access": "peripherals",
    "input_sram_leakage": "peripherals",
    "static": "peripherals",
}

#: Component → group mapping for CMOS baseline breakdowns (Fig. 12 b/d).
CMOS_GROUPS: dict[str, str] = {
    "mac": "core",
    "nu_update": "core",
    "fifo": "core",
    "core_static": "core",
    "weight_memory_access": "memory_access",
    "activation_memory_access": "memory_access",
    "memory_leakage": "memory_leakage",
}


@dataclass
class EnergyReport:
    """Per-classification energy broken down by named component.

    Attributes
    ----------
    label:
        Identifier of the design point (e.g. ``"resparc-64/mnist-mlp"``).
    components:
        Energy per component in joules.
    group_map:
        Mapping from component names to coarse group names used by
        :meth:`grouped`.
    """

    label: str
    components: dict[str, float] = field(default_factory=dict)
    group_map: Mapping[str, str] = field(default_factory=dict)

    def add(self, component: str, energy_j: float) -> None:
        """Accumulate ``energy_j`` joules into ``component``."""
        if energy_j < 0:
            raise ValueError(f"energy must be >= 0, got {energy_j} for {component!r}")
        self.components[component] = self.components.get(component, 0.0) + float(energy_j)

    @property
    def total_j(self) -> float:
        """Total energy across every component (J)."""
        return float(sum(self.components.values()))

    def grouped(self) -> dict[str, float]:
        """Energy aggregated into coarse groups (unknown components → ``"other"``)."""
        groups: dict[str, float] = {}
        for name, value in self.components.items():
            group = self.group_map.get(name, "other")
            groups[group] = groups.get(group, 0.0) + value
        return groups

    def fraction(self, component_or_group: str) -> float:
        """Fraction of the total energy in a component or group (0 when total is 0)."""
        total = self.total_j
        if total == 0:
            return 0.0
        if component_or_group in self.components:
            return self.components[component_or_group] / total
        return self.grouped().get(component_or_group, 0.0) / total

    def normalised(self, reference_j: float) -> dict[str, float]:
        """Component energies divided by a reference energy (paper-style plots)."""
        if reference_j <= 0:
            raise ValueError(f"reference_j must be > 0, got {reference_j}")
        return {name: value / reference_j for name, value in self.components.items()}

    def scaled(self, factor: float) -> "EnergyReport":
        """Return a copy with every component multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return EnergyReport(
            label=self.label,
            components={k: v * factor for k, v in self.components.items()},
            group_map=dict(self.group_map),
        )

    def merged_with(self, other: "EnergyReport", label: str | None = None) -> "EnergyReport":
        """Component-wise sum of two reports."""
        merged = EnergyReport(
            label=label or self.label,
            components=dict(self.components),
            group_map=dict(self.group_map),
        )
        for name, value in other.components.items():
            merged.add(name, value)
        return merged

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible representation (label, components, group map)."""
        return {
            "label": self.label,
            "components": dict(self.components),
            "group_map": dict(self.group_map),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "EnergyReport":
        """Rebuild a report from :meth:`to_dict` output.

        JSON serialises floats with shortest round-trip precision, so a
        ``to_dict -> json -> from_dict`` cycle is lossless.
        """
        components = data.get("components", {})
        group_map = data.get("group_map", {})
        if not isinstance(components, dict) or not isinstance(group_map, dict):
            raise ValueError("components and group_map must be mappings")
        return cls(
            label=str(data["label"]),
            components={str(k): float(v) for k, v in components.items()},
            group_map={str(k): str(v) for k, v in group_map.items()},
        )

    def summary(self) -> str:
        """Multi-line human readable breakdown."""
        lines = [f"EnergyReport {self.label!r}: total {format_energy(self.total_j)}"]
        for group, value in sorted(self.grouped().items(), key=lambda kv: -kv[1]):
            lines.append(f"  {group:<16} {format_energy(value):>12}  ({100 * value / self.total_j:5.1f}%)"
                         if self.total_j else f"  {group:<16} {format_energy(value):>12}")
        return "\n".join(lines)

    @staticmethod
    def ratio(numerator: "EnergyReport", denominator: "EnergyReport") -> float:
        """Energy ratio ``numerator.total / denominator.total``."""
        if denominator.total_j == 0:
            raise ZeroDivisionError("denominator report has zero total energy")
        return numerator.total_j / denominator.total_j


def merge_reports(reports: Iterable[EnergyReport], label: str) -> EnergyReport:
    """Sum an iterable of reports into one."""
    merged = EnergyReport(label=label)
    for report in reports:
        merged = merged.merged_with(report, label=label)
        merged.group_map = dict(report.group_map)
    return merged
