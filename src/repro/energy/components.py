"""45 nm component energy/latency library.

The paper obtains its per-component energies by synthesising the peripheral
RTL to IBM 45 nm (Synopsys Design Compiler / Power Compiler) and modelling
the SRAM with CACTI.  Those tools are not available here, so this module
plays the same role: it is the single place where every per-event energy and
per-component latency constant lives, expressed in base SI units.

The default values are assembled from public 45 nm figures (register-file
and SRAM access energies, MAC energies, flip-flop switching energies, wire
energies) and then lightly calibrated so that

* one NeuroCell's busy power matches the published envelope of Fig. 8
  (53.2 mW at 200 MHz, 0.29 mm², 16 mPEs with 4 MCAs each), and
* the CMOS baseline envelope matches Fig. 9 (35.1 mW at 1 GHz, 0.19 mm²).

Every architectural result in the repository is derived from these constants
through the activity models; nothing downstream is tuned per benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.utils.validation import check_positive

__all__ = ["ComponentLibrary", "scale_for_bits", "DEFAULT_LIBRARY"]


@dataclass(frozen=True)
class ComponentLibrary:
    """Per-event energies (J), latencies (s) and static powers (W) at 45 nm.

    The constants are grouped by the hardware they describe.  "Per event"
    always means one architectural event: one buffer word access, one packet
    hop through a switch, one neuron membrane update, one MAC, and so on.
    """

    # --- technology -----------------------------------------------------------
    feature_size_nm: float = 45.0
    supply_voltage_v: float = 1.0

    # --- RESPARC: neurons -----------------------------------------------------
    #: One analog IF membrane integration of one crossbar-column current
    #: (charging the membrane capacitance directly from the column — no ADC).
    neuron_integration_energy_j: float = 0.10e-12
    #: One spike generation (threshold crossing + output driver).
    neuron_spike_energy_j: float = 0.25e-12
    #: Latency of integrating one time-multiplexed crossbar output set.
    neuron_integration_latency_s: float = 2.5e-9

    # --- RESPARC: mPE peripherals ----------------------------------------------
    #: Energy per spike-packet word read from / written to iBUFF/oBUFF.
    buffer_access_energy_j: float = 0.4e-12
    #: Energy per target-address lookup in tBUFF.
    tbuffer_access_energy_j: float = 0.3e-12
    #: Local control unit energy per MCA evaluation it orchestrates.
    local_control_energy_j: float = 0.8e-12
    #: Current-control-unit energy per analog current transfer between mPEs.
    ccu_transfer_energy_j: float = 0.8e-12
    #: Static (leakage + clock) power of one mPE's peripheral logic.  Idle
    #: mPEs are power gated, so this is the residual always-on fraction.
    mpe_static_power_w: float = 0.01e-3

    # --- RESPARC: NeuroCell switch network --------------------------------------
    #: Energy of moving one spike packet through one programmable switch hop.
    switch_hop_energy_j: float = 1.2e-12
    #: Energy of the zero-check comparison on one packet.
    zero_check_energy_j: float = 0.05e-12
    #: Static power of one programmable switch (idle switches are power gated).
    switch_static_power_w: float = 0.01e-3
    #: Latency of one switch hop (one 200 MHz cycle).
    switch_hop_latency_s: float = 5e-9

    # --- RESPARC: global interconnect and input memory ---------------------------
    #: Energy per word broadcast on the shared global IO bus.
    io_bus_energy_per_word_j: float = 6.0e-12
    #: Latency of one bus transaction (one cycle at 200 MHz).
    io_bus_latency_s: float = 5e-9
    #: Energy per global-control-unit event (event-flag update, NC dispatch).
    global_control_energy_j: float = 1.5e-12

    # --- CMOS baseline ------------------------------------------------------------
    #: One 4-bit multiply-accumulate in a baseline Neuron Unit (NU).
    mac_energy_j: float = 0.7e-12
    #: One membrane update (accumulate + threshold compare) in an NU.
    nu_update_energy_j: float = 0.5e-12
    #: One word pushed/popped through an input or weight FIFO.
    fifo_access_energy_j: float = 0.6e-12
    #: Static power of the baseline compute core (NUs + FIFOs + control).
    baseline_core_static_power_w: float = 9.0e-3
    #: Per-cycle latency of the baseline (1 GHz clock).
    baseline_cycle_s: float = 1e-9

    # --- clocking -------------------------------------------------------------------
    #: RESPARC clock period (200 MHz).
    resparc_cycle_s: float = 5e-9

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (int, float)):
                check_positive(f.name, float(value))

    def replace(self, **overrides: float) -> "ComponentLibrary":
        """Return a copy with the given constants replaced."""
        return replace(self, **overrides)


def scale_for_bits(library: ComponentLibrary, bits: int, reference_bits: int = 4) -> ComponentLibrary:
    """Scale the digital (CMOS) energies of a library with datapath precision.

    The paper observes (Fig. 14b) that the CMOS baseline energy grows with
    weight precision because memories, buffers and compute units widen, while
    RESPARC's crossbar energy is essentially precision independent (a device
    stores more levels in the same cell).  This helper applies that scaling:
    digital per-event energies grow linearly with the datapath width ratio,
    analog crossbar/neuron energies stay untouched.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    ratio = bits / float(reference_bits)
    return library.replace(
        mac_energy_j=library.mac_energy_j * ratio,
        nu_update_energy_j=library.nu_update_energy_j * ratio,
        fifo_access_energy_j=library.fifo_access_energy_j * ratio,
        baseline_core_static_power_w=library.baseline_core_static_power_w * ratio,
        buffer_access_energy_j=library.buffer_access_energy_j,
    )


#: Library instance used throughout the repository unless a study overrides it.
DEFAULT_LIBRARY = ComponentLibrary()
