"""Tests for the component library, CACTI-like SRAM model and report containers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.energy import (
    CMOS_GROUPS,
    RESPARC_GROUPS,
    ComponentLibrary,
    EnergyReport,
    LatencyReport,
    SRAMConfig,
    SRAMModel,
    merge_reports,
    scale_for_bits,
)


class TestComponentLibrary:
    def test_all_constants_positive(self):
        library = ComponentLibrary()
        assert library.neuron_integration_energy_j > 0
        assert library.mac_energy_j > 0
        assert library.resparc_cycle_s == pytest.approx(5e-9)

    def test_replace_returns_new_instance(self):
        library = ComponentLibrary()
        other = library.replace(mac_energy_j=2e-12)
        assert other.mac_energy_j == pytest.approx(2e-12)
        assert library.mac_energy_j != other.mac_energy_j

    def test_rejects_non_positive_constant(self):
        with pytest.raises(ValueError):
            ComponentLibrary(mac_energy_j=0.0)

    def test_scale_for_bits_scales_digital_only(self):
        library = ComponentLibrary()
        scaled = scale_for_bits(library, bits=8)
        assert scaled.mac_energy_j == pytest.approx(2 * library.mac_energy_j)
        assert scaled.fifo_access_energy_j == pytest.approx(2 * library.fifo_access_energy_j)
        assert scaled.neuron_integration_energy_j == library.neuron_integration_energy_j

    def test_scale_for_bits_validation(self):
        with pytest.raises(ValueError):
            scale_for_bits(ComponentLibrary(), bits=0)


class TestSRAMModel:
    def test_access_energy_grows_with_capacity(self):
        small = SRAMModel(SRAMConfig(capacity_bytes=32 * 1024))
        large = SRAMModel(SRAMConfig(capacity_bytes=1024 * 1024))
        assert large.access_energy_j() > small.access_energy_j()

    def test_access_energy_grows_with_word_width(self):
        narrow = SRAMModel(SRAMConfig(word_bits=32))
        wide = SRAMModel(SRAMConfig(word_bits=64))
        assert wide.access_energy_j() == pytest.approx(2 * narrow.access_energy_j())

    def test_banking_reduces_access_energy_but_adds_leakage(self):
        flat = SRAMModel(SRAMConfig(capacity_bytes=512 * 1024, banks=1))
        banked = SRAMModel(SRAMConfig(capacity_bytes=512 * 1024, banks=4))
        assert banked.access_energy_j() < flat.access_energy_j()
        assert banked.leakage_power_w() > flat.leakage_power_w()

    def test_leakage_proportional_to_capacity(self):
        one = SRAMModel(SRAMConfig(capacity_bytes=128 * 1024))
        two = SRAMModel(SRAMConfig(capacity_bytes=256 * 1024))
        assert two.leakage_power_w() == pytest.approx(2 * one.leakage_power_w())

    def test_energy_for_bytes(self):
        model = SRAMModel(SRAMConfig(word_bits=64))
        assert model.energy_for_bytes(64) == pytest.approx(8 * model.access_energy_j())
        with pytest.raises(ValueError):
            model.energy_for_bytes(-1)

    def test_leakage_energy(self):
        model = SRAMModel()
        assert model.leakage_energy_j(1.0) == pytest.approx(model.leakage_power_w())
        with pytest.raises(ValueError):
            model.leakage_energy_j(-1.0)

    def test_capacity_bank_divisibility(self):
        with pytest.raises(ValueError):
            SRAMConfig(capacity_bytes=1000, banks=3)


class TestEnergyReport:
    def test_add_and_total(self):
        report = EnergyReport(label="x", group_map=RESPARC_GROUPS)
        report.add("crossbar_read", 1e-9)
        report.add("buffer", 2e-9)
        report.add("buffer", 3e-9)
        assert report.total_j == pytest.approx(6e-9)
        assert report.components["buffer"] == pytest.approx(5e-9)

    def test_grouping(self):
        report = EnergyReport(label="x", group_map=RESPARC_GROUPS)
        report.add("crossbar_read", 1e-9)
        report.add("switch", 1e-9)
        report.add("unknown_thing", 1e-9)
        groups = report.grouped()
        assert groups["crossbar"] == pytest.approx(1e-9)
        assert groups["peripherals"] == pytest.approx(1e-9)
        assert groups["other"] == pytest.approx(1e-9)

    def test_fraction_and_normalised(self):
        report = EnergyReport(label="x", group_map=CMOS_GROUPS)
        report.add("mac", 3e-9)
        report.add("memory_leakage", 1e-9)
        assert report.fraction("mac") == pytest.approx(0.75)
        assert report.fraction("core") == pytest.approx(0.75)
        assert report.normalised(1e-9)["mac"] == pytest.approx(3.0)
        with pytest.raises(ValueError):
            report.normalised(0.0)

    def test_negative_energy_rejected(self):
        report = EnergyReport(label="x")
        with pytest.raises(ValueError):
            report.add("mac", -1.0)

    def test_scaled_and_merged(self):
        a = EnergyReport(label="a")
        a.add("mac", 1e-9)
        b = EnergyReport(label="b")
        b.add("mac", 2e-9)
        b.add("fifo", 1e-9)
        merged = a.merged_with(b)
        assert merged.total_j == pytest.approx(4e-9)
        assert a.scaled(2.0).total_j == pytest.approx(2e-9)

    def test_ratio(self):
        a = EnergyReport(label="a"); a.add("x", 4e-9)
        b = EnergyReport(label="b"); b.add("x", 2e-9)
        assert EnergyReport.ratio(a, b) == pytest.approx(2.0)
        empty = EnergyReport(label="e")
        with pytest.raises(ZeroDivisionError):
            EnergyReport.ratio(a, empty)

    def test_merge_reports_helper(self):
        reports = []
        for i in range(3):
            r = EnergyReport(label=f"r{i}", group_map=RESPARC_GROUPS)
            r.add("switch", 1e-9)
            reports.append(r)
        merged = merge_reports(reports, label="sum")
        assert merged.total_j == pytest.approx(3e-9)

    def test_summary_mentions_groups(self):
        report = EnergyReport(label="x", group_map=RESPARC_GROUPS)
        report.add("crossbar_read", 1e-9)
        assert "crossbar" in report.summary()

    @given(st.lists(st.floats(min_value=0, max_value=1e-6), min_size=1, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_total_is_sum_of_components(self, values):
        report = EnergyReport(label="p")
        for index, value in enumerate(values):
            report.add(f"component_{index}", value)
        assert report.total_j == pytest.approx(sum(values))


class TestLatencyReport:
    def test_total_and_throughput(self):
        report = LatencyReport(label="l")
        report.add("compute", 2e-6)
        report.add("communication", 2e-6)
        assert report.total_s == pytest.approx(4e-6)
        assert report.throughput_per_s == pytest.approx(250_000)

    def test_speedup(self):
        fast = LatencyReport(label="f"); fast.add("compute", 1e-6)
        slow = LatencyReport(label="s"); slow.add("compute", 10e-6)
        assert fast.speedup_over(slow) == pytest.approx(10.0)

    def test_fraction_and_summary(self):
        report = LatencyReport(label="l")
        report.add("compute", 3e-6)
        report.add("memory_stall", 1e-6)
        assert report.fraction("compute") == pytest.approx(0.75)
        assert "compute" in report.summary()

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyReport(label="l").add("compute", -1.0)

    def test_empty_report_throughput_zero(self):
        assert LatencyReport(label="l").throughput_per_s == 0.0
