"""Wall-clock comparison of pipelined vs lock-step gateway dispatch.

A synchronous gateway runs one batch at a time: every batch waits for the
slowest endpoint shard before the next batch may start, so per-batch
stragglers add up (`sum over batches of max(shard latencies)`).  The async
gateway submits batches without blocking, and the per-endpoint locks let
batch k+1 start on an idle endpoint while a straggler still crunches batch
k — the total approaches `max over endpoints of sum(its shard latencies)`.

The two endpoints here wrap identical chip sessions behind scripted,
*alternating* artificial latencies (50 ms on A while B is instant, then the
reverse — the classic straggler pattern of a mixed fleet), so the pipelined
total is close to half the lock-step total regardless of chip speed.  The
comparison asserts both a speedup floor (multi-core runners only, like the
executor bench) and — always — that pipelining changes no numbers.
"""

from __future__ import annotations

import itertools
import os
import time

import numpy as np
import pytest

from repro.core import ArchitectureConfig
from repro.serve import ChipSession, InferenceRequest
from repro.serve.distributed import GatewayEndpoint, InferenceGateway
from repro.snn import Dense, Network, convert_to_snn

BATCHES = 6
DELAY_S = 0.05

#: Pipelined dispatch must beat lock-step dispatch by at least this factor
#: on the alternating-straggler latency script (the ideal is ~2x; the bound
#: is generous so chip compute and scheduling jitter cannot flake it).
PIPELINE_SPEEDUP_FLOOR = 1.25


class _StragglerEndpoint:
    """A chip session behind a scripted artificial latency sequence."""

    capacity = 1

    def __init__(self, session: ChipSession, delays_s):
        self._session = session
        self._delays_s = delays_s

    def infer(self, request: InferenceRequest):
        time.sleep(next(self._delays_s))
        return self._session.infer(request)


@pytest.fixture(scope="module")
def gateway_workload():
    rng = np.random.default_rng(31)
    network = Network(
        (48,),
        [
            Dense(48, 24, use_bias=False, rng=rng, name="fc1"),
            Dense(24, 10, activation=None, use_bias=False, rng=rng, name="out"),
        ],
        name="gateway-mlp",
    )
    snn = convert_to_snn(network, rng.random((16, 48)))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    requests = [
        InferenceRequest(inputs=rng.random((12, 48))) for _ in range(BATCHES)
    ]
    return snn, config, requests


def _make_gateway(snn, config):
    def session():
        return ChipSession(snn, config=config, timesteps=4, encoder="poisson", seed=3)

    # A stalls on even calls, B on odd calls: every batch has one straggler
    # shard, but the stragglers alternate endpoints.
    a = _StragglerEndpoint(session(), itertools.cycle([DELAY_S, 0.0]))
    b = _StragglerEndpoint(session(), itertools.cycle([0.0, DELAY_S]))
    return InferenceGateway(
        [
            GatewayEndpoint(target=a, name="a"),
            GatewayEndpoint(target=b, name="b"),
        ]
    )


def _lock_step(gateway, requests):
    return [gateway.infer(request) for request in requests]


def _pipelined(gateway, requests):
    futures = [gateway.submit(request) for request in requests]
    return [future.result() for future in futures]


def test_bench_pipelined_gateway(benchmark, gateway_workload):
    """Timing reference: all batches in flight at once across two endpoints."""
    snn, config, requests = gateway_workload
    with _make_gateway(snn, config) as gateway:
        responses = benchmark.pedantic(
            lambda: _pipelined(gateway, requests), iterations=1, rounds=3
        )
    assert len(responses) == BATCHES


def test_pipelined_beats_lock_step_dispatch(gateway_workload, persist_result):
    """Pipelined dispatch overlaps the alternating stragglers; lock-step cannot."""
    snn, config, requests = gateway_workload

    with _make_gateway(snn, config) as gateway:
        t0 = time.perf_counter()
        serial = _lock_step(gateway, requests)
        lock_step_s = time.perf_counter() - t0

    with _make_gateway(snn, config) as gateway:
        t0 = time.perf_counter()
        overlapped = _pipelined(gateway, requests)
        pipelined_s = time.perf_counter() - t0

    ratio = lock_step_s / pipelined_s
    persist_result(
        "async_gateway",
        "pipelined_vs_lock_step",
        {
            "batches": BATCHES,
            "endpoints": 2,
            "straggler_delay_s": DELAY_S,
            "lock_step_s": lock_step_s,
            "pipelined_s": pipelined_s,
            "speedup": ratio,
        },
    )
    print(
        f"\ngateway dispatch wall-clock ({BATCHES} batches, 2 endpoints, "
        f"{DELAY_S * 1e3:.0f}ms alternating straggler): "
        f"lock-step {lock_step_s:.3f}s, pipelined {pipelined_s:.3f}s, "
        f"speedup {ratio:.2f}x"
    )

    # Pipelining must never change the numbers, on any machine.
    for want, got in zip(serial, overlapped):
        np.testing.assert_array_equal(want.predictions, got.predictions)
        np.testing.assert_array_equal(want.spike_counts, got.spike_counts)
        assert got.energy.total_j == pytest.approx(want.energy.total_j, rel=1e-9)

    if (os.cpu_count() or 1) < 2:
        pytest.skip("pipelined-vs-lock-step threshold needs >= 2 cores")
    assert pipelined_s * PIPELINE_SPEEDUP_FLOOR < lock_step_s, (
        f"pipelined gateway dispatch only {ratio:.2f}x faster than lock-step "
        f"({pipelined_s:.3f}s vs {lock_step_s:.3f}s) — pipelining is not "
        f"overlapping the stragglers"
    )
