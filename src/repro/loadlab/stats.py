"""Dependency-free rank statistics for the load lab.

Serving latencies are heavy-tailed and the lab's sample counts are small,
so every contrast here is rank-based: no normality assumption, robust to
the stragglers that dominate queueing distributions.  Everything is NumPy
only — the p-values come from the classic normal / chi-squared
approximations with tie corrections, and the chi-squared survival function
is computed from a hand-rolled regularized incomplete gamma (series +
continued fraction), so the module imports nothing beyond :mod:`numpy`.

Provided:

* :func:`rankdata` — average ranks with tie sharing;
* :func:`mann_whitney_u` — two-sided Mann-Whitney U (normal approximation
  with tie correction), the lab's pairwise topology contrast;
* :func:`kruskal_wallis` — the omnibus "do these topologies differ at
  all?" test across a sweep row;
* :func:`holm_bonferroni` — step-down multiple-comparison correction for
  the pairwise p-values;
* :func:`spearman` — rank correlation (throughput vs energy-per-request
  across sweep cells).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "rankdata",
    "mann_whitney_u",
    "kruskal_wallis",
    "holm_bonferroni",
    "spearman",
    "chi2_sf",
    "normal_sf",
]


def rankdata(values: np.ndarray | list[float]) -> np.ndarray:
    """Average ranks (1-based); ties share the mean of their rank block."""
    a = np.asarray(values, dtype=float)
    if a.ndim != 1:
        raise ValueError(f"rankdata expects a 1-d array, got shape {a.shape}")
    order = np.argsort(a, kind="mergesort")
    ranks = np.empty(a.size, dtype=float)
    ranks[order] = np.arange(1, a.size + 1, dtype=float)
    sorted_a = a[order]
    i = 0
    while i < a.size:
        j = i
        while j + 1 < a.size and sorted_a[j + 1] == sorted_a[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def normal_sf(z: float) -> float:
    """Standard-normal survival function via the complementary error function."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def _gamma_p_series(s: float, x: float) -> float:
    """Regularized lower incomplete gamma by series (converges for x < s+1)."""
    term = 1.0 / s
    total = term
    for k in range(1, 500):
        term *= x / (s + k)
        total += term
        if abs(term) < abs(total) * 1e-15:
            break
    return total * math.exp(-x + s * math.log(x) - math.lgamma(s))


def _gamma_q_contfrac(s: float, x: float) -> float:
    """Regularized upper incomplete gamma by continued fraction (x >= s+1)."""
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for k in range(1, 500):
        an = -k * (k - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h * math.exp(-x + s * math.log(x) - math.lgamma(s))


def gammaincc(s: float, x: float) -> float:
    """Regularized upper incomplete gamma Q(s, x), s > 0, x >= 0."""
    if s <= 0:
        raise ValueError(f"s must be positive, got {s}")
    if x < 0:
        raise ValueError(f"x must be non-negative, got {x}")
    if x == 0:
        return 1.0
    if x < s + 1.0:
        return max(0.0, min(1.0, 1.0 - _gamma_p_series(s, x)))
    return max(0.0, min(1.0, _gamma_q_contfrac(s, x)))


def chi2_sf(x: float, df: float) -> float:
    """Chi-squared survival function P(X >= x) with ``df`` degrees of freedom."""
    if x <= 0:
        return 1.0
    return gammaincc(df / 2.0, x / 2.0)


def _tie_term(pooled_ranks_source: np.ndarray) -> float:
    """Sum of t^3 - t over tie groups of the pooled sample."""
    _, counts = np.unique(np.asarray(pooled_ranks_source, dtype=float), return_counts=True)
    return float(np.sum(counts.astype(float) ** 3 - counts))


def mann_whitney_u(
    x: np.ndarray | list[float], y: np.ndarray | list[float]
) -> dict[str, float]:
    """Two-sided Mann-Whitney U with normal approximation and tie correction.

    Returns ``{"u": U_x, "p": two-sided p, "effect": common-language effect
    size U_x / (n*m)}`` — ``effect`` > 0.5 means samples from ``x`` tend to
    exceed samples from ``y``.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    n, m = x.size, y.size
    if n == 0 or m == 0:
        raise ValueError("mann_whitney_u needs non-empty samples")
    pooled = np.concatenate([x, y])
    ranks = rankdata(pooled)
    u_x = float(np.sum(ranks[:n])) - n * (n + 1) / 2.0
    mean_u = n * m / 2.0
    total = n + m
    tie = _tie_term(pooled)
    var_u = (n * m / 12.0) * ((total + 1) - tie / (total * (total - 1))) if total > 1 else 0.0
    if var_u <= 0:
        # Every value identical: no evidence of a difference.
        return {"u": u_x, "p": 1.0, "effect": 0.5}
    z = (abs(u_x - mean_u) - 0.5) / math.sqrt(var_u)  # continuity correction
    p = min(1.0, 2.0 * normal_sf(max(0.0, z)))
    return {"u": u_x, "p": p, "effect": u_x / (n * m)}


def kruskal_wallis(groups: list[np.ndarray | list[float]]) -> dict[str, float]:
    """Kruskal-Wallis H test across ``groups`` (chi-squared approximation)."""
    arrays = [np.asarray(g, dtype=float) for g in groups]
    if len(arrays) < 2 or any(a.size == 0 for a in arrays):
        raise ValueError("kruskal_wallis needs >= 2 non-empty groups")
    pooled = np.concatenate(arrays)
    total = pooled.size
    ranks = rankdata(pooled)
    h = 0.0
    start = 0
    for a in arrays:
        r = ranks[start : start + a.size]
        h += float(np.sum(r)) ** 2 / a.size
        start += a.size
    h = 12.0 / (total * (total + 1)) * h - 3.0 * (total + 1)
    correction = 1.0 - _tie_term(pooled) / (total**3 - total) if total > 1 else 1.0
    if correction <= 0:
        return {"h": 0.0, "p": 1.0, "df": float(len(arrays) - 1)}
    h /= correction
    df = len(arrays) - 1
    return {"h": h, "p": chi2_sf(h, df), "df": float(df)}


def holm_bonferroni(p_values: list[float]) -> list[float]:
    """Holm step-down correction; returns adjusted p-values in input order."""
    m = len(p_values)
    if m == 0:
        return []
    order = sorted(range(m), key=lambda i: p_values[i])
    adjusted = [0.0] * m
    running_max = 0.0
    for rank, index in enumerate(order):
        value = min(1.0, (m - rank) * p_values[index])
        running_max = max(running_max, value)
        adjusted[index] = running_max
    return adjusted


def spearman(
    x: np.ndarray | list[float], y: np.ndarray | list[float]
) -> dict[str, float]:
    """Spearman rank correlation with a normal-approximation p-value.

    ``p`` uses the large-sample statistic z = rho * sqrt(n - 1); for the
    lab's cell counts this is conservative enough to flag a real
    throughput-energy trend without claiming precision it lacks.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("spearman needs two equal-length samples of size >= 2")
    rx = rankdata(x)
    ry = rankdata(y)
    sx = float(np.std(rx))
    sy = float(np.std(ry))
    if sx == 0 or sy == 0:
        return {"rho": 0.0, "p": 1.0, "n": float(x.size)}
    rho = float(np.mean((rx - np.mean(rx)) * (ry - np.mean(ry))) / (sx * sy))
    rho = max(-1.0, min(1.0, rho))
    if x.size < 3:
        return {"rho": rho, "p": 1.0, "n": float(x.size)}
    z = abs(rho) * math.sqrt(x.size - 1)
    return {"rho": rho, "p": min(1.0, 2.0 * normal_sf(z)), "n": float(x.size)}
