"""Benchmark workloads: the six SNNs of the paper's Fig. 10."""

from repro.workloads.networks import (
    build_cifar10_cnn,
    build_cifar10_mlp,
    build_mnist_cnn,
    build_mnist_mlp,
    build_svhn_cnn,
    build_svhn_mlp,
)
from repro.workloads.registry import (
    BENCHMARKS,
    BenchmarkSpec,
    build_benchmark,
    get_benchmark,
    list_benchmarks,
)

__all__ = [
    "build_cifar10_cnn",
    "build_cifar10_mlp",
    "build_mnist_cnn",
    "build_mnist_mlp",
    "build_svhn_cnn",
    "build_svhn_mlp",
    "BENCHMARKS",
    "BenchmarkSpec",
    "build_benchmark",
    "get_benchmark",
    "list_benchmarks",
]
