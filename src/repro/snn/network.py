"""Network container.

A :class:`Network` is an ordered sequence of layers with a fixed input shape.
It provides the ANN forward pass used during training and conversion, shape
inference, parameter/synapse counting (reported against Fig. 10 of the
paper), and deep copies used by the quantisation and conversion passes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.snn.layers import AvgPool2D, Conv2D, Dense, Flatten, Layer

__all__ = ["LayerInfo", "Network"]


@dataclass(frozen=True)
class LayerInfo:
    """Summary of one layer within a network."""

    index: int
    name: str
    kind: str
    input_shape: tuple[int, ...]
    output_shape: tuple[int, ...]
    neurons: int
    fan_in: int
    synapses: int
    parameters: int


class Network:
    """An ordered feed-forward stack of layers.

    Parameters
    ----------
    input_shape:
        Per-sample input shape, e.g. ``(784,)`` for MNIST MLPs or
        ``(28, 28, 1)`` for MNIST CNNs.
    layers:
        Layer instances applied in order.
    name:
        Optional identifier used in reports.
    """

    def __init__(self, input_shape: tuple[int, ...], layers: list[Layer], name: str = "network"):
        if not layers:
            raise ValueError("a network needs at least one layer")
        self.input_shape = tuple(int(d) for d in input_shape)
        self.layers = list(layers)
        self.name = name
        # Validate shapes eagerly so construction errors point at the layer.
        self.layer_shapes()

    # -- structure -----------------------------------------------------------

    def layer_shapes(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Per-layer (input_shape, output_shape) pairs."""
        shapes = []
        current = self.input_shape
        for layer in self.layers:
            out = layer.output_shape(current)
            shapes.append((current, out))
            current = out
        return shapes

    @property
    def output_shape(self) -> tuple[int, ...]:
        """Per-sample output shape of the final layer."""
        return self.layer_shapes()[-1][1]

    def layer_info(self) -> list[LayerInfo]:
        """Structural summary of every layer (neurons, fan-in, synapses)."""
        infos = []
        for index, (layer, (in_shape, out_shape)) in enumerate(zip(self.layers, self.layer_shapes())):
            neurons = int(np.prod(out_shape))
            if isinstance(layer, Dense):
                kind, fan_in = "dense", layer.n_in
                synapses = layer.n_in * layer.n_out
            elif isinstance(layer, Conv2D):
                kind, fan_in = "conv", layer.fan_in
                synapses = neurons * layer.fan_in
            elif isinstance(layer, AvgPool2D):
                kind, fan_in = "pool", layer.fan_in
                synapses = neurons * layer.fan_in
            elif isinstance(layer, Flatten):
                kind, fan_in, synapses = "reshape", 0, 0
            else:
                kind, fan_in, synapses = "other", 0, 0
            infos.append(
                LayerInfo(
                    index=index,
                    name=layer.name,
                    kind=kind,
                    input_shape=in_shape,
                    output_shape=out_shape,
                    neurons=neurons,
                    fan_in=fan_in,
                    synapses=synapses,
                    parameters=layer.parameter_count,
                )
            )
        return infos

    @property
    def neuron_count(self) -> int:
        """Total neurons excluding the input layer (the paper's convention).

        Reshape-only layers contribute no neurons.
        """
        return sum(info.neurons for info in self.layer_info() if info.kind != "reshape")

    @property
    def synapse_count(self) -> int:
        """Total unique connections across weighted and pooling layers."""
        return sum(info.synapses for info in self.layer_info())

    @property
    def parameter_count(self) -> int:
        """Total trainable parameters."""
        return sum(layer.parameter_count for layer in self.layers)

    @property
    def weighted_layers(self) -> list[Layer]:
        """Layers carrying trainable weights (dense and conv)."""
        return [l for l in self.layers if isinstance(l, (Dense, Conv2D))]

    # -- execution -------------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """ANN forward pass over a batch."""
        out = np.asarray(x, dtype=float)
        expected = (out.shape[0],) + self.input_shape
        if out.shape != expected:
            raise ValueError(
                f"{self.name}: input batch has shape {out.shape}, expected {expected}"
            )
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax of the final layer)."""
        return np.argmax(self.forward(x), axis=1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled batch."""
        return float(np.mean(self.predict(x) == np.asarray(labels)))

    # -- copies ---------------------------------------------------------------

    def copy(self) -> "Network":
        """Deep copy (weights included)."""
        return copy.deepcopy(self)

    # -- reporting --------------------------------------------------------------

    def summary(self) -> str:
        """Human readable multi-line structural summary."""
        lines = [f"Network {self.name!r}  input {self.input_shape}"]
        for info in self.layer_info():
            lines.append(
                f"  [{info.index}] {info.name:<28} {info.kind:<8} "
                f"out={info.output_shape!s:<16} neurons={info.neurons:<8} "
                f"fan_in={info.fan_in:<6} synapses={info.synapses}"
            )
        lines.append(
            f"  total neurons={self.neuron_count} synapses={self.synapse_count} "
            f"parameters={self.parameter_count}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Network(name={self.name!r}, layers={len(self.layers)}, neurons={self.neuron_count})"
