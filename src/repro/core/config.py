"""RESPARC architecture configuration.

Captures the micro-architectural parameters of Fig. 8 (one NeuroCell: a 4x4
array of mPEs with 4 MCAs each, a 3x3 programmable-switch network, 64-bit
architecture, 200 MHz at 45 nm) together with the crossbar technology choice
and the event-driven feature switches the experiments toggle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.crossbar.device import DeviceParameters
from repro.utils.validation import check_positive

__all__ = ["ArchitectureConfig"]


@dataclass(frozen=True)
class ArchitectureConfig:
    """Static configuration of a RESPARC instance.

    Attributes
    ----------
    crossbar_rows / crossbar_columns:
        MCA geometry (the paper studies square 32/64/128 crossbars).
    mcas_per_mpe:
        MCAs inside one macro Processing Engine (4 in Fig. 8).
    mpes_per_neurocell:
        mPEs inside one NeuroCell (16, arranged 4x4, in Fig. 8).
    packet_bits:
        Spike-packet width used by buffers, switches and the zero-check
        logic (the paper analyses 32-bit packets in Fig. 13).
    word_bits:
        Global architecture word width (64-bit, Fig. 8).
    frequency_hz:
        Digital peripheral clock (200 MHz, Fig. 8).
    event_driven:
        Master switch for the event-driven optimisations: zero-check gating
        of switch transfers, bus broadcasts and crossbar evaluations.
    neurocell_boundary_fraction:
        Fraction of a spatially-local (conv/pool) layer boundary's traffic
        that still has to cross NeuroCells over the shared bus because the
        consumer windows at NeuroCell edges need producer outputs mapped to
        the neighbouring cell.  0.05 models a 4x4-mPE cell's perimeter share.
    device:
        Memristive device technology programmed into the MCAs.
    input_sram_bytes:
        Capacity of the global input memory (SRAM on the IO bus).
    area_mm2 / power_w / gate_count:
        Published per-NeuroCell implementation metrics (Fig. 8), retained for
        envelope validation and reporting.
    """

    crossbar_rows: int = 64
    crossbar_columns: int = 64
    mcas_per_mpe: int = 4
    mpes_per_neurocell: int = 16
    packet_bits: int = 32
    word_bits: int = 64
    frequency_hz: float = 200e6
    event_driven: bool = True
    neurocell_boundary_fraction: float = 0.05
    device: DeviceParameters = field(default_factory=DeviceParameters)
    input_sram_bytes: int = 128 * 1024
    area_mm2: float = 0.29
    power_w: float = 53.2e-3
    gate_count: int = 67643

    def __post_init__(self) -> None:
        check_positive("crossbar_rows", self.crossbar_rows)
        check_positive("crossbar_columns", self.crossbar_columns)
        check_positive("mcas_per_mpe", self.mcas_per_mpe)
        check_positive("mpes_per_neurocell", self.mpes_per_neurocell)
        check_positive("packet_bits", self.packet_bits)
        check_positive("word_bits", self.word_bits)
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("input_sram_bytes", self.input_sram_bytes)
        if not 0.0 <= self.neurocell_boundary_fraction <= 1.0:
            raise ValueError(
                "neurocell_boundary_fraction must be in [0, 1], got "
                f"{self.neurocell_boundary_fraction}"
            )

    # -- derived quantities -----------------------------------------------------

    @property
    def crossbar_size(self) -> int:
        """Square MCA side length (rows; equals columns in all paper configs)."""
        return self.crossbar_rows

    @property
    def mcas_per_neurocell(self) -> int:
        """MCAs inside one NeuroCell."""
        return self.mcas_per_mpe * self.mpes_per_neurocell

    @property
    def switches_per_neurocell(self) -> int:
        """Programmable switches per NeuroCell ((ceil(sqrt(mpes))-1)^2; 9 for a 4x4 array).

        Matches the grid :class:`~repro.core.neurocell.NeuroCell` instantiates,
        including non-square mPE counts (which occupy the smallest enclosing
        square grid).
        """
        side = math.ceil(self.mpes_per_neurocell**0.5)
        return max(side - 1, 1) ** 2

    @property
    def cycle_s(self) -> float:
        """Clock period of the digital peripherals."""
        return 1.0 / self.frequency_hz

    @property
    def synapses_per_neurocell(self) -> int:
        """Maximum synapses one NeuroCell can hold (fully utilised MCAs)."""
        return self.mcas_per_neurocell * self.crossbar_rows * self.crossbar_columns

    # -- variants ------------------------------------------------------------------

    def with_crossbar_size(self, size: int) -> "ArchitectureConfig":
        """Copy with a different (square) MCA size — RESPARC-32/64/128."""
        check_positive("size", size)
        return replace(self, crossbar_rows=int(size), crossbar_columns=int(size))

    def with_event_driven(self, enabled: bool) -> "ArchitectureConfig":
        """Copy with event-driven optimisations switched on or off."""
        return replace(self, event_driven=bool(enabled))

    def with_weight_bits(self, bits: int) -> "ArchitectureConfig":
        """Copy with a different memristor weight precision."""
        return replace(self, device=self.device.with_bits(bits))
