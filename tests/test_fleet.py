"""The elastic fleet: replica lifecycle, graceful drain, autoscaling, membership.

The PR-7 subsystem held to the established parity bar — scaling the fleet
may change *placement* and *throughput*, never numbers:

* **replica lifecycle**: :class:`ReplicaManager` boots real ChipServer
  processes from a picklable :class:`SessionSpec`, health-checks them, and
  the served results match a single :class:`~repro.serve.ChipSession`
  exactly;
* the **graceful ``drain`` op**: a draining server refuses new work with a
  structured ``draining`` error but answers everything already admitted —
  no in-flight request is ever failed by a scale-down;
* **dynamic gateway membership**: endpoints join, drain and leave while
  batches are in flight, with every merged response bit-identical to the
  single-session run, and ``submit()`` never polling an endpoint
  synchronously;
* the **autoscaling controller**: EWMA pressure + hysteresis, proven
  deterministic against a scripted fleet and an injected clock, then live
  against real replica processes under a synthetic-latency flood.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import ArchitectureConfig
from repro.serve import ChipSession, InferenceRequest
from repro.serve.distributed import (
    ChipServer,
    GatewayEndpoint,
    InferenceGateway,
    PipelinedSession,
    RemoteServerError,
)
from repro.serve.distributed.executors import SessionSpec
from repro.serve.fleet import (
    ElasticFleet,
    FleetController,
    FleetPolicy,
    ReplicaManager,
    ReplicaSpec,
)
from repro.serve.schema import ERROR_DRAINING, ERROR_OVERLOADED
from repro.snn import Dense, Network, convert_to_snn

ENERGY_RTOL = 1e-9


def _mlp(seed: int, dims: tuple[int, ...]):
    rng = np.random.default_rng(seed)
    layers = []
    for i, (n_in, n_out) in enumerate(zip(dims[:-1], dims[1:])):
        last = i == len(dims) - 2
        layers.append(
            Dense(
                n_in,
                n_out,
                activation=None if last else "relu",
                use_bias=False,
                rng=rng,
                name=f"fc{i}",
            )
        )
    network = Network((dims[0],), layers, name=f"fleet-{'x'.join(map(str, dims))}")
    return convert_to_snn(network, rng.random((12, dims[0])))


@pytest.fixture(scope="module")
def workload():
    snn = _mlp(9, (48, 24, 10))
    config = ArchitectureConfig(crossbar_rows=16, crossbar_columns=16)
    rng = np.random.default_rng(33)
    inputs = rng.random((13, 48))
    labels = rng.integers(0, 10, size=13)
    return snn, config, inputs, labels


@pytest.fixture(scope="module")
def single_session(workload):
    snn, config, _, _ = workload
    return ChipSession(snn, config=config, timesteps=5, encoder="poisson", seed=21)


def _fresh_session(workload):
    snn, config, _, _ = workload
    return ChipSession(snn, config=config, timesteps=5, encoder="poisson", seed=21)


@pytest.fixture(scope="module")
def session_spec(workload):
    snn, config, _, _ = workload
    primary = ChipSession(snn, config=config, timesteps=5, encoder="poisson", seed=21)
    assert primary.encoder_state is not None
    return SessionSpec(
        snn=snn,
        config=primary.config,
        library=None,
        timesteps=5,
        backend="vectorized",
        seed=21,
        encoder_state=primary.encoder_state,
    )


def _assert_identical(expected, actual):
    np.testing.assert_array_equal(expected.predictions, actual.predictions)
    np.testing.assert_array_equal(expected.spike_counts, actual.spike_counts)
    e, a = expected.counters.as_dict(), actual.counters.as_dict()
    for name, value in e.items():
        if name == "crossbar_device_energy_j":
            assert a[name] == pytest.approx(value, rel=ENERGY_RTOL)
        else:
            assert a[name] == value, f"counter {name}: {a[name]} != {value}"
    assert actual.energy.total_j == pytest.approx(
        expected.energy.total_j, rel=ENERGY_RTOL
    )


class _GatedTarget:
    """Holds every dispatch at a gate so drain races are deterministic."""

    def __init__(self, session):
        self._session = session
        self.entered = threading.Event()
        self.release = threading.Event()

    def __getattr__(self, name):
        return getattr(self._session, name)

    def infer(self, request):
        self.entered.set()
        assert self.release.wait(timeout=60), "gate never released"
        return self._session.infer(request)


# -- replica lifecycle --------------------------------------------------------------


class TestReplicaLifecycle:
    def test_boot_identity_serve_and_drain(self, workload, session_spec, single_session):
        _, _, inputs, _ = workload
        spec = ReplicaSpec(session_spec=session_spec, workload="fleet-test")
        manager = ReplicaManager(spec, boot_timeout_s=120.0)
        replica = manager.start_replica()
        try:
            assert replica.alive
            assert len(manager) == 1
            info = replica.client.info(refresh=True)
            # The identity triple the controller (and smoke CLI) reads.
            assert info["replica_id"] == replica.replica_id
            assert info["pid"] == replica.process.pid
            assert info["state"] == "serving"
            assert manager.check_health() == {replica.replica_id: True}
            request = InferenceRequest(inputs=inputs[:6])
            _assert_identical(
                single_session.infer(request),
                replica.client.infer(request),
            )
        finally:
            manager.stop_all()
        assert len(manager) == 0
        assert not replica.alive
        assert replica.exitcode == 0, "drained replica must exit cleanly"

    def test_drain_of_dead_replica_is_clean(self, session_spec):
        spec = ReplicaSpec(session_spec=session_spec, workload="fleet-dead")
        manager = ReplicaManager(spec, boot_timeout_s=120.0)
        replica = manager.start_replica()
        replica.process.terminate()
        replica.process.join(timeout=10)
        # An already-dead replica drains without raising (health said no).
        manager.drain_replica(replica, timeout_s=10.0)
        assert len(manager) == 0


# -- the graceful drain op ----------------------------------------------------------


class TestDrainOp:
    def test_drain_answers_admitted_work_and_refuses_new(self, workload):
        """The drain contract: admitted work exact, new work refused, loop exits."""
        _, _, inputs, _ = workload
        serial = _fresh_session(workload)
        gate = _GatedTarget(_fresh_session(workload))
        head = InferenceRequest(inputs=inputs[:5])
        queued = InferenceRequest(inputs=inputs[5:9], sample_offset=5)
        with ChipServer(gate, port=0, workload="drain-test").start() as server:
            with PipelinedSession.connect(
                server.address, connections=1, timeout=60
            ) as client:
                future_head = client.submit(head)
                assert gate.entered.wait(timeout=30)
                future_queued = client.submit(queued)
                # Wait for the queued request to be *admitted* (decode runs
                # off-loop, so a prompt drain could overtake it and shed it).
                deadline = time.monotonic() + 30
                while client.info(refresh=True).get("queue_depth", 0) < 1:
                    assert time.monotonic() < deadline, (
                        "queued request never reached the server queue"
                    )
                    time.sleep(0.01)
                ack = client.drain_server(timeout=30)
                assert ack["draining"] is True
                assert ack["was_draining"] is False
                # Everything after the drain gets the structured refusal.
                with pytest.raises(RemoteServerError) as excinfo:
                    client.submit(head).result(timeout=30)
                assert excinfo.value.code == ERROR_DRAINING
                # A second drain is idempotent, not an error.
                assert client.drain_server(timeout=30)["was_draining"] is True
                info = client.info(refresh=True)
                assert info["state"] == "draining"
                assert info["stats"]["drain_rejected"] == 1
                gate.release.set()
                # Both admitted requests still get their exact answers.
                _assert_identical(serial.infer(head), future_head.result(timeout=60))
                _assert_identical(
                    serial.infer(queued), future_queued.result(timeout=60)
                )
            # The serving loop exits on its own once the queue is answered.
            deadline = time.monotonic() + 30
            while server._thread.is_alive():
                assert time.monotonic() < deadline, "drained server never exited"
                time.sleep(0.01)


# -- dynamic gateway membership -----------------------------------------------------


class TestGatewayMembership:
    def test_membership_changes_mid_stream_stay_exact(self, workload, single_session):
        """add/drain/remove between batches: every merge stays bit-identical."""
        _, _, inputs, _ = workload
        request = InferenceRequest(inputs=inputs[:12])
        expected = single_session.infer(request)
        gateway = InferenceGateway(
            [
                GatewayEndpoint(target=_fresh_session(workload), name="a"),
                GatewayEndpoint(target=_fresh_session(workload), name="b"),
            ],
            name="membership",
            load_poll_s=3600.0,
        )
        with gateway:
            _assert_identical(expected, gateway.infer(request))
            gateway.add_endpoint(
                GatewayEndpoint(target=_fresh_session(workload), name="c")
            )
            assert [e.name for e in gateway.endpoints] == ["a", "b", "c"]
            _assert_identical(expected, gateway.infer(request))
            gateway.drain_endpoint("a")
            # A draining endpoint never appears in a new plan.
            plan = gateway.shard_plan(12)
            assert all(shard.endpoint.name != "a" for shard in plan)
            _assert_identical(expected, gateway.infer(request))
            gateway.remove_endpoint("a")
            assert [e.name for e in gateway.endpoints] == ["b", "c"]
            _assert_identical(expected, gateway.infer(request))
            # Draining the whole fleet leaves nothing to plan onto.
            gateway.drain_endpoint("b")
            gateway.drain_endpoint("c")
            with pytest.raises(RuntimeError, match="no serving endpoints"):
                gateway.shard_plan(12)

    def test_unknown_endpoint_names_raise(self, workload):
        with InferenceGateway(
            [GatewayEndpoint(target=_fresh_session(workload), name="a")],
            name="unknown-name",
            load_poll_s=3600.0,
        ) as gateway:
            with pytest.raises(KeyError):
                gateway.drain_endpoint("nope")
            with pytest.raises(KeyError):
                gateway.remove_endpoint("nope")
            with pytest.raises(ValueError, match="already has an endpoint"):
                gateway.add_endpoint(
                    GatewayEndpoint(target=_fresh_session(workload), name="a")
                )

    def test_inflight_plan_completes_against_drained_endpoint(
        self, workload, single_session
    ):
        """Draining mid-flight never reroutes a shard already placed."""
        _, _, inputs, _ = workload
        gate = _GatedTarget(_fresh_session(workload))
        request = InferenceRequest(inputs=inputs[:12])
        expected = single_session.infer(request)
        with InferenceGateway(
            [
                GatewayEndpoint(target=gate, name="gated"),
                GatewayEndpoint(target=_fresh_session(workload), name="plain"),
            ],
            name="inflight-drain",
            load_poll_s=3600.0,
        ) as gateway:
            future = gateway.submit(request)
            assert gate.entered.wait(timeout=30)
            gateway.drain_endpoint("gated")
            gate.release.set()
            response = future.result(timeout=60)
            _assert_identical(expected, response)
            # The gated endpoint really served its planned shard.
            assert any(
                shard["endpoint"] == "gated"
                for shard in response.metadata["shards"]
            )

    def test_draining_server_sheds_onto_sibling(self, workload, single_session):
        """A racing scale-down's ``draining`` error retries on a sibling."""
        _, _, inputs, _ = workload

        class _DrainingTarget:
            capacity = 1

            def __init__(self):
                self.calls = 0

            def infer(self, request):
                self.calls += 1
                raise RemoteServerError(
                    "server is draining; request refused", code=ERROR_DRAINING
                )

        draining = _DrainingTarget()
        request = InferenceRequest(inputs=inputs[:12])
        expected = single_session.infer(request)
        with InferenceGateway(
            [
                GatewayEndpoint(target=draining, name="retiring"),
                GatewayEndpoint(target=_fresh_session(workload), name="sibling"),
            ],
            name="drain-shed",
            load_poll_s=3600.0,
        ) as gateway:
            response = gateway.infer(request)
        assert draining.calls == 1
        _assert_identical(expected, response)
        retried = [
            shard
            for shard in response.metadata["shards"]
            if shard.get("retried_from") == "retiring"
        ]
        assert retried, f"expected a retried shard: {response.metadata}"

    def test_submit_never_polls_endpoints_synchronously(self, workload):
        """The submit path reads cached hints only; polls live on the refresher."""
        _, _, inputs, _ = workload

        class _PollRecorder:
            capacity = 1
            submit = None  # pipelined marker: presence makes the target pollable

            def __init__(self, session):
                self._session = session
                self.polls = 0

            def info(self, refresh: bool = False, *, timeout: float | None = None):
                self.polls += 1
                return {"queue_depth": 0, "inflight": 0}

            def infer(self, request):
                return self._session.infer(request)

        recorders = [
            _PollRecorder(_fresh_session(workload)),
            _PollRecorder(_fresh_session(workload)),
        ]
        with InferenceGateway(
            [
                GatewayEndpoint(target=recorder, name=f"r{i}")
                for i, recorder in enumerate(recorders)
            ],
            name="no-sync-polls",
            load_poll_s=3600.0,
        ) as gateway:
            for _ in range(3):
                gateway.infer(InferenceRequest(inputs=inputs[:8]))
            assert [r.polls for r in recorders] == [0, 0], (
                "submit() must never poll an endpoint synchronously"
            )
            gateway.refresh_load_hints()
            assert [r.polls for r in recorders] == [1, 1]

    def test_close_joins_the_load_refresher(self, workload):
        """No daemon-thread leak: close() stops and joins the refresher."""
        for cycle in range(3):
            name = f"refresh-close-{cycle}"
            gateway = InferenceGateway(
                [GatewayEndpoint(target=_fresh_session(workload), name="a")],
                name=name,
                load_poll_s=0.01,
            )
            thread_name = f"{name}-load-refresh"
            assert any(
                t.name == thread_name for t in threading.enumerate()
            ), "adaptive gateway must run a load refresher"
            gateway.close()
            assert not any(
                t.name == thread_name and t.is_alive()
                for t in threading.enumerate()
            ), "close() must join the refresher thread"


# -- the autoscaling controller (scripted, deterministic) ---------------------------


class _ScriptedFleet:
    """A fleet whose load and scaling the test scripts directly."""

    def __init__(self, replicas: int = 1):
        self.replicas = replicas
        self.backlog = 0.0
        self.shed_total = 0
        self.refuse = False

    def replica_count(self) -> int:
        return self.replicas

    def load_signals(self):
        return [
            {"backlog": self.backlog, "shed": self.shed_total}
            for _ in range(self.replicas)
        ]

    def scale_up(self) -> bool:
        if self.refuse:
            return False
        self.replicas += 1
        return True

    def scale_down(self) -> bool:
        if self.refuse:
            return False
        self.replicas -= 1
        return True


class TestFleetController:
    def _policy(self, **overrides):
        defaults = dict(
            min_replicas=1,
            max_replicas=3,
            interval_s=0.1,
            target_backlog=2.0,
            scale_up_stable_s=1.0,
            idle_backlog=0.5,
            scale_down_stable_s=2.0,
            cooldown_s=3.0,
            ewma_alpha=1.0,
        )
        defaults.update(overrides)
        return FleetPolicy(**defaults)

    def test_hysteresis_is_deterministic_under_an_injected_clock(self):
        fleet = _ScriptedFleet(replicas=1)
        controller = FleetController(fleet, self._policy())
        fleet.backlog = 5.0
        # Above target, but not yet sustained for scale_up_stable_s.
        assert controller.step(now=0.0) is None
        assert controller.step(now=0.5) is None
        event = controller.step(now=1.0)
        assert event["event"] == "scale_up"
        assert (event["replicas_before"], event["replicas_after"]) == (1, 2)
        # Hysteresis re-armed + cooldown: sustained pressure alone is not
        # enough until cooldown_s elapsed since the last action.
        assert controller.step(now=1.5) is None
        assert controller.step(now=2.5) is None
        event = controller.step(now=4.0)
        assert event["event"] == "scale_up"
        assert fleet.replicas == 3
        # At max_replicas the controller refuses to even try.
        assert controller.step(now=5.5) is None
        assert fleet.replicas == 3

    def test_scale_down_needs_a_sustained_idle_window(self):
        fleet = _ScriptedFleet(replicas=3)
        controller = FleetController(fleet, self._policy())
        fleet.backlog = 0.0
        assert controller.step(now=0.0) is None
        assert controller.step(now=1.9) is None  # idle 1.9s < 2.0s
        event = controller.step(now=2.0)
        assert event["event"] == "scale_down"
        assert fleet.replicas == 2
        # Next scale-down needs a fresh idle window *and* the cooldown.
        assert controller.step(now=3.0) is None
        assert controller.step(now=4.9) is None
        event = controller.step(now=5.0)
        assert event["event"] == "scale_down"
        assert fleet.replicas == 1
        # Never below min_replicas, no matter how long the idle lasts.
        for now in (8.0, 12.0, 20.0):
            assert controller.step(now=now) is None
        assert fleet.replicas == 1

    def test_bursty_pressure_does_not_flap(self):
        """A signal that dips below target resets the sustained window."""
        fleet = _ScriptedFleet(replicas=1)
        controller = FleetController(fleet, self._policy())
        fleet.backlog = 5.0
        assert controller.step(now=0.0) is None
        fleet.backlog = 0.0  # the burst ends before the window fills
        assert controller.step(now=0.9) is None
        fleet.backlog = 5.0
        assert controller.step(now=1.0) is None  # window restarted at 1.0
        assert controller.step(now=1.9) is None
        assert controller.step(now=2.0)["event"] == "scale_up"

    def test_refused_actions_are_recorded_not_retried_blindly(self):
        fleet = _ScriptedFleet(replicas=1)
        controller = FleetController(fleet, self._policy())
        fleet.backlog = 5.0
        fleet.refuse = True
        assert controller.step(now=0.0) is None
        assert controller.step(now=1.0) is None
        assert fleet.replicas == 1
        assert controller.events[-1]["event"] == "scale_up_refused"
        # The refusal did not burn the cooldown: once the fleet accepts,
        # the still-sustained window acts immediately.
        fleet.refuse = False
        assert controller.step(now=1.1)["event"] == "scale_up"

    def test_shed_counters_raise_pressure_and_never_go_negative(self):
        fleet = _ScriptedFleet(replicas=1)
        policy = self._policy(ewma_alpha=0.5)
        controller = FleetController(fleet, policy)
        controller.step(now=0.0)  # seeds EWMAs and the shed baseline at 0
        fleet.shed_total = 4
        controller.step(now=1.0)
        status = controller.status()
        # delta 4 sheds / 1 replica, EWMA alpha 0.5 over a 0 seed -> 2.0.
        assert status["ewma_shed_rate"] == pytest.approx(2.0)
        assert status["pressure"] == pytest.approx(
            status["ewma_backlog"] + policy.shed_weight * 2.0
        )
        # A retiring replica stepping the cumulative counter *down* clamps
        # the delta at zero instead of producing negative pressure.
        fleet.shed_total = 1
        controller.step(now=2.0)
        assert controller.status()["ewma_shed_rate"] == pytest.approx(1.0)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="min_replicas"):
            FleetPolicy(min_replicas=0)
        with pytest.raises(ValueError, match="max_replicas"):
            FleetPolicy(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError, match="ewma_alpha"):
            FleetPolicy(ewma_alpha=0.0)
        with pytest.raises(ValueError, match="idle_backlog"):
            FleetPolicy(idle_backlog=3.0, target_backlog=2.0)


# -- the live fleet (real replica processes) ----------------------------------------


class TestElasticFleet:
    def test_flood_scales_up_then_idles_down_to_min_exactly(
        self, workload, session_spec
    ):
        """The whole loop: flood -> scale-up -> exact merges -> idle -> min."""
        _, _, inputs, _ = workload
        serial = _fresh_session(workload)
        spec = ReplicaSpec(
            session_spec=session_spec,
            workload="fleet-live",
            dispatch_delay_s=0.05,
        )
        policy = FleetPolicy(
            min_replicas=1,
            max_replicas=2,
            interval_s=0.05,
            target_backlog=1.0,
            scale_up_stable_s=0.1,
            idle_backlog=0.25,
            scale_down_stable_s=0.3,
            cooldown_s=0.2,
        )
        requests = [
            InferenceRequest(inputs=inputs[offset : offset + 4], sample_offset=offset)
            for offset in (0, 3, 6, 9) * 6
        ]
        expected = {offset: serial.infer(request) for offset, request in
                    {r.sample_offset: r for r in requests}.items()}
        with ElasticFleet(
            spec, policy=policy, name="live-fleet", gateway_load_poll_s=0.05
        ) as fleet:
            assert fleet.replica_count() == 1
            futures = [fleet.submit(request) for request in requests]
            for request, future in zip(requests, futures):
                _assert_identical(
                    expected[request.sample_offset], future.result(timeout=120)
                )
            status = fleet.fleet_status()
            assert status["controller"]["actions"]["scale_up"] >= 1, (
                f"the flood never scaled the fleet up: {status}"
            )
            # The flood is answered; a sustained idle window shrinks the
            # fleet back to the floor — and never below it.
            deadline = time.monotonic() + 60
            while fleet.replica_count() > policy.min_replicas:
                assert time.monotonic() < deadline, (
                    f"fleet never scaled back down: {fleet.fleet_status()}"
                )
                time.sleep(0.05)
            time.sleep(0.5)
            assert fleet.replica_count() == policy.min_replicas
            # One more request after all the churn: still exact.
            _assert_identical(expected[0], fleet.infer(requests[0]))
            replicas = fleet.manager.replicas
        assert fleet.replica_count() == 0
        for replica in replicas:
            assert not replica.alive
            assert replica.exitcode == 0, (
                f"replica {replica.replica_id} exited with {replica.exitcode}"
            )

    def test_scale_bounds_are_enforced_by_the_fleet_itself(
        self, workload, session_spec
    ):
        spec = ReplicaSpec(session_spec=session_spec, workload="fleet-bounds")
        policy = FleetPolicy(min_replicas=1, max_replicas=1, scale_down_stable_s=1.0)
        with ElasticFleet(
            spec, policy=policy, name="bounds-fleet", start_controller=False
        ) as fleet:
            assert fleet.replica_count() == 1
            assert fleet.scale_up() is False
            assert fleet.scale_down() is False
            assert fleet.replica_count() == 1
