"""Counters, gauges and fixed-bucket histograms with zero dependencies.

The registry is a flat family store: ``registry.counter(name)`` returns the
(one) family for that name, and a family fans out into label-keyed children
(``family.labels(endpoint="r1").inc()``).  A family used without labels has
a single anonymous child, which keeps the common case — one server, one
series — free of label bookkeeping.

Histograms use *fixed* bucket edges chosen at creation.  That buys three
properties the serving stack needs:

* observation is O(log #buckets) (one bisect + two adds) — cheap enough
  for the batched hot path;
* two histograms with the same edges merge by elementwise addition, which
  is associative and commutative — fleet-level aggregation never re-reads
  raw samples;
* percentile extraction is a cumulative scan with linear interpolation
  inside the owning bucket, so p50/p95/p99 are bounded by that bucket's
  edges (the property tests pin this).

A registry constructed with ``enabled=False`` (or flipped with
``set_enabled``) turns every write into an early return before any lock is
taken — the "no-op mode" the overhead guard benchmarks against.
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "REGISTRY",
    "get_default_registry",
    "set_default_enabled",
]

# Latency edges in seconds: half-decade steps from 0.5ms to 10s.  The +Inf
# bucket is implicit (every histogram has one more count slot than edges).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Child:
    """Shared plumbing for one labelled series of a family."""

    __slots__ = ("_family", "_labels", "_lock")

    def __init__(self, family: "_Family", labels: dict[str, str]):
        self._family = family
        self._labels = dict(labels)
        self._lock = threading.Lock()

    @property
    def labels_dict(self) -> dict[str, str]:
        return dict(self._labels)

    def _enabled(self) -> bool:
        return self._family._registry._enabled


class Counter(_Child):
    """Monotonically increasing value (float, but usually integral)."""

    __slots__ = ("_value",)

    def __init__(self, family: "_Family", labels: dict[str, str]):
        super().__init__(family, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled():
            return
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Child):
    """A value that can go up and down (queue depth, inflight, ...)."""

    __slots__ = ("_value",)

    def __init__(self, family: "_Family", labels: dict[str, str]):
        super().__init__(family, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._enabled():
            return
        with self._lock:
            self._value = float(value)

    def set_max(self, value: float) -> None:
        """Ratchet upward: keep the running maximum (``max_coalesced``)."""
        if not self._enabled():
            return
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._enabled():
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Child):
    """Fixed-bucket histogram with count/sum and percentile extraction."""

    __slots__ = ("_edges", "_counts", "_count", "_sum")

    def __init__(
        self,
        family: "_Family",
        labels: dict[str, str],
        edges: tuple[float, ...],
    ):
        super().__init__(family, labels)
        self._edges = edges
        # counts[i] is the number of observations in (edges[i-1], edges[i]];
        # the final slot is the +Inf bucket.
        self._counts = [0] * (len(edges) + 1)
        self._count = 0
        self._sum = 0.0

    @property
    def edges(self) -> tuple[float, ...]:
        return self._edges

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> list[int]:
        return list(self._counts)

    def observe(self, value: float) -> None:
        if not self._enabled():
            return
        value = float(value)
        if math.isnan(value):
            return
        index = bisect_left(self._edges, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    def percentile(self, q: float) -> float:
        """Linear-interpolated quantile estimate, ``q`` in [0, 1].

        The estimate always lies within the edges of the bucket holding
        the target rank; the +Inf bucket clamps to the last finite edge
        (there is nothing to interpolate against past it).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                if index >= len(self._edges):
                    # +Inf bucket: clamp to the last finite edge.
                    return self._edges[-1] if self._edges else 0.0
                upper = self._edges[index]
                lower = self._edges[index - 1] if index > 0 else 0.0
                position = (rank - (cumulative - bucket_count)) / bucket_count
                estimate = lower + (upper - lower) * min(max(position, 0.0), 1.0)
                # lower + (upper - lower) can round one ULP past upper when
                # the bucket spans many orders of magnitude; pin the estimate
                # to the bucket so the documented bound holds exactly.
                return min(max(estimate, lower), upper)
        return self._edges[-1] if self._edges else 0.0

    def percentiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        return {f"p{int(q * 100)}": self.percentile(q) for q in qs}

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram (same edges)."""
        if other._edges != self._edges:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self._edges} vs {other._edges}"
            )
        with other._lock:
            counts = list(other._counts)
            count = other._count
            total = other._sum
        with self._lock:
            for index, bucket_count in enumerate(counts):
                self._counts[index] += bucket_count
            self._count += count
            self._sum += total


class _Family:
    """All series sharing one metric name/type/help."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help_text: str,
        edges: tuple[float, ...] | None = None,
    ):
        self._registry = registry
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.edges = edges
        self._children: dict[tuple[tuple[str, str], ...], _Child] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str):
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "counter":
                        child = Counter(self, labels)
                    elif self.kind == "gauge":
                        child = Gauge(self, labels)
                    else:
                        assert self.edges is not None
                        child = Histogram(self, labels, self.edges)
                    self._children[key] = child
        return child

    @property
    def children(self) -> list[_Child]:
        with self._lock:
            return list(self._children.values())

    # The anonymous (label-free) child covers the common single-series case:
    # family.inc() / family.observe() / family.set() delegate to it.

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_max(self, value: float) -> None:
        self.labels().set_max(value)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def percentile(self, q: float) -> float:
        return self.labels().percentile(q)

    def percentiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        return self.labels().percentiles(qs)

    @property
    def value(self) -> float:
        return self.labels().value

    @property
    def count(self) -> int:
        return self.labels().count


class MetricsRegistry:
    """A process-local store of metric families.

    ``enabled=None`` inherits the module default (overridable with
    :func:`set_default_enabled` or the ``REPRO_METRICS_DISABLED`` env var),
    so a single switch turns the whole plane into no-ops.
    """

    def __init__(self, *, enabled: bool | None = None):
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()
        self._enabled = _DEFAULT_ENABLED if enabled is None else bool(enabled)

    # -- switches -----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        self._enabled = bool(enabled)

    # -- family accessors (get-or-create, idempotent) -----------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        edges: tuple[float, ...] | None = None,
    ) -> _Family:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
            return family
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(self, name, kind, help_text, edges)
                self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "") -> _Family:
        return self._family(name, "counter", help_text)

    def gauge(self, name: str, help_text: str = "") -> _Family:
        return self._family(name, "gauge", help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> _Family:
        edges = tuple(float(edge) for edge in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must be strictly increasing: {edges}")
        family = self._family(name, "histogram", help_text, edges)
        if family.edges != edges:
            raise ValueError(
                f"metric {name!r} already registered with buckets "
                f"{family.edges}, not {edges}"
            )
        return family

    # -- export -------------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """JSON-safe dump of every series — the ``metrics`` wire op payload.

        Deterministically ordered (family name, then label key) so the
        Prometheus rendering of a snapshot is stable.
        """
        families: dict[str, object] = {}
        with self._lock:
            items = sorted(self._families.items())
        for name, family in items:
            series = []
            with family._lock:
                children = sorted(family._children.items())
            for _key, child in children:
                entry: dict[str, object] = {"labels": child.labels_dict}
                if isinstance(child, Histogram):
                    entry["count"] = child.count
                    entry["sum"] = child.sum
                    entry["buckets"] = child.bucket_counts
                else:
                    entry["value"] = child.value
                series.append(entry)
            record: dict[str, object] = {
                "type": family.kind,
                "help": family.help_text,
                "series": series,
            }
            if family.edges is not None:
                record["edges"] = list(family.edges)
            families[name] = record
        return {"enabled": self._enabled, "families": families}


_DEFAULT_ENABLED = os.environ.get("REPRO_METRICS_DISABLED", "") not in (
    "1",
    "true",
    "yes",
)


def set_default_enabled(enabled: bool) -> None:
    """Flip the default for registries created afterwards *and* REGISTRY."""
    global _DEFAULT_ENABLED
    _DEFAULT_ENABLED = bool(enabled)
    REGISTRY.set_enabled(enabled)


#: Process-default registry: session/pool/gateway layers record here unless
#: handed an explicit registry.  Servers own per-instance registries so two
#: servers in one process never share ``info`` counters.
REGISTRY = MetricsRegistry()

#: Permanently disabled registry — the baseline for overhead benchmarks.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def get_default_registry() -> MetricsRegistry:
    return REGISTRY
