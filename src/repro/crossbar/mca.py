"""The Memristive Crossbar Array (MCA) — RESPARC's analog inner-product engine.

An MCA is a fixed-size crossbar of memristive devices (Section 2.2 of the
paper).  Voltages applied to the rows produce, on every column, a current
equal to the inner product of the row inputs with the conductances stored in
that column — Kirchhoff's current law does the multiply-accumulate for free.
In RESPARC the column currents are integrated directly by analog IF neurons,
so no ADC is required.

:class:`CrossbarArray` is the functional + energetic model of one MCA:

* it holds programmed differential conductance pairs for a signed weight
  block (up to ``rows x columns`` synapses),
* :meth:`evaluate` computes the column currents for a binary spike vector
  (optionally through the non-ideality models) and returns the equivalent
  weighted sums together with the energy spent,
* utilisation bookkeeping records how many cross-points actually hold
  synapses, which drives the CNN-vs-MLP efficiency difference that the paper
  analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crossbar.device import DeviceParameters, MemristorModel
from repro.crossbar.energy import CrossbarEnergyModel, CrossbarReadCost
from repro.crossbar.mapping import CrossbarMapper, ProgrammedWeights
from repro.crossbar.nonidealities import CrossbarNonidealities, NonidealityParameters

__all__ = ["CrossbarConfig", "CrossbarEvaluation", "CrossbarArray"]


@dataclass(frozen=True)
class CrossbarConfig:
    """Static configuration of an MCA.

    Attributes
    ----------
    rows, columns:
        Physical crossbar geometry.  The paper evaluates square MCAs of size
        32, 64 and 128; the model accepts any rectangular geometry.
    device:
        Memristive device parameters.
    nonidealities:
        Analog non-ideality parameters (all disabled by default — matching
        the paper's functional assumption that a properly sized MCA computes
        correctly).
    """

    rows: int = 64
    columns: int = 64
    device: DeviceParameters = field(default_factory=DeviceParameters)
    nonidealities: NonidealityParameters = field(default_factory=NonidealityParameters)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.columns <= 0:
            raise ValueError(
                f"crossbar geometry must be positive, got {self.rows}x{self.columns}"
            )

    @property
    def size(self) -> int:
        """Number of cross-points (logical synapse slots)."""
        return self.rows * self.columns

    def with_size(self, size: int) -> "CrossbarConfig":
        """Return a square configuration of the given side length."""
        return CrossbarConfig(
            rows=size,
            columns=size,
            device=self.device,
            nonidealities=self.nonidealities,
        )


@dataclass(frozen=True)
class CrossbarEvaluation:
    """Result of one MCA evaluation."""

    weighted_sums: np.ndarray
    currents_a: np.ndarray
    cost: CrossbarReadCost


class CrossbarArray:
    """One programmed memristive crossbar array.

    Parameters
    ----------
    config:
        Crossbar geometry and device technology.
    rng:
        Generator for stochastic non-idealities; only needed when the device
        or non-ideality parameters enable them.
    """

    def __init__(self, config: CrossbarConfig, rng: np.random.Generator | None = None):
        self.config = config
        self._rng = rng
        self.model = MemristorModel(config.device)
        self.mapper = CrossbarMapper(self.model)
        self.energy_model = CrossbarEnergyModel(device=config.device)
        self.nonidealities = CrossbarNonidealities(config.nonidealities)
        self._programmed: ProgrammedWeights | None = None
        self._synapse_mask = np.zeros((config.rows, config.columns), dtype=bool)
        self.total_reads = 0
        self.total_energy_j = 0.0

    # -- programming ---------------------------------------------------------

    def program(self, weights: np.ndarray, scale: float | None = None) -> None:
        """Program a signed weight block into the crossbar.

        ``weights`` may be smaller than the physical geometry; the remaining
        cross-points are left unprogrammed (at ``g_off``) and counted as
        unused for utilisation purposes.
        """
        w = np.asarray(weights, dtype=float)
        if w.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {w.shape}")
        rows, cols = w.shape
        if rows > self.config.rows or cols > self.config.columns:
            raise ValueError(
                f"weight block {w.shape} does not fit in a "
                f"{self.config.rows}x{self.config.columns} crossbar"
            )
        padded = np.zeros((self.config.rows, self.config.columns))
        padded[:rows, :cols] = w
        programmed = self.mapper.program(padded, rng=self._rng, scale=scale)
        if not self.config.nonidealities.ideal and self._rng is not None:
            programmed = ProgrammedWeights(
                g_positive=self.nonidealities.apply_variation(programmed.g_positive, self._rng),
                g_negative=self.nonidealities.apply_variation(programmed.g_negative, self._rng),
                scale=programmed.scale,
            )
        self._programmed = programmed
        self._synapse_mask[:] = False
        self._synapse_mask[:rows, :cols] = w != 0

    @property
    def is_programmed(self) -> bool:
        """True once :meth:`program` has been called."""
        return self._programmed is not None

    @property
    def programmed(self) -> ProgrammedWeights:
        """The programmed differential conductance pair (raises if unprogrammed)."""
        if self._programmed is None:
            raise RuntimeError("crossbar has not been programmed")
        return self._programmed

    @property
    def utilisation(self) -> float:
        """Fraction of cross-points holding non-zero synapses."""
        return float(self._synapse_mask.mean())

    @property
    def used_rows(self) -> int:
        """Number of rows with at least one mapped synapse."""
        return int(self._synapse_mask.any(axis=1).sum())

    @property
    def used_columns(self) -> int:
        """Number of columns with at least one mapped synapse."""
        return int(self._synapse_mask.any(axis=0).sum())

    def effective_weights(self) -> np.ndarray:
        """Signed weights actually realised by the programmed devices."""
        if self._programmed is None:
            raise RuntimeError("crossbar has not been programmed")
        return self._programmed.effective_weights(self.model)

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, spikes: np.ndarray) -> CrossbarEvaluation:
        """Evaluate the crossbar for one binary spike vector.

        Parameters
        ----------
        spikes:
            Vector of length ``rows`` (values are 0/1 spike indicators, but
            analog inputs are accepted for testing).

        Returns
        -------
        CrossbarEvaluation
            Weighted sums per column, raw differential currents and the
            energy/latency cost of the read.
        """
        if self._programmed is None:
            raise RuntimeError("crossbar has not been programmed")
        x = np.asarray(spikes, dtype=float).reshape(-1)
        if x.shape[0] != self.config.rows:
            raise ValueError(
                f"spike vector has {x.shape[0]} entries, expected {self.config.rows}"
            )

        currents = self.mapper.column_currents(self._programmed, x)

        params = self.config.nonidealities
        if params.wire_resistance_ohm > 0:
            g_mean = self.energy_model.mean_device_conductance_s(self.utilisation)
            currents = currents * self.nonidealities.ir_drop_attenuation(
                self.config.rows, self.config.columns, g_mean
            )
        if params.sneak_leakage_fraction > 0:
            inactive = float((x == 0).sum())
            g_mean = self.energy_model.mean_device_conductance_s(self.utilisation)
            currents = currents + self.nonidealities.sneak_current_a(
                inactive * g_mean * self.config.columns / max(self.config.rows, 1),
                self.model.params.read_voltage_v,
            )
        if params.read_noise_sigma > 0:
            if self._rng is None:
                raise RuntimeError("read noise enabled but no rng was provided")
            currents = self.nonidealities.apply_read_noise(currents, self._rng)

        weighted = self.mapper.currents_to_weighted_sum(self._programmed, currents)
        cost = self.energy_model.read_cost(
            rows=self.config.rows,
            columns=self.config.columns,
            active_rows=int(np.count_nonzero(x)),
            utilisation=self.utilisation,
        )
        self.total_reads += 1
        self.total_energy_j += cost.energy_j
        return CrossbarEvaluation(weighted_sums=weighted, currents_a=currents, cost=cost)

    def reset_counters(self) -> None:
        """Reset the accumulated read/energy counters."""
        self.total_reads = 0
        self.total_energy_j = 0.0
