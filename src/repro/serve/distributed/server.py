"""Asyncio chip server: pipelined JSON-or-binary inference over TCP.

:class:`ChipServer` wraps any inference target that answers
``infer(InferenceRequest) -> InferenceResponse`` — a
:class:`~repro.serve.ChipSession`, a :class:`~repro.serve.ChipPool`, even a
gateway — behind a tiny protocol that stdlib clients can speak:

* client sends one envelope per message: ``{"op": "infer", "request":
  {...}}``, ``{"op": "info"}``, ``{"op": "ping"}``, ``{"op": "metrics"}``,
  ``{"op": "drain"}`` or ``{"op": "shutdown"}``, optionally tagged with a
  protocol version ``"v"`` and a request ``"id"``;
* server answers one envelope per message: ``{"ok": true, ...}`` on success
  or ``{"ok": false, "error": "..."}`` on failure — malformed JSON, schema
  violations, corrupt binary frames and inference errors all surface as
  error replies rather than dropped connections.  Replies echo the
  request's ``id``.

Envelopes travel on either **carrier** of the same TCP connection: a
newline-delimited JSON line (protocol v1/v2, still fully supported) or a
protocol-v3 length-prefixed binary frame
(:data:`~repro.serve.schema.FRAME_MAGIC` header, compact-JSON metadata, raw
little-endian array payload — see :mod:`repro.serve.schema`).  The reader
peeks one byte per message to tell them apart, and every reply leaves on
the carrier its request arrived on, so a connection's effective protocol
version is negotiated per message and mixed fleets of v1/v2/v3 clients
share one server unchanged.  Binary frames skip the per-float text codec
entirely: a v3 ``infer`` round trip serialises the batch as two memcpys.

The server core is an :mod:`asyncio` event loop, so a connection is no
longer a lock-step request/reply channel: a client may keep several tagged
requests in flight and match the replies by ``id`` (version-1 clients that
send untagged requests get their replies in arrival order, exactly as
before).  Every ``infer`` lands on a single server-wide queue; a dispatcher
coroutine drains the queue and **dynamically batches** compatible requests —
same ``timesteps`` override — from any number of clients into one
``target.infer_many`` pool dispatch.  Responses are split back per request
by the pool, exactly (shard-stable encoding means coalescing changes
throughput, never numbers).  Chip work runs on a one-thread executor so the
event loop stays responsive while the chips crunch.

The queue is also the server's **admission-control plane**: ``max_queue``
bounds how many requests may wait at once and ``shed_policy`` decides
whether excess load is rejected with a structured ``overloaded`` error
reply or blocked until space frees; per-request ``deadline_s`` expires
waiting work with ``deadline_exceeded`` (checked on every queue sweep and
again immediately before dispatch), and the ``cancel`` op removes a
connection's own queued request.  Live load (``queue_depth``,
``inflight``) and the shed/expired/cancelled counters are exported through
the ``info`` op, which is what the gateway's adaptive sharding feeds on.

The payloads are exactly the serve-schema dicts, so a response read off the
wire is lossless (`InferenceResponse.from_dict`), and the numbers a remote
client sees are bit-identical to a local run.

:func:`load_benchmark_workload` builds a servable SNN from the benchmark
registry (network → synthetic dataset → ANN→SNN conversion), which is what
``python -m repro.serve.distributed serve --workload mnist-mlp`` uses.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.datasets import make_dataset
from repro.serve.schema import (
    ERROR_CANCELLED,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_DRAINING,
    ERROR_OVERLOADED,
    FRAME_HEADER_SIZE,
    FRAME_MAGIC,
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    InferenceRequest,
    decode_frame_payload,
    encode_frame,
    error_envelope,
    parse_envelope,
    parse_frame_header,
    reply_envelope,
    validate_envelope,
)
from repro.serve.metrics import (
    PHASE_COMPUTE,
    PHASE_DISPATCH,
    PHASE_MERGE,
    PHASE_QUEUE_WAIT,
    MetricsRegistry,
    get_default_registry,
    read_phases,
    record_phase,
    render_prometheus,
)
from repro.serve.metrics.exposition import CONTENT_TYPE as _PROMETHEUS_CONTENT_TYPE
from repro.snn.conversion import SpikingNetwork, convert_to_snn
from repro.workloads import get_benchmark

__all__ = [
    "SHED_POLICIES",
    "ChipServer",
    "ServeRejection",
    "ServingWorkload",
    "load_benchmark_workload",
]

#: Load-shedding policies a bounded server queue may apply when full:
#: ``"reject"`` answers excess requests immediately with a structured
#: ``overloaded`` error; ``"block"`` holds admission until space frees
#: (backpressure propagates to the client connection).
SHED_POLICIES = ("reject", "block")


class ServeRejection(Exception):
    """An admission-control rejection, carried to the wire as a coded error.

    ``code`` is one of the structured wire codes
    (:data:`~repro.serve.schema.ERROR_OVERLOADED`,
    :data:`~repro.serve.schema.ERROR_DEADLINE_EXCEEDED`,
    :data:`~repro.serve.schema.ERROR_CANCELLED`); the server turns the
    exception into an error reply whose ``code`` field clients branch on.
    """

    def __init__(self, message: str, code: str):
        super().__init__(message)
        self.code = code

#: Longest accepted wire line.  A request line carries the whole input batch
#: as JSON floats (~20 bytes per value), so the stdlib's 64 KiB stream
#: default would cap batches at a few thousand values; 64 MiB comfortably
#: fits production-sized batches while still bounding a misbehaving client.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Lines longer than this are parsed off the event loop: decoding megabytes
#: of JSON inline would stall every other connection for the duration.
_OFFLOAD_PARSE_BYTES = 64 * 1024


def _encode_reply_line(reply: dict[str, object]) -> bytes:
    """Serialise one reply envelope to its wire line (runs off-loop)."""
    return json.dumps(reply).encode("utf-8") + b"\n"


def _encode_reply_frame(reply: dict[str, object]) -> bytes:
    """Serialise one reply envelope to a binary frame (runs off-loop).

    No shared encode buffer here: the asyncio transport may hold the bytes
    past the write call, so every reply frame owns its storage.
    """
    return encode_frame(reply)


def _decode_frame_message(meta: bytes, payload: bytes) -> dict[str, object]:
    """Decode + validate one frame's envelope (runs off-loop when large)."""
    return validate_envelope(decode_frame_payload(meta, payload))


@dataclass
class ServingWorkload:
    """A benchmark prepared for serving: the SNN plus its evaluation split."""

    name: str
    snn: SpikingNetwork
    test_inputs: np.ndarray
    test_labels: np.ndarray


def load_benchmark_workload(
    benchmark: str,
    *,
    scale: float = 1.0,
    seed: int = 7,
    train_samples: int = 64,
    test_samples: int = 32,
) -> ServingWorkload:
    """Build a servable SNN for a registered MLP benchmark.

    Deterministic in ``(benchmark, scale, seed, train_samples)``: a server
    and a client that load the same workload with the same arguments hold
    the same network, which is what makes remote results comparable to local
    ones.
    """
    spec = get_benchmark(benchmark)
    if not spec.is_mlp:
        raise ValueError(
            f"{benchmark!r} is not an MLP; the chip server executes fully "
            f"connected networks only (choose from the *-mlp benchmarks)"
        )
    network = spec.build(scale=scale, seed=seed)
    dataset = make_dataset(
        spec.dataset, train_samples=train_samples, test_samples=test_samples, seed=seed
    )
    train_inputs = dataset.train_images.reshape(dataset.train_images.shape[0], -1)
    test_inputs = dataset.test_images.reshape(dataset.test_images.shape[0], -1)
    snn = convert_to_snn(network, train_inputs[: min(32, len(train_inputs))])
    return ServingWorkload(
        name=benchmark,
        snn=snn,
        test_inputs=test_inputs,
        test_labels=dataset.test_labels,
    )


@dataclass
class _QueuedInfer:
    """One infer request waiting in the server's dynamic-batching queue."""

    key: object  # compatibility key: requests sharing it may coalesce
    request: InferenceRequest
    future: asyncio.Future
    #: Absolute loop-clock deadline (``loop.time()`` based), or None.
    deadline: float | None = None
    #: Loop-clock instant the request entered the dispatch queue; the
    #: dispatcher turns the difference to its pop time into the
    #: ``queue_wait_s`` phase span.
    admitted_at: float | None = None
    #: True once the dispatcher has handed the request to the work thread;
    #: dispatched work can no longer be cancelled (dispatch wins).
    dispatched: bool = False
    #: The admission waiter while this request blocks on a full queue
    #: (block policy); a cancel op resolves it so the request unblocks
    #: immediately instead of waiting out a slot it will never use.
    waiter: asyncio.Future | None = None


class ChipServer:
    """Serve an inference target on a TCP port (asyncio core).

    Parameters
    ----------
    target:
        Anything with ``infer(InferenceRequest) -> InferenceResponse``.
        Targets that additionally provide ``infer_many(list) -> list`` (a
        :class:`~repro.serve.ChipPool`) get cross-client dynamic batching:
        queued compatible requests coalesce into one pool dispatch.
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`address`).  The socket is bound eagerly in the constructor,
        so :attr:`address` is valid before serving starts.
    workload:
        Human-readable workload name reported by the ``info`` op.
    max_batch:
        Most requests one dynamic batch may coalesce (>= 1).
    batch_window_s:
        Extra seconds the dispatcher lingers for more compatible requests
        once the queue runs dry before dispatching a non-full batch.  The
        default 0 only coalesces what is already queued — batching under
        concurrency, zero added latency when idle.
    max_queue:
        Most ``infer`` requests that may wait for dispatch at once (0 =
        unbounded, the historical behaviour).  With a bound, overload
        degrades gracefully instead of accumulating latency without limit.
    shed_policy:
        What happens to an ``infer`` arriving at a full queue: ``"reject"``
        (default) answers it immediately with a structured ``overloaded``
        error reply; ``"block"`` holds admission until space frees (the
        client connection feels backpressure instead of an error).
    replica_id:
        Stable identity this server reports in ``info`` (fleet controllers
        key their bookkeeping on it); defaults to the bound ``host:port``.

    Use :meth:`serve_forever` to block, or :meth:`start` to serve on a
    background thread; :meth:`close` (or the context manager) tears down
    either way.  A ``drain`` op retires the server gracefully: admission
    stops (new ``infer`` requests answer a structured ``draining`` error),
    every already-admitted request is computed and its reply delivered, and
    only then does the serving loop exit.
    """

    def __init__(
        self,
        target,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workload: str = "custom",
        max_batch: int = 8,
        batch_window_s: float = 0.0,
        max_queue: int = 0,
        shed_policy: str = "reject",
        replica_id: str | None = None,
        metrics_port: int | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window_s < 0:
            raise ValueError(f"batch_window_s must be >= 0, got {batch_window_s}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, got {shed_policy!r}"
            )
        self.target = target
        self.workload = workload
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.max_queue = max_queue
        self.shed_policy = shed_policy
        #: Unix timestamp of server construction (the socket binds here, so
        #: this is when the endpoint became connectable).
        self.started_at = time.time()
        # Bind eagerly so `address` works immediately and `start()` has no
        # listening race; asyncio adopts this socket in _serve_async.
        self._sock = socket.create_server((host, port), reuse_port=False)
        bound = self._sock.getsockname()[:2]
        self._address = (str(bound[0]), int(bound[1]))
        #: Stable replica identity (defaults to the bound endpoint).
        self.replica_id = replica_id or self.endpoint
        #: Per-instance metrics registry: the source of truth for every
        #: serving counter (the legacy ``stats`` dict is a read-only view
        #: over it), exposed through the ``metrics`` wire op and the
        #: Prometheus endpoint.  Per-instance — never the process default —
        #: so two servers in one test process cannot share counters, and
        #: always enabled unless the caller injects a disabled registry
        #: (``info``'s counters are load-bearing for the gateway).
        self.metrics = registry if registry is not None else MetricsRegistry(enabled=True)
        self._m_requests = self.metrics.counter(
            "repro_server_requests_total", "infer requests served"
        )
        self._m_batches = self.metrics.counter(
            "repro_server_batches_total", "coalesced dispatches made"
        )
        self._m_shed = self.metrics.counter(
            "repro_server_shed_total", "requests shed by admission control"
        )
        self._m_deadline = self.metrics.counter(
            "repro_server_deadline_exceeded_total",
            "requests expired before dispatch",
        )
        self._m_cancelled = self.metrics.counter(
            "repro_server_cancelled_total", "queued requests cancelled"
        )
        self._m_hedge_cancelled = self.metrics.counter(
            "repro_server_hedge_cancelled_total",
            "queued requests revoked by a gateway hedge (cancel reason=hedge)",
        )
        self._m_drain_rejected = self.metrics.counter(
            "repro_server_drain_rejected_total",
            "requests refused while draining",
        )
        self._m_max_coalesced = self.metrics.gauge(
            "repro_server_max_coalesced", "largest coalesced dispatch"
        )
        self._m_queue_depth = self.metrics.gauge(
            "repro_server_queue_depth", "requests admitted, not yet dispatched"
        )
        self._m_inflight = self.metrics.gauge(
            "repro_server_inflight", "requests on the work thread"
        )
        self._m_queue_wait = self.metrics.histogram(
            "repro_request_queue_wait_seconds",
            "admission to dispatcher pop",
        )
        self._m_dispatch = self.metrics.histogram(
            "repro_request_dispatch_seconds",
            "dispatcher pop to compute start",
        )
        self._m_compute = self.metrics.histogram(
            "repro_request_compute_seconds", "chip compute wall time"
        )
        self._m_merge = self.metrics.histogram(
            "repro_request_merge_seconds", "shard merge wall time"
        )
        self._m_wall = self.metrics.histogram(
            "repro_request_wall_seconds",
            "admission to reply-ready wall time",
        )
        #: Optional Prometheus scrape listener, bound eagerly like the main
        #: socket (``metrics_port=0`` picks a free port; None disables it).
        self._metrics_sock: socket.socket | None = None
        self._metrics_address: tuple[str, int] | None = None
        if metrics_port is not None:
            self._metrics_sock = socket.create_server(
                (host, metrics_port), reuse_port=False
            )
            bound = self._metrics_sock.getsockname()[:2]
            self._metrics_address = (str(bound[0]), int(bound[1]))
        #: Requests admitted but not yet dispatched (the live queue depth the
        #: admission bound applies to; includes items the dispatcher holds).
        self._backlog = 0
        #: Requests currently executing on the work thread.
        self._inflight = 0
        #: ``infer`` messages whose replies have not been fully written yet
        #: (admitted, queued, computing or mid-write).  A drain completes —
        #: and the serving loop exits — only when this reaches zero, so a
        #: scale-down can never drop an answer a client is still owed.
        self._active_infers = 0
        #: True once a ``drain`` op arrived: admission is closed for good.
        self._draining = False
        #: FIFO of block-policy admissions waiting for a queue slot.
        self._space_waiters: deque[asyncio.Future] = deque()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._queue: asyncio.Queue[_QueuedInfer] | None = None
        # Chip work runs on exactly one worker thread, which is the
        # serialisation point: bare targets (a structural ChipSession
        # mutates live chip state per run) are not thread-safe, and a busy
        # worker is what lets queued requests pile up and coalesce.
        self._work = ThreadPoolExecutor(max_workers=1, thread_name_prefix="chip-work")
        self._serving = False
        self._closed = False

    # -- introspection ------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (cached at bind time)."""
        return self._address

    @property
    def endpoint(self) -> str:
        """The bound address as a ``host:port`` string."""
        host, port = self.address
        return f"{host}:{port}"

    @property
    def metrics_address(self) -> tuple[str, int] | None:
        """The Prometheus endpoint's ``(host, port)`` (None when disabled)."""
        return self._metrics_address

    @property
    def stats(self) -> dict[str, int]:
        """The legacy serving counters, as a view over the registry.

        Same keys and values as the historical counter dict — ``info``
        consumers (gateway weights, fleet controller, tests) read exactly
        what they always did; the registry is simply the storage now.
        """
        return {
            "requests": int(self._m_requests.value),
            "batches": int(self._m_batches.value),
            "max_coalesced": int(self._m_max_coalesced.value),
            "shed": int(self._m_shed.value),
            "deadline_exceeded": int(self._m_deadline.value),
            "cancelled": int(self._m_cancelled.value),
            "hedge_cancelled": int(self._m_hedge_cancelled.value),
            "drain_rejected": int(self._m_drain_rejected.value),
        }

    def metrics_snapshot(self) -> dict[str, object]:
        """Everything this process observed: server registry + layer registry.

        The server's per-instance families are joined with the
        process-default registry's (session/pool/gateway instrumentation
        lands there), own families winning on a name collision, so one
        scrape shows the whole serving stack of this process.
        """
        combined = get_default_registry().snapshot()
        own = self.metrics.snapshot()
        families = dict(combined["families"])
        families.update(own["families"])
        return {"enabled": own["enabled"], "families": families}

    def metrics_payload(self) -> dict[str, object]:
        """The ``metrics`` op result: one snapshot, rendered once.

        The Prometheus endpoint renders the same snapshot shape, so both
        surfaces serve identical values by construction.
        """
        snapshot = self.metrics_snapshot()
        return {
            "schema_version": SCHEMA_VERSION,
            "replica_id": self.replica_id,
            "workload": self.workload,
            "snapshot": snapshot,
            "text": render_prometheus(snapshot),
        }

    def info(self) -> dict[str, object]:
        """Metadata reported to clients (duck-typed off the target)."""
        session = getattr(self.target, "session", self.target)
        jobs = int(getattr(self.target, "jobs", 1))
        info: dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "protocol_version": PROTOCOL_VERSION,
            "workload": self.workload,
            # Replica identity: what a fleet controller keys on, plus the
            # lifecycle state a drain flips.
            "replica_id": self.replica_id,
            "pid": os.getpid(),
            "state": "draining" if self._draining else "serving",
            "backend": getattr(session, "backend", "unknown"),
            "timesteps": int(getattr(session, "timesteps", 0)),
            "jobs": jobs,
            # Capacity drives gateway sharding weights; a pool's capacity is
            # its worker count.
            "capacity": jobs,
            "max_batch": self.max_batch,
            # Live load: admitted-but-undispatched requests and requests on
            # the work thread right now.  The gateway discounts its static
            # capacity weights by these.
            "queue_depth": self._backlog,
            "inflight": self._inflight,
            "max_queue": self.max_queue,
            "shed_policy": self.shed_policy,
            "started_at": self.started_at,
            "uptime_s": max(0.0, time.time() - self.started_at),
            "stats": dict(self.stats),
        }
        executor = getattr(self.target, "executor", None)
        if executor is not None:
            info["executor"] = executor
        if self._metrics_address is not None:
            host, port = self._metrics_address
            info["metrics_endpoint"] = f"{host}:{port}"
        return info

    # -- admission control --------------------------------------------------------

    def _relinquish_wait(self, waiter: asyncio.Future) -> None:
        """Abandon a blocked admission without leaking its queue slot.

        The abandonment paths (deadline timeout, task cancellation) race
        the slot handoff: the timer/cancel can fire *after*
        :meth:`_wake_one_waiter` already resolved this waiter (result
        ``True``) and pre-incremented the backlog on its behalf.  A
        transferred slot the waiter will never use must be passed on, or
        the queue bound permanently shrinks by one.  Waiters resolved with
        ``False`` (a cancel op) never held a slot.
        """
        if waiter.done() and not waiter.cancelled() and waiter.result():
            self._release_slot()
        else:
            with contextlib.suppress(ValueError):
                self._space_waiters.remove(waiter)

    def _wake_one_waiter(self) -> None:
        """Hand a freed queue slot to the longest-blocked admission waiter.

        The slot transfers *atomically at wake time* (the backlog is
        re-incremented on the waiter's behalf before any other task runs),
        so a burst of fresh arrivals can never steal the slot from a
        request that has been blocking longer — block-policy admission is
        strictly FIFO.  The waiter resolves to ``True`` ("you own a slot");
        a cancel op resolves waiters to ``False`` ("stop waiting, no slot").
        """
        while self._space_waiters:
            waiter = self._space_waiters.popleft()
            if not waiter.done():
                self._backlog += 1  # the freed slot now belongs to this waiter
                self._m_queue_depth.set(self._backlog)
                waiter.set_result(True)
                return

    def _release_slot(self) -> None:
        """Return one backlog slot, waking the next blocked admission.

        Called whenever an admitted request leaves the queue — dispatched,
        expired, cancelled — or a transferred slot cannot be used.
        """
        self._backlog -= 1
        self._m_queue_depth.set(self._backlog)
        self._wake_one_waiter()

    def _reject_draining(self) -> ServeRejection:
        self._m_drain_rejected.inc()
        return ServeRejection(
            "server is draining; no new work is admitted", code=ERROR_DRAINING
        )

    async def _admit(self, item: _QueuedInfer) -> None:
        """Apply the queue bound, then enqueue (never partially admits).

        ``"reject"`` sheds immediately with a structured ``overloaded``
        error; ``"block"`` joins a FIFO waiter queue for the next freed
        slot — but never waits past the request's own deadline, which
        converts the wait into ``deadline_exceeded``.  A request whose
        future was already resolved (a ``cancel`` op raced admission) is
        never enqueued — the server must not compute an answer nobody will
        read.  A draining server admits nothing: requests answer a
        structured ``draining`` error instead (including block-policy
        waiters, which a ``drain`` op unblocks immediately).
        """
        assert self._loop is not None and self._queue is not None
        if self._draining:
            raise self._reject_draining()
        if self.max_queue and (
            self._backlog >= self.max_queue or self._space_waiters
        ):
            if self.shed_policy == "reject":
                self._m_shed.inc()
                raise ServeRejection(
                    f"server queue is full ({self._backlog}/{self.max_queue} "
                    f"requests waiting); request shed",
                    code=ERROR_OVERLOADED,
                )
            remaining = None
            if item.deadline is not None:
                remaining = item.deadline - self._loop.time()
                if remaining <= 0:
                    self._m_deadline.inc()
                    raise ServeRejection(
                        "deadline expired while blocked on a full server queue",
                        code=ERROR_DEADLINE_EXCEEDED,
                    )
            waiter: asyncio.Future = self._loop.create_future()
            self._space_waiters.append(waiter)
            item.waiter = waiter
            try:
                got_slot = await asyncio.wait_for(waiter, timeout=remaining)
            except (asyncio.TimeoutError, TimeoutError):
                self._relinquish_wait(waiter)
                if item.future.done():
                    # A racing cancel already resolved this request; the
                    # caller's `await future` reports the cancellation.
                    return
                self._m_deadline.inc()
                raise ServeRejection(
                    "deadline expired while blocked on a full server queue",
                    code=ERROR_DEADLINE_EXCEEDED,
                ) from None
            except asyncio.CancelledError:
                # The connection died while we blocked.
                self._relinquish_wait(waiter)
                raise
            finally:
                item.waiter = None
            if item.future.done():
                if got_slot:
                    self._release_slot()  # cancelled while blocked; pass it on
                return
            if self._draining:
                # A drain op resolved this waiter (no slot) — or raced the
                # handoff; either way the request can no longer be admitted.
                if got_slot:
                    self._release_slot()
                raise self._reject_draining()
            # got_slot is always True here: only a cancel or a drain
            # resolves the waiter with False, and both are handled above.
            item.admitted_at = self._loop.time()
            self._queue.put_nowait(item)
            return
        if item.future.done():
            return  # cancelled before admission; nothing to enqueue
        # No awaits between the bound check and the enqueue: admission is
        # atomic on the event loop.
        self._backlog += 1
        self._m_queue_depth.set(self._backlog)
        item.admitted_at = self._loop.time()
        self._queue.put_nowait(item)

    # -- graceful drain -----------------------------------------------------------

    def _begin_drain(self) -> dict[str, object]:
        """Close admission for good (idempotent; event-loop only).

        Block-policy admissions still waiting for a queue slot can never be
        admitted now, so their waiters resolve immediately (no slot): each
        blocked request answers a structured ``draining`` error right away
        instead of waiting out a slot it would be refused anyway.
        """
        already = self._draining
        self._draining = True
        while self._space_waiters:
            waiter = self._space_waiters.popleft()
            if not waiter.done():
                waiter.set_result(False)
        return {
            "draining": True,
            "was_draining": already,
            "pending": self._active_infers,
            # Final observability snapshot, so a scale-down never discards
            # this replica's shed/deadline/cancel history: the drain ack is
            # the last reply the manager is guaranteed to read before the
            # process exits, and ReplicaManager records both views from it.
            "stats": dict(self.stats),
            "metrics": self.metrics.snapshot(),
        }

    def _maybe_finish_drain(self) -> None:
        """Exit the serving loop once a drain owes no client a reply.

        ``_active_infers`` covers the whole life of an admitted request —
        queued, dispatched, and the reply write itself — so stopping here
        can never cut off an answer mid-delivery.
        """
        if (
            self._draining
            and self._active_infers == 0
            and self._stop_event is not None
        ):
            self._stop_event.set()

    # -- protocol -----------------------------------------------------------------

    @staticmethod
    def _parse_deadline(message: dict[str, object]) -> float | None:
        deadline_s = message.get("deadline_s")
        if deadline_s is None:
            return None
        if (
            isinstance(deadline_s, bool)
            or not isinstance(deadline_s, (int, float))
            or deadline_s <= 0
        ):
            raise ValueError(
                f"deadline_s must be a positive number of seconds, got {deadline_s!r}"
            )
        return float(deadline_s)

    async def _execute(
        self,
        message: dict[str, object],
        conn_pending: dict[object, _QueuedInfer],
        binary: bool = False,
    ) -> dict[str, object]:
        """Turn one parsed envelope into a reply envelope (never raises).

        ``conn_pending`` maps this connection's still-pending tagged
        ``infer`` ids to their queue items, which is what the ``cancel`` op
        reaches into (and how it tells queued work from dispatched work).
        ``binary`` selects the reply payload codec: frame replies keep the
        response arrays as ndarrays (shipped raw by the frame encoder)
        instead of paying the per-float ``to_dict`` conversion.
        """
        op = message.get("op")
        request_id = message.get("id")
        try:
            if op == "ping":
                result: dict[str, object] = {"pong": True}
            elif op == "info":
                result = {"info": self.info()}
            elif op == "infer":
                payload = message.get("request")
                if not isinstance(payload, dict):
                    raise ValueError('infer needs a "request" object payload')
                deadline_s = self._parse_deadline(message)
                assert self._loop is not None and self._queue is not None
                # Schema decode/encode of a large batch is real CPU work;
                # run it off-loop so other connections stay responsive.
                request = await self._loop.run_in_executor(
                    None, InferenceRequest.from_dict, payload
                )
                future = self._loop.create_future()
                deadline = (
                    None if deadline_s is None else self._loop.time() + deadline_s
                )
                # Compatibility key: only requests sharing the encoding
                # window may ride in one coalesced dispatch.
                item = _QueuedInfer(
                    key=request.timesteps,
                    request=request,
                    future=future,
                    deadline=deadline,
                )
                # Registered BEFORE admission so a cancel op can reach a
                # request still blocked in block-policy admission (its
                # future resolves; _admit then declines to enqueue it).
                if request_id is not None:
                    conn_pending[request_id] = item
                admit_started = self._loop.time()
                try:
                    await self._admit(item)
                    # A cancel op resolves this future with a structured
                    # ServeRejection; the dispatcher resolves it with the
                    # response (or the dispatch failure).
                    response = await future
                finally:
                    if request_id is not None:
                        conn_pending.pop(request_id, None)
                self._m_wall.observe(self._loop.time() - admit_started)
                if binary:
                    # Frame replies carry the arrays raw; building the wire
                    # dict is O(1) in the batch (no per-float conversion),
                    # so it can stay on the loop.
                    result = {"response": response.to_wire_dict()}
                else:
                    result = {
                        "response": await self._loop.run_in_executor(
                            None, response.to_dict
                        )
                    }
            elif op == "cancel":
                target = message.get("target")
                if target is None:
                    raise ValueError(
                        'cancel needs a "target" field naming the request id '
                        "of a pending infer on this connection"
                    )
                pending = conn_pending.get(target)
                cancelled = False
                # Only *queued* work is cancellable: once the dispatcher has
                # handed the request to the work thread, dispatch wins and
                # the computed result is delivered normally.
                if (
                    pending is not None
                    and not pending.dispatched
                    and not pending.future.done()
                ):
                    # Resolve (don't cancel) the dispatch future: task
                    # cancellation also cancels awaited futures, and the two
                    # must stay distinguishable.  The waiting infer task
                    # turns this into a structured `cancelled` error reply;
                    # the dispatcher sweeps the dead item out of the queue.
                    pending.future.set_exception(
                        ServeRejection(
                            f"request {target!r} cancelled before dispatch",
                            code=ERROR_CANCELLED,
                        )
                    )
                    if pending.waiter is not None and not pending.waiter.done():
                        # Unblock a block-policy admission immediately (no
                        # slot transfer) so the structured cancelled reply
                        # goes out now, not when a queue slot frees — and
                        # drop it from the waiter queue, where a resolved
                        # entry would wrongly keep the bound check blocking
                        # new arrivals after the queue drains.
                        pending.waiter.set_result(False)
                        with contextlib.suppress(ValueError):
                            self._space_waiters.remove(pending.waiter)
                    self._m_cancelled.inc()
                    if message.get("reason") == "hedge":
                        # The gateway revoked a losing hedged duplicate:
                        # this cancel *freed* a queue slot that would have
                        # been wasted compute.
                        self._m_hedge_cancelled.inc()
                    cancelled = True
                result = {"cancelled": cancelled, "target": target}
            elif op == "metrics":
                # Version-agnostic, like drain: any envelope version may
                # scrape; the payload matches the Prometheus endpoint
                # byte for byte (both render one registry snapshot).
                result = {"metrics": self.metrics_payload()}
            elif op == "drain":
                result = self._begin_drain()
            elif op == "shutdown":
                result = {"stopping": True}
            else:
                raise ValueError(
                    f"unknown op {op!r}; expected ping, info, infer, cancel, "
                    f"metrics, drain or shutdown"
                )
            return reply_envelope(op, result, request_id=request_id)
        except asyncio.CancelledError:
            raise
        except ServeRejection as exc:
            return error_envelope(
                str(exc), op=op, request_id=request_id, code=exc.code
            )
        except Exception as exc:  # noqa: BLE001 - every failure becomes a reply
            return error_envelope(
                f"{type(exc).__name__}: {exc}", op=op, request_id=request_id
            )

    def _run_batch(self, requests: list[InferenceRequest]):
        """Execute one coalesced dispatch (only ever on the single work thread).

        Returns ``(responses, compute_started, compute_finished)`` on the
        monotonic clock so the dispatcher can split the executor hop
        (``dispatch_s``) from the chip time (``compute_s``) per request.
        """
        infer_many = getattr(self.target, "infer_many", None)
        started = time.monotonic()
        if infer_many is not None and len(requests) > 1:
            responses = infer_many(requests)
        else:
            responses = [self.target.infer(request) for request in requests]
        return responses, started, time.monotonic()

    async def _batch_loop(self) -> None:
        """Drain the request queue, coalescing compatible requests.

        Deadline enforcement happens here, at both ends of the queue: every
        sweep re-checks every held request (items parked behind an
        incompatible head expire promptly, not when they finally match), and
        the check runs immediately before dispatch, so a request never
        reaches the work thread after its deadline has passed.
        """
        assert self._loop is not None and self._queue is not None
        pending: deque[_QueuedInfer] = deque()
        while True:
            if not pending:
                pending.append(await self._queue.get())
            # Everything already queued joins the candidate set at once.
            with contextlib.suppress(asyncio.QueueEmpty):
                while True:
                    pending.append(self._queue.get_nowait())
            if (
                self.batch_window_s > 0
                and len(pending) < self.max_batch
            ):
                with contextlib.suppress(asyncio.TimeoutError, TimeoutError):
                    pending.append(
                        await asyncio.wait_for(self._queue.get(), self.batch_window_s)
                    )
            # Sweep out dead (cancelled) and expired requests, then coalesce
            # the first live request with every compatible follower (FIFO
            # order preserved for the rest).
            now = self._loop.time()
            key: object = None
            key_set = False
            batch: list[_QueuedInfer] = []
            rest: deque[_QueuedInfer] = deque()
            for item in pending:
                if item.future.done():
                    # Cancelled (or otherwise resolved) while queued.
                    self._release_slot()
                    continue
                if item.deadline is not None and now > item.deadline:
                    self._m_deadline.inc()
                    item.future.set_exception(
                        ServeRejection(
                            "deadline expired before the request was "
                            "dispatched",
                            code=ERROR_DEADLINE_EXCEEDED,
                        )
                    )
                    self._release_slot()
                    continue
                if not key_set:
                    key, key_set = item.key, True
                if item.key == key and len(batch) < self.max_batch:
                    batch.append(item)
                else:
                    rest.append(item)
            pending = rest
            if not batch:
                continue
            # Marking dispatched and handing off happen in one synchronous
            # block (no awaits until the executor hop), so a concurrent
            # cancel task can never observe a half-dispatched batch.
            dispatched_at = self._loop.time()
            for item in batch:
                item.dispatched = True
                self._release_slot()
            self._m_requests.inc(len(batch))
            self._m_batches.inc()
            self._m_max_coalesced.set_max(len(batch))
            self._inflight = len(batch)
            self._m_inflight.set(len(batch))
            try:
                responses, compute_started, compute_finished = (
                    await self._loop.run_in_executor(
                        self._work, self._run_batch, [item.request for item in batch]
                    )
                )
            except Exception as exc:  # noqa: BLE001 - surfaced per request
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(exc)
                continue
            finally:
                self._inflight = 0
                self._m_inflight.set(0)
            # asyncio's loop clock IS time.monotonic, so the dispatcher-side
            # marks and the work-thread marks live on one timeline: the
            # executor hop is `dispatch_s`, the chip time `compute_s`.
            dispatch_s = max(0.0, compute_started - dispatched_at)
            compute_s = max(0.0, compute_finished - compute_started)
            for item, response in zip(batch, responses):
                metadata = getattr(response, "metadata", None)
                if isinstance(metadata, dict):
                    phases = read_phases(metadata)
                    queue_wait = (
                        max(0.0, dispatched_at - item.admitted_at)
                        if item.admitted_at is not None
                        else 0.0
                    )
                    record_phase(metadata, PHASE_QUEUE_WAIT, queue_wait)
                    record_phase(metadata, PHASE_DISPATCH, dispatch_s)
                    self._m_queue_wait.observe(queue_wait)
                    self._m_dispatch.observe(dispatch_s)
                    # A pool target already split its own compute/merge
                    # spans per request; only fill compute in for bare
                    # targets so the phases never double-count.
                    if PHASE_COMPUTE not in phases:
                        record_phase(metadata, PHASE_COMPUTE, compute_s)
                    phases = read_phases(metadata)
                    self._m_compute.observe(phases.get(PHASE_COMPUTE, compute_s))
                    if PHASE_MERGE in phases:
                        self._m_merge.observe(phases[PHASE_MERGE])
                if not item.future.done():
                    item.future.set_result(response)

    async def _read_frame(
        self, reader: asyncio.StreamReader, first: bytes
    ) -> tuple[
        dict[str, object] | None, tuple[str, object, object] | None, bool
    ]:
        """Read one binary frame after its peeked first byte.

        Returns ``(message, error, fatal)``: a decoded envelope, or an error
        triple for the structured error reply, with ``fatal`` True when the
        stream cannot be resynchronised (corrupt header) and the connection
        must hang up after the reply.  Truncated frames (EOF mid-frame)
        raise :class:`asyncio.IncompleteReadError` to the caller — there is
        no peer left to answer.
        """
        header = first + await reader.readexactly(FRAME_HEADER_SIZE - 1)
        try:
            meta_len, payload_len = parse_frame_header(header)
        except ValueError as exc:
            # Bad magic or oversized declaration: the byte stream can no
            # longer be framed; tell the client why, then hang up.
            return None, (f"ValueError: {exc}", None, None), True
        meta = await reader.readexactly(meta_len)
        payload = await reader.readexactly(payload_len)
        try:
            if meta_len + payload_len > _OFFLOAD_PARSE_BYTES:
                # Decoding megabytes inline would stall every other
                # connection; push it to the default executor.
                message = await asyncio.get_running_loop().run_in_executor(
                    None, _decode_frame_message, meta, payload
                )
            else:
                message = _decode_frame_message(meta, payload)
        except ValueError as exc:
            # The frame was well-delimited (lengths were honoured), so the
            # stream stays in sync: answer with a structured error and keep
            # serving.  Best effort to tag the reply from the raw metadata.
            op = request_id = None
            with contextlib.suppress(ValueError, UnicodeDecodeError):
                raw = json.loads(meta.decode("utf-8"))
                if isinstance(raw, dict) and isinstance(raw.get("envelope"), dict):
                    envelope = raw["envelope"]
                    op, request_id = envelope.get("op"), envelope.get("id")
            return None, (f"ValueError: {exc}", op, request_id), False
        return message, None, False

    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one Prometheus scrape (minimal HTTP/1.1, close-delimited).

        ``GET /metrics`` (or ``/``) renders the registry snapshot as
        text-format 0.0.4; anything else is a 404.  One response per
        connection — scrapers reconnect per scrape, which keeps the
        handler stateless.
        """
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            while True:
                header = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if not header.strip():
                    break
            parts = request_line.decode("latin-1", "replace").split()
            method = parts[0] if parts else ""
            path = parts[1].split("?", 1)[0] if len(parts) > 1 else "/"
            if method == "GET" and path in ("/metrics", "/"):
                body = render_prometheus(self.metrics_snapshot()).encode("utf-8")
                status, content_type = "200 OK", _PROMETHEUS_CONTENT_TYPE
            else:
                body = b"only GET /metrics is served here\n"
                status, content_type = "404 Not Found", "text/plain; charset=utf-8"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _infer_reply_done(self, _task: asyncio.Task) -> None:
        """Done callback for every ``infer`` message's process task."""
        self._active_infers -= 1
        self._maybe_finish_drain()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        ordered_tail: asyncio.Task | None = None
        tasks: set[asyncio.Task] = set()
        saw_shutdown = False
        saw_drain = False
        # Tagged infer requests of THIS connection still waiting for their
        # reply; the cancel op may only reach its own connection's work.
        conn_pending: dict[object, _QueuedInfer] = {}

        async def process(
            message: dict[str, object] | None,
            error: tuple[str, object, object] | None,
            previous: asyncio.Task | None,
            binary: bool,
        ) -> None:
            op = None if message is None else message.get("op")
            if error is not None:
                text, err_op, request_id = error
                reply = error_envelope(text, op=err_op, request_id=request_id)
            else:
                assert message is not None
                reply = await self._execute(message, conn_pending, binary)
            if previous is not None:
                # Version-1 requests carry no id, so their replies must
                # leave in arrival order; chain on the previous untagged
                # reply (its own failures were already turned into replies).
                with contextlib.suppress(Exception):
                    await asyncio.shield(previous)
            assert self._loop is not None
            # The reply leaves on the carrier its request arrived on, so
            # every client reads replies in the format it speaks.
            encode = _encode_reply_frame if binary else _encode_reply_line
            data = await self._loop.run_in_executor(None, encode, reply)
            try:
                async with write_lock:
                    writer.write(data)
                    await writer.drain()
            finally:
                if op == "shutdown" and self._stop_event is not None:
                    # The reply goes out first so the asking client sees the
                    # acknowledgement — but the stop must happen even if
                    # that client already hung up (fire-and-forget scripts).
                    self._stop_event.set()
                if op == "drain":
                    # Likewise after the drain acknowledgement: if nothing
                    # is in flight the serving loop may exit right now.
                    self._maybe_finish_drain()

        try:
            while True:
                # Peek the carrier: a frame starts with the magic byte
                # (never valid at the start of a JSON line), anything else
                # is a newline-delimited JSON envelope.
                try:
                    first = await reader.readexactly(1)
                except asyncio.IncompleteReadError:
                    break
                message: dict[str, object] | None = None
                error: tuple[str, object, object] | None = None
                binary = first == FRAME_MAGIC[:1]
                if binary:
                    message, error, fatal = await self._read_frame(reader, first)
                    if fatal:
                        assert error is not None
                        text, op, request_id = error
                        reply = error_envelope(text, op=op, request_id=request_id)
                        async with write_lock:
                            writer.write(_encode_reply_frame(reply))
                            await writer.drain()
                        break
                else:
                    try:
                        line = first + await reader.readline()
                    except ValueError:
                        # Line longer than the stream limit: the connection
                        # cannot be resynchronised, but the client still
                        # gets told why before the hangup.
                        reply = error_envelope(
                            f"ValueError: request line exceeds the server's "
                            f"{MAX_LINE_BYTES} byte limit"
                        )
                        async with write_lock:
                            writer.write(json.dumps(reply).encode("utf-8") + b"\n")
                            await writer.drain()
                        break
                    text = line.strip()
                    if not text:
                        continue
                    try:
                        decoded = text.decode("utf-8")
                        if len(text) > _OFFLOAD_PARSE_BYTES:
                            # Parsing megabytes of JSON inline would stall
                            # every other connection; push it to the
                            # default executor.
                            message = await asyncio.get_running_loop().run_in_executor(
                                None, parse_envelope, decoded
                            )
                        else:
                            message = parse_envelope(decoded)
                    except ValueError as exc:
                        # Best effort to tag the error reply: a line that is
                        # valid JSON but a rejected envelope (bad version,
                        # ...) still carries an id a pipelined client
                        # routes by.
                        op = request_id = None
                        if len(text) <= _OFFLOAD_PARSE_BYTES:
                            with contextlib.suppress(ValueError, UnicodeDecodeError):
                                raw = json.loads(text.decode("utf-8"))
                                if isinstance(raw, dict):
                                    op, request_id = raw.get("op"), raw.get("id")
                        error = (f"ValueError: {exc}", op, request_id)
                msg_op = None if message is None else message.get("op")
                if msg_op == "shutdown":
                    saw_shutdown = True
                elif msg_op == "drain":
                    saw_drain = True
                pipelined = message is not None and message.get("id") is not None
                task = asyncio.create_task(
                    process(
                        message,
                        error,
                        None if pipelined else ordered_tail,
                        binary,
                    )
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
                if msg_op == "infer":
                    # Counted from the moment the message is read until its
                    # reply is fully written (the done callback fires even
                    # for tasks cancelled before their first step, so the
                    # count can never leak and wedge a drain).
                    self._active_infers += 1
                    task.add_done_callback(self._infer_reply_done)
                if not pipelined:
                    ordered_tail = task
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            for task in list(tasks):
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            if saw_shutdown and self._stop_event is not None:
                # A fire-and-forget client may hang up before its shutdown
                # task ran (and the hangup cancels pending tasks above); the
                # op must still win.  Setting the event twice is harmless.
                self._stop_event.set()
            if saw_drain:
                # Same for a fire-and-forget drain: the hangup may have
                # cancelled the drain task before it flipped the flag.
                self._begin_drain()
                self._maybe_finish_drain()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- lifecycle ----------------------------------------------------------------

    async def _serve_async(self) -> None:
        self._stop_event = asyncio.Event()
        self._queue = asyncio.Queue()
        self._space_waiters.clear()  # waiters belong to the serving loop
        # The loop is published LAST: start() returns (and close() may run)
        # as soon as it appears, and close() needs the stop event with it.
        self._loop = asyncio.get_running_loop()
        connections: set[asyncio.Task] = set()

        async def handle(reader, writer) -> None:
            task = asyncio.current_task()
            connections.add(task)
            try:
                await self._handle_client(reader, writer)
            except asyncio.CancelledError:
                # Server shutdown hung up on this client mid-connection;
                # finish cleanly so asyncio's stream machinery (which calls
                # task.exception() from a plain callback) sees a completed
                # task, not a cancelled one.
                pass
            finally:
                connections.discard(task)

        dispatcher = asyncio.create_task(self._batch_loop())
        server = await asyncio.start_server(
            handle, sock=self._sock, limit=MAX_LINE_BYTES
        )
        metrics_server = None
        if self._metrics_sock is not None:
            metrics_server = await asyncio.start_server(
                self._handle_metrics_http, sock=self._metrics_sock
            )
        try:
            await self._stop_event.wait()
        finally:
            if metrics_server is not None:
                metrics_server.close()
                with contextlib.suppress(Exception):
                    await metrics_server.wait_closed()
            dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await dispatcher
            # Hang up on lingering clients: on newer Pythons wait_closed()
            # waits for every handler, and a connected-but-idle client must
            # not stall the shutdown.
            for task in list(connections):
                task.cancel()
            if connections:
                await asyncio.gather(*connections, return_exceptions=True)
            server.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` or a shutdown op."""
        self._serving = True
        try:
            asyncio.run(self._serve_async())
        finally:
            self._serving = False

    def start(self) -> "ChipServer":
        """Serve on a background daemon thread and return self."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="chip-server", daemon=True
        )
        self._thread.start()
        # serve_forever owns the listening socket from here; wait until the
        # loop exists so an immediate close() can reach it.
        while self._thread.is_alive() and self._loop is None:
            time.sleep(0.001)
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._work.shutdown(wait=True)
        with contextlib.suppress(OSError):
            self._sock.close()
        if self._metrics_sock is not None:
            with contextlib.suppress(OSError):
                self._metrics_sock.close()

    def __enter__(self) -> "ChipServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
