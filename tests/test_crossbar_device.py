"""Tests for the memristor device model and weight quantisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crossbar.device import DeviceParameters, MemristorModel
from repro.crossbar.quantization import (
    QuantizationSpec,
    quantization_error,
    quantize_network_weights,
    quantize_uniform,
)
from repro.snn import Dense, Network


class TestDeviceParameters:
    def test_defaults_match_paper(self):
        params = DeviceParameters()
        assert params.r_on_ohm == pytest.approx(20e3)
        assert params.r_off_ohm == pytest.approx(200e3)
        assert params.levels == 16
        assert params.bits == 4
        assert params.read_voltage_v == pytest.approx(0.5)

    def test_conductance_range(self):
        params = DeviceParameters()
        assert params.g_on_s == pytest.approx(1 / 20e3)
        assert params.g_off_s == pytest.approx(1 / 200e3)
        assert params.g_range_s > 0

    def test_rejects_inverted_resistance_range(self):
        with pytest.raises(ValueError):
            DeviceParameters(r_on_ohm=200e3, r_off_ohm=20e3)

    def test_rejects_single_level(self):
        with pytest.raises(ValueError):
            DeviceParameters(levels=1)

    def test_with_bits(self):
        params = DeviceParameters().with_bits(8)
        assert params.levels == 256
        assert params.bits == 8
        with pytest.raises(ValueError):
            DeviceParameters().with_bits(0)


class TestMemristorModel:
    def test_level_conductances_monotone(self):
        model = MemristorModel()
        levels = model.level_conductances()
        assert len(levels) == 16
        assert np.all(np.diff(levels) > 0)

    def test_weight_zero_maps_to_g_off(self):
        model = MemristorModel()
        assert model.weight_to_conductance(0.0) == pytest.approx(model.params.g_off_s)

    def test_weight_one_maps_to_g_on(self):
        model = MemristorModel()
        assert model.weight_to_conductance(1.0) == pytest.approx(model.params.g_on_s)

    def test_weight_clipping(self):
        model = MemristorModel()
        assert model.weight_to_level(2.0) == model.params.levels - 1
        assert model.weight_to_level(-1.0) == 0

    def test_conductance_roundtrip(self):
        model = MemristorModel()
        weights = np.linspace(0, 1, 16)
        g = model.weight_to_conductance(weights)
        recovered = model.conductance_to_weight(g)
        np.testing.assert_allclose(recovered, weights, atol=1e-12)

    def test_quantisation_error_bounded_by_half_lsb(self):
        model = MemristorModel()
        weights = np.random.default_rng(0).random(1000)
        recovered = model.conductance_to_weight(model.weight_to_conductance(weights))
        lsb = 1.0 / (model.params.levels - 1)
        assert np.max(np.abs(recovered - weights)) <= lsb / 2 + 1e-12

    def test_program_requires_rng_with_variation(self):
        model = MemristorModel(DeviceParameters(write_variation_sigma=0.1))
        with pytest.raises(ValueError):
            model.program(np.ones((2, 2)))

    def test_program_with_variation_changes_values(self):
        rng = np.random.default_rng(0)
        model = MemristorModel(DeviceParameters(write_variation_sigma=0.2))
        ideal = MemristorModel().program(np.full((8, 8), 0.5))
        noisy = model.program(np.full((8, 8), 0.5), rng)
        assert not np.allclose(ideal, noisy)

    def test_stuck_at_off_pins_devices(self):
        rng = np.random.default_rng(0)
        model = MemristorModel(DeviceParameters(stuck_at_off_probability=1.0))
        g = model.program(np.ones((4, 4)), rng)
        np.testing.assert_allclose(g, model.params.g_off_s)

    def test_read_energy_scales_with_conductance(self):
        model = MemristorModel()
        low = model.read_energy_per_device_j(model.params.g_off_s)
        high = model.read_energy_per_device_j(model.params.g_on_s)
        assert high > low > 0

    def test_mean_read_energy_between_extremes(self):
        model = MemristorModel()
        mean = model.mean_read_energy_per_device_j()
        assert model.read_energy_per_device_j(model.params.g_off_s) < mean
        assert mean < model.read_energy_per_device_j(model.params.g_on_s)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_levels_follow_bits(self, bits):
        model = MemristorModel(DeviceParameters().with_bits(bits))
        assert len(model.level_conductances()) == 2**bits


class TestQuantization:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            QuantizationSpec(bits=0)
        assert QuantizationSpec(bits=4).levels == 16

    def test_quantize_preserves_sign_and_zero(self):
        weights = np.array([-0.5, 0.0, 0.75])
        q = quantize_uniform(weights, QuantizationSpec(bits=4))
        assert q[1] == 0.0
        assert q[0] < 0 < q[2]

    def test_quantize_idempotent(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(20, 10))
        spec = QuantizationSpec(bits=3)
        once = quantize_uniform(weights, spec)
        twice = quantize_uniform(once, spec)
        np.testing.assert_allclose(once, twice)

    def test_error_decreases_with_bits(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(50, 50))
        errors = [quantization_error(weights, QuantizationSpec(bits=b)) for b in (1, 2, 4, 8)]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 0.01

    def test_error_zero_for_zero_tensor(self):
        assert quantization_error(np.zeros((3, 3)), QuantizationSpec(bits=2)) == 0.0

    def test_per_column_scaling(self):
        weights = np.array([[0.1, 10.0], [0.2, 20.0]])
        q = quantize_uniform(weights, QuantizationSpec(bits=2, per_column=True))
        # The small column keeps resolution rather than collapsing to zero.
        assert q[0, 0] != 0.0

    def test_quantize_network_returns_copy(self, rng):
        network = Network(
            (8,), [Dense(8, 4, use_bias=False, rng=rng)], name="q"
        )
        original = network.layers[0].weights.copy()
        quantised = quantize_network_weights(network, QuantizationSpec(bits=2))
        np.testing.assert_allclose(network.layers[0].weights, original)
        assert not np.allclose(quantised.layers[0].weights, original)

    def test_quantize_network_rejects_non_network(self):
        with pytest.raises(TypeError):
            quantize_network_weights("not a network", QuantizationSpec(bits=2))

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_quantized_values_on_grid(self, bits):
        rng = np.random.default_rng(bits)
        weights = rng.normal(size=200)
        spec = QuantizationSpec(bits=bits)
        q = quantize_uniform(weights, spec)
        scale = np.max(np.abs(weights))
        steps = np.abs(q) / scale * (spec.levels - 1)
        np.testing.assert_allclose(steps, np.rint(steps), atol=1e-9)
