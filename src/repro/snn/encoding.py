"""Input spike encoding.

SNNs require their analog inputs (pixel intensities) to be encoded as spike
trains.  RESPARC, like the training/conversion flow it references (Diehl et
al., IJCNN'15), uses rate coding: a pixel of intensity ``x`` in ``[0, 1]``
produces spikes with probability (or deterministic rate) proportional to
``x`` at every timestep.

Two encoders are provided:

* :class:`PoissonEncoder` — stochastic Bernoulli/Poisson spikes (the paper's
  setting; also what produces the zero-run-length statistics exploited by
  the event-driven optimisations of Fig. 13).
* :class:`DeterministicRateEncoder` — an error-diffusion rate encoder that
  produces the same mean rate without randomness, used by tests that need
  exact reproducibility at very few timesteps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive

__all__ = [
    "PoissonEncoder",
    "DeterministicRateEncoder",
    "EncoderState",
    "spike_train_statistics",
]


@dataclass
class PoissonEncoder:
    """Bernoulli (rate-coded) spike encoder.

    Parameters
    ----------
    max_rate:
        Spike probability per timestep for a full-intensity input (1.0 means
        an intensity-1 pixel spikes every timestep).
    rng:
        Random generator; required because the encoder is stochastic.
    """

    rng: np.random.Generator
    max_rate: float = 1.0

    def __post_init__(self) -> None:
        check_positive("max_rate", self.max_rate)
        if self.max_rate > 1.0:
            raise ValueError(f"max_rate is a per-step probability and must be <= 1, got {self.max_rate}")

    def encode(self, values: np.ndarray, timesteps: int) -> np.ndarray:
        """Encode intensities into a spike train.

        Parameters
        ----------
        values:
            Array of intensities in ``[0, 1]`` with shape ``(batch, ...)``.
        timesteps:
            Number of timesteps to generate.

        Returns
        -------
        numpy.ndarray
            Binary array of shape ``(timesteps, batch, ...)``.
        """
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        x = np.clip(np.asarray(values, dtype=float), 0.0, 1.0)
        probabilities = x * self.max_rate
        draws = self.rng.random((timesteps,) + x.shape)
        return (draws < probabilities).astype(float)


@dataclass
class DeterministicRateEncoder:
    """Error-diffusion rate encoder.

    Each input accumulates its intensity every timestep and emits a spike
    whenever the accumulator crosses 1, subtracting 1 on emission.  The spike
    count over ``T`` steps equals ``floor(x * T)`` (within one spike), so the
    mean rate matches the Poisson encoder without stochastic variance.
    """

    max_rate: float = 1.0

    def __post_init__(self) -> None:
        check_positive("max_rate", self.max_rate)
        if self.max_rate > 1.0:
            raise ValueError(f"max_rate must be <= 1, got {self.max_rate}")

    def encode(self, values: np.ndarray, timesteps: int) -> np.ndarray:
        """Encode intensities into a deterministic spike train.

        Same interface as :meth:`PoissonEncoder.encode`.
        """
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        x = np.clip(np.asarray(values, dtype=float), 0.0, 1.0) * self.max_rate
        accumulator = np.zeros_like(x)
        spikes = np.zeros((timesteps,) + x.shape, dtype=float)
        for t in range(timesteps):
            accumulator += x
            fired = accumulator >= 1.0
            spikes[t] = fired.astype(float)
            accumulator -= fired.astype(float)
        return spikes


@dataclass(frozen=True)
class EncoderState:
    """Serializable encoder configuration with shard-stable randomness.

    The stock :class:`PoissonEncoder` draws one random block covering the
    whole batch, so the spike train of sample ``i`` depends on how many
    samples precede it — a batch split across workers would encode
    differently than the same batch encoded at once.  ``EncoderState``
    instead derives an independent generator per *absolute* sample index
    from ``(seed, sample_offset + i)``, which makes encoding a pure function
    of ``(state, values, timesteps)``:

    * repeated :meth:`encode` calls are identical (no hidden stream state),
    * a shard extracted with :meth:`shard` encodes exactly the slice the
      full-batch encoding would produce, regardless of how the batch is
      partitioned — the property :class:`repro.serve.ChipPool` relies on.

    The state is a plain frozen dataclass and round-trips through
    :meth:`to_dict` / :meth:`from_dict`, so a session's encoder can cross a
    process boundary alongside its results.
    """

    kind: str = "deterministic"
    seed: int = 0
    max_rate: float = 1.0
    #: Absolute index of this state's first sample within the logical batch.
    sample_offset: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("poisson", "deterministic"):
            raise ValueError(
                f"encoder kind must be 'poisson' or 'deterministic', got {self.kind!r}"
            )
        check_positive("max_rate", self.max_rate)
        if self.max_rate > 1.0:
            raise ValueError(f"max_rate must be <= 1, got {self.max_rate}")
        if self.sample_offset < 0:
            raise ValueError(f"sample_offset must be >= 0, got {self.sample_offset}")

    def shard(self, start: int) -> "EncoderState":
        """Extract the encoder state of a shard beginning ``start`` samples in."""
        if start < 0:
            raise ValueError(f"shard start must be >= 0, got {start}")
        if start == 0:
            return self
        return replace(self, sample_offset=self.sample_offset + start)

    def encode(self, values: np.ndarray, timesteps: int) -> np.ndarray:
        """Encode a ``(batch, ...)`` intensity array into ``(timesteps, batch, ...)``.

        Every sample is encoded from its own derived generator, so the output
        for sample ``i`` depends only on ``(seed, sample_offset + i)`` — not
        on the batch it happens to share a request with.
        """
        if timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {timesteps}")
        x = np.atleast_2d(np.asarray(values, dtype=float))
        if self.kind == "deterministic":
            # Error diffusion is elementwise per sample: slicing commutes
            # with encoding, so no per-sample generators are needed.
            return DeterministicRateEncoder(max_rate=self.max_rate).encode(x, timesteps)
        spikes = np.empty((timesteps,) + x.shape, dtype=float)
        for i in range(x.shape[0]):
            rng = derive_rng(self.seed, "encoder", self.sample_offset + i)
            spikes[:, i] = PoissonEncoder(rng=rng, max_rate=self.max_rate).encode(
                x[i], timesteps
            )
        return spikes

    def to_dict(self) -> dict[str, object]:
        """JSON-compatible representation."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "max_rate": self.max_rate,
            "sample_offset": self.sample_offset,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "EncoderState":
        """Rebuild a state produced by :meth:`to_dict`."""
        return cls(
            kind=str(data["kind"]),
            seed=int(data["seed"]),
            max_rate=float(data.get("max_rate", 1.0)),
            sample_offset=int(data.get("sample_offset", 0)),
        )


def spike_train_statistics(spike_train: np.ndarray, packet_bits: int = 32) -> dict[str, float]:
    """Summary statistics of a spike train used by the event-driven study.

    Parameters
    ----------
    spike_train:
        Binary array whose leading axis is time; remaining axes are flattened
        into a neuron axis.
    packet_bits:
        Spike-packet width.  Consecutive groups of ``packet_bits`` neurons
        form one packet; an all-zero packet can be suppressed by RESPARC's
        zero-check logic.

    Returns
    -------
    dict
        ``mean_rate`` — average spike probability per neuron per step;
        ``zero_fraction`` — fraction of individual spike slots that are zero;
        ``zero_packet_fraction`` — fraction of ``packet_bits``-wide packets
        that are entirely zero (the quantity RESPARC's zero-check exploits).
    """
    if packet_bits <= 0:
        raise ValueError(f"packet_bits must be positive, got {packet_bits}")
    train = np.asarray(spike_train, dtype=float)
    if train.ndim < 2:
        raise ValueError("spike_train must have a time axis and at least one neuron axis")
    timesteps = train.shape[0]
    flat = train.reshape(timesteps, -1)
    n_neurons = flat.shape[1]

    mean_rate = float(flat.mean()) if flat.size else 0.0

    n_packets = int(np.ceil(n_neurons / packet_bits))
    padded = np.zeros((timesteps, n_packets * packet_bits))
    padded[:, :n_neurons] = flat
    packets = padded.reshape(timesteps, n_packets, packet_bits)
    zero_packets = (packets.sum(axis=2) == 0).mean() if packets.size else 1.0

    return {
        "mean_rate": mean_rate,
        "zero_fraction": 1.0 - mean_rate,
        "zero_packet_fraction": float(zero_packets),
    }
