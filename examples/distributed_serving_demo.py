"""Distributed serving walkthrough: executors, chip server, gateway.

Builds one MLP and then serves it at every rung of the distribution ladder,
verifying at each rung that the answer never changes:

1. a single :class:`repro.serve.ChipSession` (the reference),
2. a :class:`repro.serve.ChipPool` on the ``process`` executor — one
   programmed chip per worker process, shards shipped through the JSON
   schema,
3. a socket :class:`~repro.serve.distributed.ChipServer` on localhost with a
   :class:`~repro.serve.distributed.RemoteSession` client — the same JSON,
   now over TCP,
4. an :class:`~repro.serve.distributed.InferenceGateway` fanning one batch
   across the remote server *and* a local pool with capacity-weighted
   sharding.

Run with:  python examples/distributed_serving_demo.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import ArchitectureConfig
from repro.datasets import make_dataset
from repro.serve import ChipPool, ChipSession, InferenceRequest
from repro.serve.distributed import (
    ChipServer,
    GatewayEndpoint,
    InferenceGateway,
    RemoteSession,
)
from repro.snn import Dense, Network, Trainer, convert_to_snn
from repro.utils.units import format_energy


def _identical(reference, response) -> bool:
    return bool(
        np.array_equal(reference.predictions, response.predictions)
        and np.array_equal(reference.spike_counts, response.spike_counts)
    )


def main() -> None:
    rng = np.random.default_rng(0)

    dataset = make_dataset("mnist", train_samples=192, test_samples=96, seed=1)
    train_x = dataset.train_images.reshape(-1, 784)[:, ::4]  # 196 inputs
    test_x = dataset.test_images.reshape(-1, 784)[:, ::4]
    network = Network(
        (196,),
        [
            Dense(196, 64, use_bias=False, rng=rng, name="hidden"),
            Dense(64, 10, activation=None, use_bias=False, rng=rng, name="output"),
        ],
        name="distributed-demo-mlp",
    )
    Trainer(learning_rate=0.005, batch_size=32, rng=rng).fit(
        network, train_x, dataset.train_labels, epochs=4
    )
    snn = convert_to_snn(network, train_x[:48])
    config = ArchitectureConfig(crossbar_rows=32, crossbar_columns=32)

    batch = test_x[:64]
    labels = dataset.test_labels[:64]
    request = InferenceRequest(inputs=batch, labels=labels)

    # 1 -- the reference: one local session ----------------------------------------
    session = ChipSession(snn, config=config, timesteps=16, encoder="poisson", seed=7)
    reference = session.infer(request)
    print(
        f"session    : {reference.batch_size} samples, "
        f"accuracy {reference.accuracy:.2%}, "
        f"energy {format_energy(reference.energy.total_j)}"
    )

    # 2 -- process executor: one chip per worker process ---------------------------
    with ChipPool(
        snn, jobs=2, config=config, timesteps=16, encoder="poisson", seed=7,
        executor="process",
    ) as pool:
        start = time.perf_counter()
        processed = pool.infer(request)
        elapsed = time.perf_counter() - start
    print(
        f"process    : {processed.jobs} worker processes in {elapsed:.3f}s, "
        f"identical: {_identical(reference, processed)}"
    )

    # 3 -- chip server on localhost + remote client --------------------------------
    server_pool = ChipPool(
        snn, jobs=2, config=config, timesteps=16, encoder="poisson", seed=7
    )
    with ChipServer(server_pool, port=0, workload="demo-mlp").start() as server:
        with RemoteSession.connect(server.endpoint) as remote:
            info = remote.info()
            served = remote.infer(request)
            print(
                f"server     : {server.endpoint} serving {info['workload']} "
                f"(backend {info['backend']}, capacity {info['capacity']}), "
                f"identical: {_identical(reference, served)}"
            )

            # 4 -- gateway: fan one batch across remote + local endpoints ----------
            local_pool = ChipPool(
                snn, jobs=2, config=config, timesteps=16, encoder="poisson", seed=7
            )
            with InferenceGateway(
                [
                    GatewayEndpoint(target=remote, name="remote-server"),
                    GatewayEndpoint(target=local_pool, name="local-pool"),
                ]
            ) as gateway:
                merged = gateway.infer(request)
            shards = ", ".join(
                f"{s['endpoint']}[{s['start']}:{s['stop']}]"
                for s in merged.metadata["shards"]
            )
            print(f"gateway    : {shards}")
            print(
                f"merged     : accuracy {merged.accuracy:.2%}, "
                f"energy {format_energy(merged.energy.total_j)}, "
                f"identical: {_identical(reference, merged)}"
            )
            local_pool.close()
    server_pool.close()


if __name__ == "__main__":
    main()
