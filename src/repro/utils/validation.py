"""Argument validation helpers.

Public constructors across the package validate their arguments with these
helpers so configuration errors fail immediately with messages that name the
offending parameter, instead of surfacing later as shape errors deep inside
NumPy.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_choices",
    "check_type",
    "check_shape",
    "check_power_of_two",
]


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Ensure ``value`` is a positive (or non-negative) finite number."""
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Ensure ``value`` is a non-negative finite number."""
    return check_positive(name, value, allow_zero=True)


def check_probability(name: str, value: float) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    if not np.isfinite(value) or value < 0 or value > 1:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_in_choices(name: str, value: Any, choices: Iterable[Any]) -> Any:
    """Ensure ``value`` is one of ``choices``."""
    options = tuple(choices)
    if value not in options:
        raise ValueError(f"{name} must be one of {options!r}, got {value!r}")
    return value


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Ensure ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else ", ".join(t.__name__ for t in expected)
        )
        raise TypeError(
            f"{name} must be an instance of {expected_names}, got {type(value).__name__}"
        )
    return value


def check_shape(name: str, array: np.ndarray, shape: Sequence[int | None]) -> np.ndarray:
    """Ensure ``array`` has the expected shape.

    ``None`` entries in ``shape`` act as wildcards for that dimension.
    """
    arr = np.asarray(array)
    if arr.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got {arr.ndim} (shape {arr.shape})"
        )
    for axis, (actual, expected) in enumerate(zip(arr.shape, shape)):
        if expected is not None and actual != expected:
            raise ValueError(
                f"{name} has shape {arr.shape}, expected {tuple(shape)} (mismatch on axis {axis})"
            )
    return arr


def check_power_of_two(name: str, value: int) -> int:
    """Ensure ``value`` is a positive power of two."""
    if not isinstance(value, (int, np.integer)) or value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
    return int(value)
