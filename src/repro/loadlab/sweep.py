"""The sweep driver: topology × load matrix, summarised and persisted.

One *cell* = one topology under one load profile.  The driver builds the
topology, runs the profile through :func:`repro.loadlab.generator.run_load`,
and reduces the outcomes to the serving quantities the paper's energy
story needs per deployment shape:

* throughput (requests/s and samples/s over the measured window);
* latency and queue-wait percentiles (p50/p95/p99) from the phase spans
  the serving stack attaches to each response;
* shed rate (admission-control rejections / issued requests);
* energy per request / per sample from the chip's energy accounting.

Across cells the sweep runs the rank-based treatment from
:mod:`repro.loadlab.stats`: a Kruskal-Wallis omnibus per load profile,
Holm-corrected pairwise Mann-Whitney contrasts between topologies on
per-request latency, and a Spearman correlation between throughput and
energy-per-request across all cells.  Every sweep appends one run record
to the versioned ``benchmarks/results/loadlab.json`` trajectory via
:func:`repro.loadlab.persist.persist_result`.
"""

from __future__ import annotations

import platform
import time
from pathlib import Path

import numpy as np

from repro.loadlab.generator import LoadSpec, RequestOutcome, run_load
from repro.loadlab.persist import default_results_dir, persist_result
from repro.loadlab.stats import (
    holm_bonferroni,
    kruskal_wallis,
    mann_whitney_u,
    spearman,
)
from repro.loadlab.topologies import LabWorkload, build_topology, default_workload

__all__ = ["run_cell", "run_sweep", "sweep_record", "persist_sweep"]

_PERCENTILES = (50.0, 95.0, 99.0)


def _percentiles(values: list[float]) -> dict[str, float] | None:
    if not values:
        return None
    qs = np.percentile(np.asarray(values, dtype=float), _PERCENTILES)
    return {"p50": float(qs[0]), "p95": float(qs[1]), "p99": float(qs[2])}


def summarize_cell(
    topology: str,
    load: LoadSpec,
    outcomes: list[RequestOutcome],
    wall_s: float,
) -> dict[str, object]:
    """Reduce one cell's outcomes to its summary record."""
    served = [o for o in outcomes if o.ok]
    shed = [o for o in outcomes if o.shed]
    failed = [o for o in outcomes if not o.ok and not o.shed]
    latencies = [o.latency_s for o in served]
    queue_waits = [
        o.phases["queue_wait_s"] for o in served if "queue_wait_s" in o.phases
    ]
    energies = [o.energy_j for o in served if o.energy_j is not None]
    samples = sum(o.batch_size for o in served)
    wall_s = max(wall_s, 1e-9)
    return {
        "topology": topology,
        "load": load.label(),
        "load_spec": {
            "mode": load.mode,
            "rate": load.rate,
            "concurrency": load.concurrency,
            "requests": load.requests,
            "warmup": load.warmup,
            "batch_size": load.batch_size,
            "seed": load.seed,
        },
        "issued": len(outcomes),
        "served": len(served),
        "shed": len(shed),
        "failed": len(failed),
        "shed_rate": len(shed) / len(outcomes) if outcomes else 0.0,
        "wall_s": wall_s,
        "throughput_rps": len(served) / wall_s,
        "throughput_sps": samples / wall_s,
        "latency_s": _percentiles(latencies),
        "queue_wait_s": _percentiles(queue_waits),
        "energy_j_per_request": float(np.mean(energies)) if energies else None,
        "energy_j_per_sample": (
            float(sum(energies) / samples) if energies and samples else None
        ),
        "latency_samples": [round(v, 6) for v in latencies],
    }


def run_cell(
    topology: str,
    load: LoadSpec,
    workload: LabWorkload,
    **topology_options: object,
) -> dict[str, object]:
    """Build one topology, drive one load profile, summarise."""
    with build_topology(topology, workload, **topology_options) as topo:

        def make_request(index: int, rng: np.random.Generator):
            return workload.make_request(index, rng, load.batch_size)

        outcomes, wall_s = run_load(topo.submit, make_request, load)
    return summarize_cell(topology, load, outcomes, wall_s)


def _contrasts(cells: list[dict[str, object]]) -> list[dict[str, object]]:
    """Rank-based topology contrasts, one block per load profile."""
    blocks: list[dict[str, object]] = []
    loads = sorted({cell["load"] for cell in cells})
    for load in loads:
        row = [cell for cell in cells if cell["load"] == load]
        groups = {
            cell["topology"]: cell["latency_samples"]
            for cell in row
            if cell["latency_samples"]
        }
        if len(groups) < 2:
            continue
        names = sorted(groups)
        omnibus = kruskal_wallis([groups[name] for name in names])
        pairs = [
            (names[i], names[j])
            for i in range(len(names))
            for j in range(i + 1, len(names))
        ]
        tests = [mann_whitney_u(groups[a], groups[b]) for a, b in pairs]
        adjusted = holm_bonferroni([t["p"] for t in tests])
        blocks.append(
            {
                "load": load,
                "metric": "latency_s",
                "kruskal_wallis": omnibus,
                "pairwise": [
                    {
                        "a": a,
                        "b": b,
                        "u": test["u"],
                        "effect": test["effect"],
                        "p": test["p"],
                        "p_holm": p_adj,
                    }
                    for (a, b), test, p_adj in zip(pairs, tests, adjusted)
                ],
            }
        )
    return blocks


def _throughput_energy(cells: list[dict[str, object]]) -> dict[str, object] | None:
    points = [
        (cell["throughput_rps"], cell["energy_j_per_request"])
        for cell in cells
        if cell["energy_j_per_request"] is not None
    ]
    if len(points) < 3:
        return None
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return {**spearman(xs, ys), "cells": len(points)}


def run_sweep(
    topologies: list[str],
    loads: list[LoadSpec],
    *,
    workload: LabWorkload | None = None,
    topology_options: dict[str, object] | None = None,
    progress=None,
) -> dict[str, object]:
    """Run the full topology × load matrix and attach the statistics."""
    workload = workload if workload is not None else default_workload()
    cells: list[dict[str, object]] = []
    for topology in topologies:
        for load in loads:
            if progress is not None:
                progress(f"cell {topology} × {load.label()}")
            cells.append(
                run_cell(topology, load, workload, **(topology_options or {}))
            )
    return {
        "cells": cells,
        "contrasts": _contrasts(cells),
        "throughput_energy_spearman": _throughput_energy(cells),
    }


def sweep_record(result: dict[str, object]) -> dict[str, object]:
    """Wrap a sweep result as one appended trajectory entry."""
    return {
        "kind": "sweep",
        "ran_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        **result,
    }


def persist_sweep(
    result: dict[str, object], output: str | Path | None = None
) -> Path:
    """Append one sweep record to the loadlab trajectory document."""
    path = Path(output) if output else default_results_dir() / "loadlab.json"
    persist_result(path, "runs", sweep_record(result), append=True)
    return path
