"""Fig. 8 / Fig. 9 — architecture parameter and implementation-metric tables.

These benchmarks regenerate the two configuration tables of the paper (one
NeuroCell's parameters/metrics and the CMOS baseline's parameters/metrics)
and time the construction + derived-metric computation.  The printed rows
mirror the published tables so they can be compared side by side.
"""

from __future__ import annotations

from repro.baseline import BaselineConfig
from repro.core import ArchitectureConfig


def _resparc_envelope() -> dict[str, object]:
    config = ArchitectureConfig()
    return {
        "architecture_bits": config.word_bits,
        "nc_dimension": f"{int(config.mpes_per_neurocell ** 0.5)}x{int(config.mpes_per_neurocell ** 0.5)}",
        "mpes (switches)": f"{config.mpes_per_neurocell} ({config.switches_per_neurocell})",
        "mcas_per_mpe": config.mcas_per_mpe,
        "feature_size_nm": 45,
        "area_mm2": config.area_mm2,
        "power_mw": config.power_w * 1e3,
        "gate_count": config.gate_count,
        "frequency_mhz": config.frequency_hz / 1e6,
    }


def _cmos_envelope() -> dict[str, object]:
    config = BaselineConfig()
    return {
        "nu_count": config.nu_count,
        "fifos_input (weight)": f"{config.input_fifo_count} ({config.weight_fifo_count})",
        "fifo_depth": config.fifo_depth,
        "width_fifo (nu)": f"{config.fifo_width_bits} ({config.nu_width_bits})",
        "feature_size_nm": 45,
        "area_mm2": config.area_mm2,
        "power_mw": config.power_w * 1e3,
        "gate_count": config.gate_count,
        "frequency_ghz": config.frequency_hz / 1e9,
    }


def test_fig08_resparc_envelope(benchmark):
    """Regenerate the RESPARC parameters/metrics table (Fig. 8)."""
    table = benchmark(_resparc_envelope)
    print("\nFig. 8 — RESPARC parameters and metrics (one NeuroCell)")
    for key, value in table.items():
        print(f"  {key:<22} {value}")
    assert table["mpes (switches)"] == "16 (9)"
    assert table["frequency_mhz"] == 200.0


def test_fig09_cmos_envelope(benchmark):
    """Regenerate the CMOS baseline parameters/metrics table (Fig. 9)."""
    table = benchmark(_cmos_envelope)
    print("\nFig. 9 — CMOS baseline parameters and metrics")
    for key, value in table.items():
        print(f"  {key:<22} {value}")
    assert table["nu_count"] == 16
    assert table["frequency_ghz"] == 1.0
